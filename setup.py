"""Legacy shim so `pip install -e .` works without network/wheel."""
from setuptools import setup

setup()
