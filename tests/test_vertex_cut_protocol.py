"""Vertex-cut protocol details: gather/scatter traffic, activation
broadcasts, and partial-fold determinism."""

from __future__ import annotations

import pytest

from repro.api import make_engine, run_job
from repro.cluster.network import MessageKind
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(200, alpha=2.0, seed=19, avg_degree=5.0)


class TestTrafficShape:
    def test_gather_and_sync_both_flow(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             partition="random_vertex_cut",
                             max_iterations=2)
        engine.run()
        kinds = engine.cluster.network.totals.msgs_by_kind
        assert kinds[MessageKind.GATHER] > 0
        assert kinds[MessageKind.SYNC] + kinds[MessageKind.MIRROR_SYNC] > 0

    def test_hybrid_keeps_low_degree_gathers_local(self, graph):
        """PowerLyra's design goal: a low-degree vertex's in-edges are
        co-located with its master, so no partial gathers travel."""
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             partition="hybrid_cut", max_iterations=2)
        engine.run()
        kinds = engine.cluster.network.totals.msgs_by_kind
        # The stand-in graph has no vertex above the in-degree
        # threshold, so every gather is local.
        assert kinds[MessageKind.GATHER] == 0

    def test_edge_cut_has_no_gather_traffic(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             partition="hash_edge_cut", max_iterations=2)
        engine.run()
        kinds = engine.cluster.network.totals.msgs_by_kind
        assert kinds[MessageKind.GATHER] == 0

    def test_always_active_runs_send_no_broadcasts(self, graph):
        """PageRank never changes activity: zero CONTROL broadcasts."""
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             partition="hybrid_cut", max_iterations=3)
        engine.run()
        kinds = engine.cluster.network.totals.msgs_by_kind
        assert kinds[MessageKind.CONTROL] == 0

    def test_event_driven_runs_broadcast_activity(self):
        """SSSP activity changes trigger activity broadcasts and
        ACTIVATE signals."""
        g = generators.erdos_renyi(150, 600, seed=4)
        engine = make_engine(g, "sssp", num_nodes=4,
                             partition="random_vertex_cut",
                             max_iterations=40,
                             algorithm_kwargs={"source": 0})
        engine.run()
        kinds = engine.cluster.network.totals.msgs_by_kind
        assert kinds[MessageKind.ACTIVATE] > 0
        assert kinds[MessageKind.CONTROL] > 0

    def test_vertex_cut_sends_more_messages_than_edge_cut(self, graph):
        """The two-direction GAS flow costs more messages per iteration
        (Cyclops' motivation)."""
        _, ec = (None, run_job(graph, "pagerank", num_nodes=4,
                               partition="hash_edge_cut",
                               max_iterations=3))
        vc = run_job(graph, "pagerank", num_nodes=4,
                     partition="random_vertex_cut", max_iterations=3)
        assert vc.total_messages > ec.total_messages


class TestFoldDeterminism:
    def test_same_values_across_seeds_of_partitioning(self, graph):
        """Different edge placements must not change PageRank results
        beyond float reassociation (sorted partial folds)."""
        a = run_job(graph, "pagerank", num_nodes=4, seed=1,
                    partition="random_vertex_cut", max_iterations=4)
        b = run_job(graph, "pagerank", num_nodes=4, seed=2,
                    partition="random_vertex_cut", max_iterations=4)
        for v in range(graph.num_vertices):
            assert a.values[v] == pytest.approx(b.values[v], rel=1e-10)

    def test_repeat_run_bitwise_identical(self, graph):
        a = run_job(graph, "pagerank", num_nodes=4,
                    partition="hybrid_cut", max_iterations=4)
        b = run_job(graph, "pagerank", num_nodes=4,
                    partition="hybrid_cut", max_iterations=4)
        assert a.values == b.values
        assert a.total_messages == b.total_messages
