"""Observability subsystem: tracer spans, metrics registry, exports.

The load-bearing property is the timeline contract (DESIGN.md §8): the
top-level ``superstep``/``recovery`` spans tile the simulated timeline,
so their durations sum to ``RunResult.total_sim_time_s`` — failure-free
runs, rolled-back retries and checkpoint replays included.
"""

from __future__ import annotations

import json

import pytest

from repro.api import make_engine
from repro.chaos.controller import ChaosController
from repro.chaos.schedule import FailureSchedule
from repro.errors import UnrecoverableFailureError
from repro.graph import generators
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(150, alpha=2.0, seed=31, avg_degree=5.0)


def traced_run(graph, **kwargs):
    tracer = Tracer()
    defaults = dict(num_nodes=4, max_iterations=5)
    defaults.update(kwargs)
    failures = defaults.pop("failures", ())
    engine = make_engine(graph, defaults.pop("algorithm", "pagerank"),
                         tracer=tracer, **defaults)
    for failure in failures:
        engine.schedule_failure(*failure)
    return engine, engine.run(), tracer


def assert_tiles(tracer, result):
    top = tracer.top_level_spans()
    assert top, "no top-level spans recorded"
    total = sum(sp["dur_sim_s"] for sp in top)
    assert total == pytest.approx(result.total_sim_time_s, rel=1e-6)


class TestTimelineContract:
    def test_failure_free_spans_tile_sim_time(self, graph):
        _, result, tracer = traced_run(graph)
        assert_tiles(tracer, result)
        supersteps = tracer.spans("superstep")
        assert len(supersteps) == result.num_iterations
        assert [sp["iteration"] for sp in supersteps] == \
            list(range(result.num_iterations))

    def test_rollback_retry_spans_tile_sim_time(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             max_iterations=6, tracer=(tracer := Tracer()))
        engine.schedule_failure(3, [1])
        result = engine.run()
        assert result.recoveries
        assert_tiles(tracer, result)
        rolled = [sp for sp in tracer.spans("superstep")
                  if sp.get("rolled_back")]
        assert len(rolled) == 1 and rolled[0]["failed_nodes"] == [1]
        # The retried iteration appears again as a committed span.
        retried = [sp for sp in tracer.spans("superstep")
                   if sp["iteration"] == 3 and not sp.get("rolled_back")]
        assert len(retried) == 1
        protocol = tracer.spans("recovery.protocol")
        assert protocol and protocol[0]["strategy"] == "rebirth"
        assert protocol[0]["dur_sim_s"] == \
            pytest.approx(result.recoveries[0].total_s)

    def test_checkpoint_replay_spans_tile_sim_time(self, graph):
        _, result, tracer = traced_run(
            graph, ft_mode="checkpoint", checkpoint_interval=2,
            max_iterations=6, failures=[(3, [2])])
        assert result.recoveries
        assert_tiles(tracer, result)
        assert tracer.spans("barrier.checkpoint")
        assert tracer.spans("checkpoint.reload")

    def test_migration_recovery_phases_recorded(self, graph):
        _, result, tracer = traced_run(
            graph, recovery="migration", max_iterations=6,
            failures=[(2, [1], "after_commit")])
        assert result.recoveries
        assert_tiles(tracer, result)
        assert tracer.spans("migration.reload")
        assert tracer.spans("migration.reconstruct")

    def test_spans_never_leak(self, graph):
        _, _, tracer = traced_run(graph, failures=[(2, [1])],
                                  max_iterations=5)
        assert tracer.open_depth == 0

    def test_spans_closed_on_unrecoverable_error(self, graph):
        tracer = Tracer()
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             ft_mode="none", max_iterations=5,
                             tracer=tracer)
        engine.schedule_failure(2, [1])
        with pytest.raises(UnrecoverableFailureError):
            engine.run()
        assert tracer.open_depth == 0
        errored = [sp for sp in tracer.spans() if "error" in sp]
        assert errored


class TestMetricsAgainstLegacyStats:
    def test_counters_match_traffic_totals(self, graph):
        engine, result, _ = traced_run(graph)
        totals = engine.cluster.network.totals
        m = engine.metrics
        assert m.value("net.sent_msgs") == totals.total_msgs
        assert m.value("net.sent_bytes") == totals.total_bytes
        for kind, count in totals.msgs_by_kind.items():
            assert m.value(f"net.msgs.{kind.value}") == count
        for kind, nbytes in totals.bytes_by_kind.items():
            assert m.value(f"net.bytes.{kind.value}") == nbytes

    def test_snapshot_deltas_match_iteration_stats(self, graph):
        engine, result, _ = traced_run(graph)
        snaps = engine.metrics.snapshots
        assert len(snaps) == len(result.iteration_stats)
        prev = {"counters": {}, "gauges": {}}
        for snap, stat in zip(snaps, result.iteration_stats):
            assert snap["labels"]["iteration"] == stat.iteration
            assert snap["labels"]["sim_clock_s"] == \
                pytest.approx(stat.sim_clock_s)
            assert MetricsRegistry.delta(prev, snap, "net.sent_msgs") == \
                stat.messages
            assert MetricsRegistry.delta(prev, snap, "net.sent_bytes") == \
                stat.bytes
            assert snap["gauges"]["engine.active_masters"] == \
                stat.active_masters
            prev = snap
        assert engine.metrics.value("engine.supersteps") == \
            len(result.iteration_stats)

    def test_recovery_counters(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             max_iterations=6)
        engine.schedule_failure(2, [1])
        result = engine.run()
        m = engine.metrics
        assert m.value("recovery.count") == len(result.recoveries) == 1
        assert m.value("recovery.by_strategy.rebirth") == 1
        assert m.value("recovery.failed_nodes") == 1
        assert m.value("recovery.sim_s") == \
            pytest.approx(result.recoveries[0].total_s)


class TestDisabledTracer:
    def test_disabled_tracing_changes_nothing(self, graph):
        _, traced, tracer = traced_run(graph, failures=[(2, [1])],
                                       max_iterations=6)
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             max_iterations=6)
        engine.schedule_failure(2, [1])
        plain = engine.run()
        assert traced.total_sim_time_s == plain.total_sim_time_s
        assert traced.total_messages == plain.total_messages
        assert traced.values == plain.values
        assert tracer.events  # the traced run actually recorded

    def test_null_tracer_records_nothing(self, graph):
        assert NULL_TRACER.enabled is False
        _, result, _ = traced_run(graph)  # exercises engine spans
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             max_iterations=3)
        engine.run()
        assert engine.tracer is NULL_TRACER
        assert NULL_TRACER.events == []
        assert NULL_TRACER.open_depth == 0


class TestExports:
    def test_jsonl_round_trip(self, graph, tmp_path):
        _, result, tracer = traced_run(graph, failures=[(2, [1])],
                                       max_iterations=5)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert len(events) == len(tracer.events)
        spans = [e for e in events if e["type"] == "span"]
        # Export order is sim-start order, parents before children.
        starts = [e["t_sim_s"] for e in events]
        assert starts == sorted(starts)
        top = [e for e in spans if e["depth"] == 0]
        assert sum(e["dur_sim_s"] for e in top) == \
            pytest.approx(result.total_sim_time_s, rel=1e-6)

    def test_chrome_trace_round_trip(self, graph, tmp_path):
        _, _, tracer = traced_run(graph)
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(tracer.spans())
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert {"pid", "tid", "name", "cat"} <= set(e)
        assert any(e["ph"] == "M" for e in events)  # metadata present

    def test_chaos_injections_become_instants(self, graph):
        tracer = Tracer()
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             max_iterations=6, tracer=tracer)
        schedule = FailureSchedule(seed=11).crash(2, target="random")
        ChaosController(schedule).attach(engine)
        engine.run()
        crashes = tracer.instants(cat="chaos")
        assert crashes and crashes[0]["name"] == "chaos.crash"
        assert crashes[0]["targets"]
        assert engine.metrics.value("chaos.crash_events") == 1


class TestRegistryUnit:
    def test_counters_monotonic(self):
        m = MetricsRegistry()
        m.inc("a", 2)
        m.inc("a")
        assert m.value("a") == 3
        with pytest.raises(ValueError):
            m.inc("a", -1)

    def test_prefix_queries_and_gauges(self):
        m = MetricsRegistry()
        m.inc("net.msgs.sync", 4)
        m.inc("net.msgs.gather")
        m.inc("engine.supersteps")
        assert m.counters("net.") == {"net.msgs.sync": 4,
                                      "net.msgs.gather": 1}
        m.set_gauge("engine.iteration", 7)
        assert m.gauge("engine.iteration") == 7
        assert m.gauge("missing", "dflt") == "dflt"

    def test_absorb_sums_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 1)
        b.inc("x", 2)
        b.set_gauge("g", "theirs")
        a.absorb(b)
        assert a.value("x") == 3
        assert a.gauge("g") == "theirs"

    def test_snapshot_isolation(self):
        m = MetricsRegistry()
        m.inc("x")
        snap = m.snapshot(iteration=0)
        m.inc("x", 5)
        assert snap["counters"]["x"] == 1
        assert m.value("x") == 6
        assert MetricsRegistry.delta(snap, m.snapshot(iteration=1), "x") == 5
