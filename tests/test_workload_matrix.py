"""Workload matrix: every paper algorithm survives a crash with
results equal to the failure-free run, on both cuts."""

from __future__ import annotations

import pytest

from repro.api import run_job
from repro.graph import generators


def close(a, b, rel=1e-9):
    if isinstance(a, tuple):
        return all(close(x, y, rel) for x, y in zip(a, b))
    if a == b:
        return True
    return abs(a - b) <= rel * max(abs(a), abs(b))


WORKLOADS = {
    "pagerank": dict(
        graph=lambda: generators.power_law(250, alpha=2.0, seed=77,
                                           avg_degree=5.0,
                                           selfish_frac=0.1),
        kwargs={}, iterations=5),
    "cd": dict(
        graph=lambda: generators.community_graph(3, 40, p_in=0.25,
                                                 p_out_edges=1, seed=7),
        kwargs={}, iterations=12),
    "sssp": dict(
        graph=lambda: generators.road_network(12, 12, seed=7),
        kwargs={"source": 0}, iterations=80),
    "als": dict(
        graph=lambda: generators.bipartite(160, 40, edges_per_user=6,
                                           seed=7),
        kwargs={"num_users": 160, "rank": 2}, iterations=6),
    "cc": dict(
        graph=lambda: generators.social_network(200, avg_degree=4.0,
                                                seed=7, reciprocity=1.0),
        kwargs={}, iterations=30),
}


@pytest.mark.parametrize("algorithm", sorted(WORKLOADS))
@pytest.mark.parametrize("partition,recovery", [
    ("hash_edge_cut", "rebirth"),
    ("hash_edge_cut", "migration"),
    ("hybrid_cut", "rebirth"),
    ("hybrid_cut", "migration"),
])
def test_algorithm_survives_crash(algorithm, partition, recovery):
    spec = WORKLOADS[algorithm]
    graph = spec["graph"]()
    common = dict(num_nodes=5, max_iterations=spec["iterations"],
                  partition=partition, algorithm_kwargs=spec["kwargs"],
                  seed=11)
    clean = run_job(graph, algorithm, **common)
    failed = run_job(graph, algorithm, recovery=recovery,
                     failures=[(2, [1])], **common)
    assert failed.recoveries
    for v in range(graph.num_vertices):
        assert close(failed.values[v], clean.values[v]), \
            f"vertex {v}: {failed.values[v]} != {clean.values[v]}"


@pytest.mark.parametrize("algorithm", ["pagerank", "cd", "als"])
def test_algorithm_survives_crash_under_checkpoint(algorithm):
    spec = WORKLOADS[algorithm]
    graph = spec["graph"]()
    common = dict(num_nodes=5, max_iterations=spec["iterations"],
                  algorithm_kwargs=spec["kwargs"], seed=11)
    clean = run_job(graph, algorithm, ft_mode="none", **common)
    failed = run_job(graph, algorithm, ft_mode="checkpoint",
                     checkpoint_interval=3, failures=[(4, [1])], **common)
    for v in range(graph.num_vertices):
        assert close(failed.values[v], clean.values[v], rel=1e-12)
