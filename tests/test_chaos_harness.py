"""Unit tests for the chaos harness itself (schedule DSL, controller,
invariant checker, oracle plumbing)."""

from __future__ import annotations

import pytest

from repro.chaos import (ChaosController, ChaosEvent, FailureSchedule,
                         InvariantChecker, InvariantViolation,
                         run_differential, run_with_chaos, values_close)
from repro.cluster.network import Message, MessageKind
from repro.errors import ConfigError
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(60, alpha=2.0, seed=7, name="harness-pl")


def small_kwargs(**over):
    kw = dict(num_nodes=4, ft_mode="replication", recovery="rebirth",
              partition="hash_edge_cut", max_iterations=6, ft_level=1,
              num_standby=2)
    kw.update(over)
    return kw


class TestScheduleDSL:
    def test_event_validation(self):
        with pytest.raises(ConfigError):
            ChaosEvent(-1)
        with pytest.raises(ConfigError):
            ChaosEvent(0, phase="mid-barrier")
        with pytest.raises(ConfigError):
            ChaosEvent(0, target="busiest")
        with pytest.raises(ConfigError):
            ChaosEvent(0, count=0)

    def test_builder_chaining(self):
        sched = (FailureSchedule(seed=5)
                 .crash(1, phase="gather")
                 .crash(2, phase="barrier", target="most-loaded", count=2)
                 .with_message_faults(duplicate=0.1, delay=0.2))
        assert len(sched.events) == 2
        assert sched.total_crashes == 3
        assert sched.message_faults_enabled
        assert "seed=5" in sched.describe()

    def test_probability_validation(self):
        with pytest.raises(ConfigError):
            FailureSchedule().with_message_faults(duplicate=1.5)

    def test_standby_events_not_counted(self):
        sched = FailureSchedule().crash(1, target="standby")
        assert sched.total_crashes == 0

    def test_random_is_deterministic(self):
        a = FailureSchedule.random(123, max_iterations=5, max_concurrent=2)
        b = FailureSchedule.random(123, max_iterations=5, max_concurrent=2)
        assert a.events == b.events
        assert (a.duplicate_prob, a.delay_prob) == \
               (b.duplicate_prob, b.delay_prob)
        c = FailureSchedule.random(124, max_iterations=5, max_concurrent=2)
        assert (a.events, a.duplicate_prob, a.delay_prob) != \
               (c.events, c.duplicate_prob, c.delay_prob) or True
        # Different seeds must differ *somewhere* over a small sample.
        assert any(
            FailureSchedule.random(s, max_iterations=5).events != a.events
            for s in range(200, 210))

    def test_random_respects_concurrency_budget(self):
        for seed in range(50):
            sched = FailureSchedule.random(seed, max_iterations=6,
                                           max_concurrent=2, max_events=4)
            per_iter: dict[int, int] = {}
            for ev in sched.events:
                per_iter[ev.iteration] = per_iter.get(ev.iteration, 0) \
                    + ev.count
            assert all(v <= 2 for v in per_iter.values()), sched.describe()
            assert sched.drop_prob == 0.0  # drops violate fail-stop

    def test_scaled_to_caps_counts(self):
        sched = FailureSchedule(seed=1).crash(0, count=3).crash(1, count=1)
        scaled = sched.scaled_to(1)
        assert [e.count for e in scaled.events] == [1, 1]


class TestController:
    def test_events_fire_once_across_rollback(self, graph):
        sched = FailureSchedule(seed=3).crash(2, phase="gather",
                                              target="random")
        result, controller, _ = run_with_chaos(
            graph, "pagerank", sched, **small_kwargs())
        assert len(controller.fired_events) == 1
        assert len(result.recoveries) == 1
        # The crashed iteration was retried without re-firing the event.
        assert result.recoveries[0].at_iteration == 2

    def test_expired_events_do_not_resurrect(self, graph):
        # Checkpoint recovery rewinds engine.iteration below the event's
        # iteration; the fired/expired bookkeeping must not re-fire it.
        sched = FailureSchedule(seed=3).crash(3, phase="superstep_start")
        result, controller, _ = run_with_chaos(
            graph, "pagerank", sched, check_invariants=False,
            **small_kwargs(ft_mode="checkpoint", checkpoint_interval=2,
                           checkpoint_in_memory=True))
        assert len(controller.fired_events) == 1
        assert len(result.recoveries) == 1

    def test_standby_crash_is_not_a_worker_failure(self, graph):
        sched = FailureSchedule(seed=3).crash(1, phase="superstep_start",
                                              target="standby")
        result, controller, _ = run_with_chaos(
            graph, "pagerank", sched, **small_kwargs())
        assert len(controller.fired_events) == 1
        assert result.recoveries == []

    def test_target_predicates_resolve_to_live_nodes(self, graph):
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", **small_kwargs())
        ctl = ChaosController(FailureSchedule(seed=9))
        for predicate in ("most-loaded", "least-loaded", "mirror-heaviest",
                          "random"):
            ev = ChaosEvent(0, target=predicate, count=1)
            targets = ctl.resolve_targets(engine, ev)
            assert len(targets) == 1
            assert targets[0] in engine._alive()

    def test_one_worker_always_survives(self, graph):
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", **small_kwargs())
        ctl = ChaosController(FailureSchedule(seed=9))
        ev = ChaosEvent(0, target="random", count=99)
        assert len(ctl.resolve_targets(engine, ev)) == 3  # of 4 nodes

    def test_message_verdicts_deterministic(self):
        sched = FailureSchedule(seed=11).with_message_faults(
            duplicate=0.3, delay=0.3)
        msg = Message(MessageKind.SYNC, 0, 1, None, 16)
        verdicts_a = [ChaosController(sched).message_verdict(msg)
                      for _ in range(1)]
        ctl_b = ChaosController(sched)
        assert ctl_b.message_verdict(msg) == verdicts_a[0]

    def test_never_duplicates_gather(self):
        sched = FailureSchedule(seed=11).with_message_faults(duplicate=1.0)
        ctl = ChaosController(sched)
        msg = Message(MessageKind.GATHER, 0, 1, None, 16)
        assert ctl.message_verdict(msg) != "duplicate"
        sync = Message(MessageKind.SYNC, 0, 1, None, 16)
        assert ctl.message_verdict(sync) == "duplicate"

    def test_message_faults_preserve_convergence(self, graph):
        from repro.api import run_job
        baseline = run_job(graph, "pagerank", **small_kwargs()).values
        sched = FailureSchedule(seed=21).with_message_faults(
            duplicate=0.3, delay=0.3)
        report = run_differential(graph, "pagerank", sched,
                                  baseline=baseline, **small_kwargs())
        assert report.matches, report.summary()


class TestInvariantChecker:
    def test_clean_run_passes(self, graph):
        sched = FailureSchedule(seed=1)  # no faults at all
        result, _, checker = run_with_chaos(graph, "pagerank", sched,
                                            **small_kwargs())
        assert checker.checks >= result.num_iterations

    def test_catches_value_divergence(self, graph):
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", **small_kwargs())
        checker = InvariantChecker(context="unit-test")
        engine.attach_chaos(checker)
        engine.run(max_iterations=1)
        # Corrupt one replica value behind the engine's back.
        for node in engine._alive():
            lg = engine.local_graphs[node]
            slot = next(iter(lg.iter_masters()))
            if not slot.meta.replica_positions:
                continue
            rnode, pos = next(iter(slot.meta.replica_positions.items()))
            engine.local_graphs[rnode].slots[pos].value = -123.0
            break
        with pytest.raises(InvariantViolation, match="unit-test"):
            checker.check_all(engine)

    def test_catches_missing_replica(self, graph):
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", **small_kwargs())
        checker = InvariantChecker()
        engine.run(max_iterations=1)
        node = engine._alive()[0]
        slot = next(iter(engine.local_graphs[node].iter_masters()))
        slot.meta.replica_positions.clear()
        slot.meta.mirror_nodes.clear()
        with pytest.raises(InvariantViolation, match="copies"):
            checker.check_all(engine)

    def test_catches_index_corruption(self, graph):
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", **small_kwargs())
        checker = InvariantChecker()
        engine.run(max_iterations=1)
        lg = engine.local_graphs[engine._alive()[0]]
        gid = next(iter(lg.index_of))
        lg.index_of[gid] = (lg.index_of[gid] + 1) % len(lg.slots)
        with pytest.raises(InvariantViolation):
            checker.check_all(engine)


class TestOracle:
    def test_values_close(self):
        assert values_close(1.0, 1.0 + 1e-12)
        assert not values_close(1.0, 1.1)
        assert values_close((1.0, 2.0), (1.0, 2.0))
        assert not values_close((1.0,), (1.0, 2.0))
        assert values_close("a", "a")
        assert not values_close("a", 1.0)

    def test_report_summary_carries_repro_command(self, graph):
        sched = FailureSchedule(seed=77).crash(1, phase="gather")
        report = run_differential(
            graph, "pagerank", sched,
            command="pytest --chaos-seed 77 -k case", **small_kwargs())
        assert report.matches
        assert "--chaos-seed 77" in report.summary()
        assert "seed=77" in report.summary()
