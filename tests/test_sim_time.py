"""Simulated-time semantics: monotone clocks, recovery accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_job
from repro.ft.edge_ckpt import EdgeRecord, dedupe_edge_records
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(200, alpha=2.0, seed=87, avg_degree=5.0)


class TestClockMonotonicity:
    def test_iteration_clocks_increase(self, graph):
        result = run_job(graph, "pagerank", num_nodes=4, max_iterations=5)
        clocks = [s.sim_clock_s for s in result.iteration_stats]
        assert all(b > a for a, b in zip(clocks, clocks[1:]))
        assert all(s.sim_time_s > 0 for s in result.iteration_stats)

    def test_recovery_shows_up_as_a_time_gap(self, graph):
        clean = run_job(graph, "pagerank", num_nodes=4, max_iterations=6)
        failed = run_job(graph, "pagerank", num_nodes=4, max_iterations=6,
                         failures=[(3, [1], "after_commit")])
        assert failed.total_sim_time_s > clean.total_sim_time_s + 6.0
        stats = failed.recoveries[0]
        # The gap is at least detection + recovery.
        gap = failed.total_sim_time_s - clean.total_sim_time_s
        assert gap >= stats.detection_s * 0.9

    def test_recovery_total_composition(self, graph):
        result = run_job(graph, "pagerank", num_nodes=4, max_iterations=6,
                         failures=[(3, [1])])
        stats = result.recoveries[0]
        assert stats.total_s == pytest.approx(
            stats.reload_s + stats.reconstruct_s + stats.replay_s)
        assert stats.total_with_detection_s == pytest.approx(
            stats.total_s + stats.detection_s)

    def test_larger_data_scale_slower(self, graph):
        small = run_job(graph, "pagerank", num_nodes=4, max_iterations=3)
        big = run_job(graph, "pagerank", num_nodes=4, max_iterations=3,
                      data_scale=500.0)
        assert big.total_sim_time_s > small.total_sim_time_s

    def test_more_nodes_faster_iterations(self):
        """Parallel speedup: the per-iteration data terms shrink."""
        g = generators.power_law(3000, alpha=2.0, seed=3, avg_degree=8.0)
        few = run_job(g, "pagerank", num_nodes=2, max_iterations=2,
                      ft_mode="none", data_scale=100.0)
        many = run_job(g, "pagerank", num_nodes=16, max_iterations=2,
                       ft_mode="none", data_scale=100.0)
        assert many.avg_iteration_time_s() < few.avg_iteration_time_s()


class TestDedupeProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                              st.floats(0.1, 10.0)), max_size=40))
    def test_dedupe_invariants(self, raw):
        records = [EdgeRecord(s, d, w) for s, d, w in raw]
        deduped = dedupe_edge_records(records)
        keys = [(r.src, r.dst) for r in deduped]
        # No duplicates survive.
        assert len(keys) == len(set(keys))
        # Every surviving record carries the LAST weight seen.
        for record in deduped:
            last = [r for r in records
                    if (r.src, r.dst) == (record.src, record.dst)][-1]
            assert record.weight == last.weight
        # First-occurrence order is preserved.
        seen = []
        for r in records:
            if (r.src, r.dst) not in seen:
                seen.append((r.src, r.dst))
        assert keys == seen
