"""Network transport tests: batching counters, drops, purges."""

from __future__ import annotations

import pytest

from repro.cluster.network import Message, MessageKind, Network
from repro.errors import UnknownNodeError
from repro.utils.sizing import BYTES_PER_MSG_HEADER


def make_net(alive=None):
    alive = set(alive) if alive is not None else {0, 1, 2}
    return Network(is_alive=lambda n: n in alive), alive


class TestSendDeliver:
    def test_roundtrip(self):
        net, _ = make_net()
        net.send(Message(MessageKind.SYNC, 0, 1, "hello", 10))
        inbox = net.deliver(1)
        assert len(inbox) == 1
        assert inbox[0].payload == "hello"
        assert net.deliver(1) == []  # drained

    def test_local_delivery_not_counted(self):
        net, _ = make_net()
        net.begin_step()
        net.send(Message(MessageKind.SYNC, 1, 1, "self", 10))
        assert net.step_bytes_sent_by(1) == 0
        assert len(net.deliver(1)) == 1
        assert net.totals.total_msgs == 0

    def test_remote_counted_with_header(self):
        net, _ = make_net()
        net.begin_step()
        net.send(Message(MessageKind.SYNC, 0, 1, "x", 10))
        assert net.step_bytes_sent_by(0) == 10 + BYTES_PER_MSG_HEADER
        assert net.step_msgs_sent_by(0) == 1
        assert net.totals.total_msgs == 1
        assert net.totals.msgs_by_kind[MessageKind.SYNC] == 1

    def test_send_to_dead_node_drops(self):
        net, alive = make_net({0, 1})
        net.send(Message(MessageKind.SYNC, 0, 2, "x", 8))
        assert net.dropped_msgs == 1
        assert net.dropped_bytes == 8 + BYTES_PER_MSG_HEADER

    def test_dropped_bytes_accumulate_and_stay_out_of_totals(self):
        net, _ = make_net({0, 1})
        net.begin_step()
        net.send(Message(MessageKind.SYNC, 0, 2, "x", 8))
        net.send(Message(MessageKind.GATHER, 1, 2, "yy", 24))
        assert net.dropped_msgs == 2
        assert net.dropped_bytes == 8 + 24 + 2 * BYTES_PER_MSG_HEADER
        # Dropped traffic never pollutes the delivered-bytes accounting.
        assert net.totals.total_bytes == 0
        assert net.step_bytes_sent_by(0) == 0

    def test_deliver_to_dead_node_raises(self):
        net, _ = make_net({0})
        with pytest.raises(UnknownNodeError):
            net.deliver(5)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(MessageKind.SYNC, 0, 1, "x", -1)


class TestPurges:
    def test_purge_from_drops_in_flight(self):
        net, _ = make_net()
        net.send(Message(MessageKind.SYNC, 0, 1, "a", 8))
        net.send(Message(MessageKind.SYNC, 2, 1, "b", 8))
        assert net.purge_from(0) == 1
        inbox = net.deliver(1)
        assert [m.src for m in inbox] == [2]

    def test_purge_inbox(self):
        net, _ = make_net()
        net.send(Message(MessageKind.SYNC, 0, 1, "a", 8))
        assert net.purge_inbox(1) == 1
        assert net.deliver(1) == []

    def test_purge_empty_queues_is_noop(self):
        net, _ = make_net()
        assert net.purge_from(0) == 0
        assert net.purge_inbox(1) == 0
        # Queues stay usable after purging nothing.
        net.send(Message(MessageKind.SYNC, 0, 1, "a", 8))
        assert len(net.deliver(1)) == 1

    def test_purge_from_drops_self_addressed(self):
        # A crashed node's memory is gone, including messages it queued
        # to itself via the local fast path.
        net, _ = make_net()
        net.send(Message(MessageKind.SYNC, 0, 0, "self", 8))
        assert net.purge_from(0) == 1
        assert net.peek_inbox_size(0) == 0

    def test_double_purge_idempotent(self):
        net, _ = make_net()
        net.send(Message(MessageKind.SYNC, 0, 1, "a", 8))
        net.send(Message(MessageKind.SYNC, 0, 2, "b", 8))
        assert net.purge_from(0) == 2
        assert net.purge_from(0) == 0
        assert net.purge_inbox(1) == 0

    def test_purge_covers_delayed_messages(self):
        net, _ = make_net()
        net.fault_injector = lambda msg: "delay"
        net.send(Message(MessageKind.SYNC, 0, 1, "late", 8))
        assert net.peek_inbox_size(1) == 1
        assert net.purge_from(0) == 1
        assert net.deliver(1) == []


class TestStepCounters:
    def test_begin_step_resets(self):
        net, _ = make_net()
        net.begin_step()
        net.send(Message(MessageKind.SYNC, 0, 1, "a", 8))
        net.begin_step()
        assert net.step_bytes_sent_by(0) == 0
        # lifetime totals survive
        assert net.totals.total_msgs == 1

    def test_pairwise_accumulation(self):
        net, _ = make_net()
        net.begin_step()
        for _ in range(3):
            net.send(Message(MessageKind.GATHER, 0, 2, "p", 8))
        assert net.step_msgs[0][2] == 3
        assert net.peek_inbox_size(2) == 3
