"""Batched columnar transport & sync elision tests (DESIGN.md §10).

Covers the accounting contract (records vs. batches, one header per
physical message), the chaos sub-batch splitting semantics, the
elision differential guarantee, and the hot-path caches (sync-target
precomputation, active-set snapshots).
"""

from __future__ import annotations

import math

import pytest

from repro.api import make_engine
from repro.chaos.controller import ChaosController
from repro.chaos.schedule import FailureSchedule
from repro.cluster.network import Message, MessageKind, Network
from repro.engine.local_graph import LocalGraph
from repro.engine.messages import (
    ActivateBatch,
    GatherBatch,
    RawGatherBatch,
    SyncBatch,
)
from repro.engine.state import MasterMeta, Role, VertexSlot
from repro.graph import generators
from repro.utils.sizing import BYTES_PER_MSG_HEADER, BYTES_PER_VID


def make_net(alive=None):
    alive = set(alive) if alive is not None else {0, 1, 2}
    return Network(is_alive=lambda n: n in alive)


def sync_batch(n: int, full_state: bool = False) -> SyncBatch:
    batch = SyncBatch(full_state)
    for i in range(n):
        batch.append(gid=i, value=float(i), value_nbytes=8,
                     activates=bool(i % 2), self_active=full_state)
    return batch


def run_once(graph, algorithm, partition, **kw):
    kw.setdefault("max_iterations", 30)
    engine = make_engine(graph, algorithm, partition=partition,
                         num_nodes=4, **kw)
    result = engine.run()
    return engine, result


# ---------------------------------------------------------------------------
# accounting: records vs. batches, one header per physical message
# ---------------------------------------------------------------------------


class TestBatchAccounting:
    def test_batch_payload_is_sum_of_record_sizes(self):
        batch = sync_batch(5, full_state=True)
        assert batch.nbytes() == sum(batch.record_nbytes(i)
                                     for i in range(5))
        # Full-state records carry the two flag bytes of the scalar
        # MirrorSyncPayload encoding.
        assert batch.record_nbytes(0) == BYTES_PER_VID + 8 + 2

    def test_traffic_stats_count_records_and_batches_separately(self):
        net = make_net()
        net.begin_step()
        batch = sync_batch(3)
        net.send(Message(MessageKind.SYNC, 0, 1, batch, batch.nbytes()))
        totals = net.totals
        assert totals.total_msgs == 3
        assert totals.total_batches == 1
        assert totals.msgs_by_kind[MessageKind.SYNC] == 3
        assert totals.batches_by_kind[MessageKind.SYNC] == 1
        assert totals.total_bytes == batch.nbytes() + BYTES_PER_MSG_HEADER
        assert net.metrics.value("net.sent_msgs") == 3
        assert net.metrics.value("net.sent_batches") == 1
        # The CPU-cost input counts records too.
        assert net.step_msgs_sent_by(0) == 3

    def test_purge_metric_counts_records(self):
        net = make_net()
        net.begin_step()
        batch = sync_batch(4)
        net.send(Message(MessageKind.SYNC, 0, 1, batch, batch.nbytes()))
        assert net.purge_from(0) == 1  # one physical queue entry
        assert net.purged_msgs == 4   # four logical records
        assert net.step_msgs_sent_by(0) == 0
        assert net.step_bytes_sent_by(0) == 0

    @pytest.mark.parametrize("partition", ["hash_edge_cut", "hybrid_cut"])
    def test_batched_equals_unbatched_minus_saved_headers(self, partition):
        """Wire bytes: per-record payloads + one header per batch.

        The unbatched run ships every record as its own single-record
        batch, so it pays one header per record; batching saves exactly
        (records - batches) headers and changes nothing else.
        """
        graph = generators.power_law(80, alpha=2.0, seed=3, name="pl80")
        _, batched = run_once(graph, "pagerank", partition,
                              sync_elision=False, max_iterations=6)
        _, unbatched = run_once(graph, "pagerank", partition,
                                sync_elision=False, batch_syncs=False,
                                max_iterations=6)
        assert batched.values == unbatched.values
        assert batched.total_messages == unbatched.total_messages
        eng, res = run_once(graph, "pagerank", partition,
                            sync_elision=False, max_iterations=6)
        totals = eng.cluster.network.totals
        saved = (totals.total_msgs - totals.total_batches) \
            * BYTES_PER_MSG_HEADER
        assert saved > 0
        assert res.total_bytes == unbatched.total_bytes - saved


# ---------------------------------------------------------------------------
# chaos: record-level verdicts over batched transport
# ---------------------------------------------------------------------------


class ScriptedInjector:
    """Feeds a fixed per-record verdict sequence to the network."""

    def __init__(self, verdicts):
        self.verdicts = list(verdicts)
        self.calls = 0

    def record(self, msg, index):
        verdict = self.verdicts[self.calls % len(self.verdicts)]
        self.calls += 1
        return verdict

    def message(self, msg):
        return "deliver"


class TestChaosSubBatchSplitting:
    def send_batch(self, verdicts, n=4):
        net = make_net()
        net.begin_step()
        inj = ScriptedInjector(verdicts)
        net.fault_injector = inj.message
        net.record_fault_injector = inj.record
        batch = sync_batch(n)
        net.send(Message(MessageKind.SYNC, 0, 1, batch, batch.nbytes()))
        return net, batch, inj

    def test_one_verdict_per_record(self):
        _, _, inj = self.send_batch(["deliver"], n=4)
        assert inj.calls == 4

    def test_all_deliver_fast_path_keeps_single_batch(self):
        net, batch, _ = self.send_batch(["deliver"], n=4)
        inbox = net.deliver(1)
        assert len(inbox) == 1
        assert inbox[0].payload is batch  # no copy on the fast path
        assert net.totals.total_batches == 1
        assert net.totals.total_msgs == 4

    def test_mixed_verdicts_split_into_sub_batches(self):
        verdicts = ["deliver", "drop", "duplicate", "delay"]
        net, batch, _ = self.send_batch(verdicts, n=4)
        inbox = net.deliver(1)
        # main sub-batch (records 0 and 2), duplicate (record 2), then
        # the delayed sub-batch (record 3) at the back of the inbox.
        assert [m.payload.gids for m in inbox] == [[0, 2], [2], [3]]
        assert net.chaos_dropped_msgs == 1
        assert net.chaos_dropped_bytes == batch.record_nbytes(1)
        assert net.chaos_duplicated_msgs == 1
        assert net.chaos_delayed_msgs == 1
        # Record counters see 4 delivered records (0, 2, 2-dup, 3);
        # each of the 3 sub-batches pays its own header.
        assert net.totals.total_msgs == 4
        assert net.totals.total_batches == 3
        payload = sum(batch.record_nbytes(i) for i in (0, 2, 2, 3))
        assert net.totals.total_bytes == payload \
            + 3 * BYTES_PER_MSG_HEADER

    def test_duplicate_sub_batch_is_independent(self):
        net, _, _ = self.send_batch(["duplicate", "deliver"], n=2)
        main, dup = net.deliver(1)
        main.payload.values[0] = -99.0
        assert dup.payload.values[0] != -99.0

    def test_controller_attach_wires_record_injector(self):
        graph = generators.ring(24)
        engine = make_engine(graph, "pagerank", num_nodes=3,
                             max_iterations=2)
        sched = FailureSchedule(seed=9).with_message_faults(drop=0.05)
        ChaosController(sched).attach(engine)
        net = engine.cluster.network
        assert net.fault_injector is not None
        assert net.record_fault_injector is not None
        engine.run()  # record verdicts drawn without error


# ---------------------------------------------------------------------------
# sync elision
# ---------------------------------------------------------------------------


def _cc_run(partition, **kw):
    # Label min-propagation re-activates vertices through multiple
    # paths without improving their label — the no-op updates the
    # elision rule targets.
    graph = generators.power_law(80, alpha=2.0, seed=3, name="pl80e")
    kw.setdefault("max_iterations", 40)
    return run_once(graph, "cc", partition, **kw)


class TestSyncElision:
    @pytest.mark.parametrize("partition", ["hash_edge_cut", "hybrid_cut"])
    def test_differential_no_chaos(self, partition):
        eng_on, res_on = _cc_run(partition)
        eng_off, res_off = _cc_run(partition, sync_elision=False)
        assert res_on.values == res_off.values
        assert eng_on.syncs_elided > 0
        assert eng_off.syncs_elided == 0
        assert res_on.total_messages < res_off.total_messages
        assert res_on.total_bytes < res_off.total_bytes

    @pytest.mark.parametrize("partition", ["hash_edge_cut", "hybrid_cut"])
    def test_differential_under_chaos(self, partition):
        """Crash + duplicate/delay faults: elision must not change the
        outcome.  ``drop`` faults are excluded by design — elision
        (like the real systems' TCP transport) assumes syncs are
        reliably delivered; the unbatched path only heals a silent
        drop by accident of its redundant re-sends (DESIGN.md §10)."""
        _, clean = _cc_run(partition)

        def chaotic(sync_elision):
            graph = generators.power_law(80, alpha=2.0, seed=3,
                                         name="pl80e")
            engine = make_engine(graph, "cc", partition=partition,
                                 num_nodes=4, max_iterations=40,
                                 sync_elision=sync_elision)
            sched = (FailureSchedule(seed=11)
                     .crash(3, phase="sync")
                     .with_message_faults(duplicate=0.03, delay=0.03))
            ChaosController(sched).attach(engine)
            return engine, engine.run()

        eng_on, res_on = chaotic(True)
        _, res_off = chaotic(False)
        assert res_on.values == res_off.values == clean.values
        assert eng_on.syncs_elided > 0

    def test_elided_master_still_commits_deactivation(self):
        # CC converges and halts: elided no-op syncs must not keep
        # masters (or their replicas' view of them) active forever.
        engine, result = _cc_run("hash_edge_cut")
        assert result.halted_early
        assert engine.syncs_elided > 0


# ---------------------------------------------------------------------------
# satellite caches: sync targets and active-set snapshots
# ---------------------------------------------------------------------------


class TestSyncTargetCache:
    def test_targets_cached_and_invalidated(self):
        meta = MasterMeta(replica_positions={1: 0, 2: 3, 3: 1},
                          mirror_nodes=[2], master_node=0)
        first = meta.sync_targets()
        assert first == ((1, False), (2, True), (3, False))
        assert meta.sync_targets() is first  # cached
        assert meta.mirror_set == frozenset({2})
        del meta.replica_positions[3]
        meta.mirror_nodes.append(1)
        meta.invalidate_replica_cache()
        assert meta.sync_targets() == ((1, True), (2, True))
        assert meta.mirror_set == frozenset({1, 2})

    def test_recovery_refreshes_targets(self):
        graph = generators.power_law(60, alpha=2.0, seed=7, name="pl60")
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             max_iterations=8, recovery="migration",
                             num_standby=0)
        engine.schedule_failure(2, nodes=1)
        engine.run()
        for node in engine.cluster.alive_workers():
            for slot in engine.local_graphs[node].iter_masters():
                targets = dict(slot.meta.sync_targets())
                assert set(targets) == set(slot.meta.replica_positions)
                for replica, is_mirror in targets.items():
                    assert is_mirror == (replica
                                         in slot.meta.mirror_nodes)


class TestActiveSnapshots:
    def make_slot(self, gid, role=Role.MASTER):
        return VertexSlot(gid=gid, role=role, active=False)

    def test_snapshot_cached_until_mutation(self):
        lg = LocalGraph(0)
        a, b = self.make_slot(1), self.make_slot(2)
        lg.add_slot(a)
        lg.add_slot(b)
        lg.set_active(a, True)
        snap = lg.active_masters_snapshot()
        assert set(snap) == {1}
        assert lg.active_masters_snapshot() is snap
        lg.set_active(b, True)
        assert set(lg.active_masters_snapshot()) == {1, 2}
        lg.remove_slot(2)
        assert set(lg.active_masters_snapshot()) == {1}

    def test_snapshot_invalidated_by_bulk_activity_write(self):
        """Regression (DESIGN.md §11): the vectorized barrier commit
        flips activity through ``set_active_bulk``; a snapshot cached
        before that write must not survive it, or the next superstep's
        compute loop would run on the previous superstep's active set."""
        lg = LocalGraph(0)
        a = self.make_slot(1)
        b = self.make_slot(2)
        m = self.make_slot(3, role=Role.MIRROR)
        pos = [lg.add_slot(s) for s in (a, b, m)]
        lg.set_active(a, True)
        stale_masters = lg.active_masters_snapshot()
        stale_others = lg.active_others_snapshot()
        assert set(stale_masters) == {1} and stale_others == ()
        lg.set_active_bulk(pos, [False, True, True])
        # Both caches were dropped, slots + sets agree with the bulk
        # write, and the gid landed in the set matching its role.
        assert lg.active_masters_snapshot() is not stale_masters
        assert set(lg.active_masters_snapshot()) == {2}
        assert set(lg.active_others_snapshot()) == {3}
        assert (a.active, b.active, m.active) == (False, True, True)
        assert lg.active_masters == {2} and lg.active_others == {3}

    def test_mid_iteration_activation_takes_effect_next_superstep(self):
        """Regression for the snapshot cache: activations committed at
        the barrier must reach the next superstep's compute loop."""
        graph = generators.chain(16, weighted=True, seed=1)
        for partition in ("hash_edge_cut", "hybrid_cut"):
            engine, result = run_once(graph, "sssp", partition,
                                      max_iterations=40)
            # The SSSP frontier advances one hop per superstep purely
            # via activations: every vertex must end up reachable.
            assert all(math.isfinite(v)
                       for v in result.values.values())
            assert result.num_iterations >= 15


# ---------------------------------------------------------------------------
# misc batch payload helpers
# ---------------------------------------------------------------------------


class TestBatchPayloads:
    def test_select_preserves_columns(self):
        batch = sync_batch(4, full_state=True)
        sub = batch.select([1, 3])
        assert sub.gids == [1, 3]
        assert sub.values == [1.0, 3.0]
        assert sub.activates(0) and sub.activates(1)
        assert sub.nbytes() == (batch.record_nbytes(1)
                                + batch.record_nbytes(3))

    def test_clone_is_deep_enough(self):
        batch = sync_batch(2)
        clone = batch.clone()
        clone.values[0] = -1.0
        clone.gids[1] = 99
        assert batch.values[0] == 0.0
        assert batch.gids[1] == 1

    def test_gather_and_activate_batches(self):
        g = GatherBatch()
        g.append(7, 0.5, 8)
        assert g.nbytes() == BYTES_PER_VID + 8
        a = ActivateBatch([1, 2, 3])
        assert a.record_count == 3
        assert a.nbytes() == 3 * BYTES_PER_VID
        assert a.select([2]).gids == [3]


# ---------------------------------------------------------------------------
# message combining (DESIGN.md §15)
# ---------------------------------------------------------------------------


def raw_gather_batch() -> RawGatherBatch:
    """Three records: a 3-contribution run, a 2-run, a singleton."""
    batch = RawGatherBatch()
    rec = BYTES_PER_VID + 8
    batch.append(10, [0.125, 0.25, 0.5], rec, BYTES_PER_VID + 24)
    batch.append(11, [1.0, 2.0], rec, BYTES_PER_VID + 16)
    batch.append(12, [5.0], rec, BYTES_PER_VID + 8)
    return batch


class TestCombiningPayloads:
    def test_two_tier_accounting(self):
        batch = raw_gather_batch()
        rec = BYTES_PER_VID + 8
        assert batch.record_count == 3           # logical (combined) tier
        assert batch.physical_record_count == 6  # one per contribution
        assert batch.precombine_record_count == 6
        assert batch.nbytes() == 3 * rec
        assert batch.physical_nbytes() == 3 * BYTES_PER_VID + 48
        assert batch.record_nbytes(1) == rec     # logical size, for chaos
        assert [batch.record_folded(i) for i in range(3)] == [3, 2, 1]
        assert batch.contributions_of(1) == [1.0, 2.0]

    def test_empty_group_still_one_physical_record(self):
        batch = RawGatherBatch()
        batch.append(3, [], BYTES_PER_VID + 8, BYTES_PER_VID + 8)
        assert batch.record_count == 1
        assert batch.physical_record_count == 1  # ships the init acc
        assert batch.record_folded(0) == 1

    def test_select_is_group_aware(self):
        batch = raw_gather_batch()
        sub = batch.select([1])
        assert sub.gids == [11]
        assert sub.counts == [2]
        assert sub.contribs == [1.0, 2.0]
        assert sub.nbytes() == batch.record_nbytes(1)
        rest = batch.select([0, 2])
        assert rest.contribs == [0.125, 0.25, 0.5, 5.0]
        clone = batch.clone()
        clone.contribs[0] = -1.0
        assert batch.contribs[0] == 0.125

    def test_gather_folded_column_is_lazy(self):
        g = GatherBatch()
        g.append(1, 0.5, 8)                # no folded info yet
        assert g.folded is None
        assert g.precombine_record_count == 1
        g.append(2, 0.25, 8, folded=4)     # column materializes as 1s
        g.append(3, 0.75, 8)
        assert g.folded == [1, 4, 1]
        assert g.precombine_record_count == 6
        assert g.physical_record_count == 3
        sub = g.select([1, 2])
        assert sub.folded == [4, 1]
        # folded is metadata only: wire bytes are unchanged by it.
        assert g.nbytes() == 3 * (BYTES_PER_VID + 8)

    def test_network_combine_counters(self):
        net = make_net()
        net.begin_step()
        g = GatherBatch()
        g.append(1, 0.5, 8, folded=3)
        g.append(2, 0.25, 8, folded=1)
        net.send(Message(MessageKind.GATHER, 0, 1, g, g.nbytes()))
        assert (net.combine_pre, net.combine_phys) == (4, 2)
        assert net.metrics.value("net.combine.records_pre.gather") == 4
        assert net.metrics.value("net.combine.records_phys.gather") == 2
        raw = raw_gather_batch()
        net.send(Message(MessageKind.GATHER, 0, 1, raw, raw.nbytes()))
        assert (net.combine_pre, net.combine_phys) == (10, 8)
        # Non-gather payloads never touch the combine counters.
        batch = sync_batch(5)
        net.send(Message(MessageKind.SYNC, 0, 1, batch, batch.nbytes()))
        assert (net.combine_pre, net.combine_phys) == (10, 8)
        # The logical tier is what the classic counters keep charging.
        assert net.totals.msgs_by_kind[MessageKind.GATHER] == 5


class TestRawGatherChaos:
    """Record chaos is drawn per *logical* record (satellite: a dropped
    record deducts exactly the contributions that would have folded
    into the lost partial)."""

    def send_raw(self, verdicts):
        net = make_net()
        net.begin_step()
        inj = ScriptedInjector(verdicts)
        net.fault_injector = inj.message
        net.record_fault_injector = inj.record
        batch = raw_gather_batch()
        net.send(Message(MessageKind.GATHER, 0, 1, batch, batch.nbytes()))
        return net, batch, inj

    def test_drop_inside_combined_run(self):
        net, batch, inj = self.send_raw(["deliver", "drop", "deliver"])
        assert inj.calls == 3  # one verdict per logical record, not 6
        (main,) = net.deliver(1)
        # Record 11's whole 2-contribution run vanished with it; the
        # surviving groups are intact and in order.
        assert main.payload.gids == [10, 12]
        assert main.payload.counts == [3, 1]
        assert main.payload.contribs == [0.125, 0.25, 0.5, 5.0]
        assert net.chaos_dropped_msgs == 1
        assert net.chaos_dropped_bytes == batch.record_nbytes(1)

    def test_delay_travels_with_group(self):
        net, _, _ = self.send_raw(["deliver", "delay", "deliver"])
        main, late = net.deliver(1)
        assert main.payload.gids == [10, 12]
        assert late.payload.gids == [11]
        assert late.payload.contribs == [1.0, 2.0]


def _vc_run(partition, combining, chaos=False, **kw):
    graph = generators.power_law(120, alpha=2.0, seed=5, avg_degree=6.0,
                                 name="comb-pl")
    kw.setdefault("max_iterations", 6)
    engine = make_engine(graph, kw.pop("algorithm", "pagerank"),
                         partition=partition, num_nodes=4,
                         combining=combining, **kw)
    if chaos:
        sched = FailureSchedule(seed=13).with_message_faults(drop=0.04,
                                                             delay=0.04)
        ChaosController(sched).attach(engine)
    result = engine.run()
    return engine, result


class TestCombiningDifferential:
    """Combining on/off bit-exactness: values, logical messages, wire
    bytes and simulated time must be identical — only the physical
    record tier (and thus ``combine_ratio``) may differ."""

    @pytest.mark.parametrize("partition", ["random_vertex_cut",
                                           "hybrid_cut"])
    @pytest.mark.parametrize("algorithm,akw", [
        ("pagerank", {}),
        ("sssp", {"algorithm_kwargs": {"source": 0}}),
        ("cc", {}),
        ("degree", {}),
    ])
    def test_on_off_bit_exact(self, partition, algorithm, akw):
        _, on = _vc_run(partition, True, algorithm=algorithm, **akw)
        _, off = _vc_run(partition, False, algorithm=algorithm, **akw)
        assert on.values == off.values
        assert on.total_messages == off.total_messages
        assert on.total_bytes == off.total_bytes
        assert on.total_sim_time_s == off.total_sim_time_s
        assert on.iteration_stats == off.iteration_stats
        assert off.combined_records == 0
        assert off.combine_ratio == 1.0
        if partition == "random_vertex_cut":
            assert on.combine_ratio > 1.5
            assert on.combined_records > 0

    def test_pre_combine_tier_matches_off_mode_physical(self):
        """ON's pre-combine count is exactly what OFF puts on the wire."""
        eng_on, _ = _vc_run("random_vertex_cut", True)
        eng_off, _ = _vc_run("random_vertex_cut", False)
        net_on = eng_on.cluster.network
        net_off = eng_off.cluster.network
        assert net_on.combine_pre == net_off.combine_phys
        assert net_on.combine_phys < net_off.combine_phys

    def test_chaos_record_faults_identical(self):
        """Drop/delay verdicts draw per logical record: the chaos slice
        of the differential must stay bit-exact, because a dropped raw
        record takes exactly the contribution group that would have
        folded into the lost combined partial."""
        eng_on, on = _vc_run("random_vertex_cut", True, chaos=True)
        eng_off, off = _vc_run("random_vertex_cut", False, chaos=True)
        assert on.values == off.values
        assert on.total_messages == off.total_messages
        assert on.total_bytes == off.total_bytes
        net_on, net_off = eng_on.cluster.network, eng_off.cluster.network
        assert net_on.chaos_dropped_msgs == net_off.chaos_dropped_msgs
        assert net_on.chaos_dropped_bytes == net_off.chaos_dropped_bytes
        assert net_on.chaos_delayed_msgs == net_off.chaos_delayed_msgs
        assert net_on.chaos_dropped_msgs > 0  # non-vacuous

    def test_batch_syncs_off_keeps_parity(self):
        """Per-record transport re-splits batches record by record; the
        group-aware select must keep OFF-mode parity through it."""
        _, on = _vc_run("random_vertex_cut", True, batch_syncs=False)
        _, off = _vc_run("random_vertex_cut", False, batch_syncs=False)
        assert on.values == off.values
        assert on.total_messages == off.total_messages
        assert on.total_bytes == off.total_bytes
