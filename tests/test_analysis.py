"""Census tests backing the Fig. 3 analysis."""

from __future__ import annotations

import numpy as np

from repro.graph import generators
from repro.graph.analysis import (
    degree_stats,
    selfish_vertices,
    vertices_without_replicas,
)
from repro.graph.builder import GraphBuilder
from repro.partition.hash_edge_cut import hash_edge_cut


class TestDegreeStats:
    def test_star(self):
        g = generators.star(5, inward=True)
        stats = degree_stats(g)
        assert stats.num_vertices == 6
        assert stats.max_in_degree == 5
        assert stats.num_selfish == 1  # the hub has no out-edges
        assert stats.selfish_fraction == 1 / 6

    def test_empty_graph(self):
        g = GraphBuilder(num_vertices=0).build()
        stats = degree_stats(g)
        assert stats.num_vertices == 0
        assert stats.selfish_fraction == 0.0


class TestSelfish:
    def test_selfish_are_sinks(self):
        g = generators.power_law(400, alpha=2.0, seed=1, selfish_frac=0.2)
        for v in selfish_vertices(g):
            assert g.out_degree(int(v)) == 0


class TestReplicaCensus:
    def test_split_classes(self):
        # 0 -> 1 on one node; 2 isolated selfish; all on node 0 except 1.
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.ensure_vertex(2)
        g = builder.build()
        master_of = np.array([0, 0, 0])
        selfish, normal = vertices_without_replicas(g, master_of)
        # vertex 0 has out-edge to co-located 1: no replica, normal class
        assert 0 in normal
        # vertices 1, 2 have no out-edges: selfish class
        assert set(selfish.tolist()) == {1, 2}

    def test_remote_edge_creates_replica(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        g = builder.build()
        master_of = np.array([0, 1])
        selfish, normal = vertices_without_replicas(g, master_of)
        assert 0 not in normal.tolist()  # 0 is replicated on node 1

    def test_census_matches_partitioning(self, small_powerlaw):
        g = small_powerlaw
        part = hash_edge_cut(g, 8)
        selfish, normal = vertices_without_replicas(g, part.master_of)
        assert len(set(selfish.tolist()) & set(normal.tolist())) == 0
        # All selfish vertices are replica-less by definition.
        assert len(selfish) == int((g.out_degrees() == 0).sum())
