"""Property-based tests (hypothesis) on the core invariants.

These fuzz small random graphs and configurations against the
invariants in DESIGN.md: partitioning completeness (P1), replication
coverage (P2/P3), and the recovery-equivalence property (P4).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import run_job
from repro.config import FaultToleranceConfig, FTMode
from repro.ft.replication import plan_replication
from repro.graph.builder import GraphBuilder
from repro.partition import (
    grid_vertex_cut,
    hash_edge_cut,
    hybrid_cut,
    random_vertex_cut,
)

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def small_graphs(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    builder = GraphBuilder(num_vertices=n, name="hyp")
    for _ in range(m):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        builder.add_edge(src, dst)
    return builder.build()


class TestPartitioningProperties:
    @SLOW
    @given(graph=small_graphs(), num_nodes=st.integers(2, 6),
           seed=st.integers(0, 10))
    def test_edge_cut_assigns_every_vertex(self, graph, num_nodes, seed):
        part = hash_edge_cut(graph, num_nodes, seed=seed)
        part.validate(graph)
        assert len(part.master_of) == graph.num_vertices

    @SLOW
    @given(graph=small_graphs(), num_nodes=st.integers(2, 6),
           seed=st.integers(0, 10))
    def test_vertex_cuts_partition_edges(self, graph, num_nodes, seed):
        for cut in (random_vertex_cut, grid_vertex_cut, hybrid_cut):
            part = cut(graph, num_nodes, seed=seed)
            part.validate(graph)
            counts = np.bincount(part.edge_node, minlength=num_nodes)
            assert counts.sum() == graph.num_edges


class TestReplicationProperties:
    @SLOW
    @given(graph=small_graphs(), num_nodes=st.integers(3, 6),
           level=st.integers(1, 2), seed=st.integers(0, 5))
    def test_plan_covers_every_vertex(self, graph, num_nodes, level, seed):
        part = hash_edge_cut(graph, num_nodes, seed=seed)
        cfg = FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=level)
        plan = plan_replication(graph, part, cfg, seed=seed)
        plan.validate()  # P2/P3 checks inside

    @SLOW
    @given(graph=small_graphs(), num_nodes=st.integers(3, 6),
           seed=st.integers(0, 5))
    def test_vertex_cut_plan_covers(self, graph, num_nodes, seed):
        part = hybrid_cut(graph, num_nodes, seed=seed)
        cfg = FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=1)
        plan_replication(graph, part, cfg, seed=seed).validate()


class TestRecoveryEquivalence:
    """P4 fuzzing: any crash schedule within budget leaves results
    exactly equal to the failure-free run (edge-cut)."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph=small_graphs(max_vertices=25, max_edges=60),
           crash_node=st.integers(0, 3),
           crash_iter=st.integers(0, 4),
           recovery=st.sampled_from(["rebirth", "migration"]),
           phase=st.sampled_from(["compute", "after_commit"]))
    def test_pagerank_equivalence(self, graph, crash_node, crash_iter,
                                  recovery, phase):
        base = run_job(graph, "pagerank", num_nodes=4, max_iterations=5,
                       seed=3)
        failed = run_job(graph, "pagerank", num_nodes=4, max_iterations=5,
                         seed=3, recovery=recovery,
                         failures=[(crash_iter, [crash_node], phase)])
        for v in range(graph.num_vertices):
            assert failed.values[v] == base.values[v]

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph=small_graphs(max_vertices=25, max_edges=60),
           crash_node=st.integers(0, 3),
           recovery=st.sampled_from(["rebirth", "migration"]))
    def test_vertex_cut_equivalence(self, graph, crash_node, recovery):
        base = run_job(graph, "pagerank", num_nodes=4, max_iterations=5,
                       seed=3, partition="hybrid_cut")
        failed = run_job(graph, "pagerank", num_nodes=4, max_iterations=5,
                         seed=3, partition="hybrid_cut", recovery=recovery,
                         failures=[(2, [crash_node])])
        for v in range(graph.num_vertices):
            assert failed.values[v] == pytest.approx(base.values[v],
                                                     rel=1e-9)


class TestBuilderProperties:
    @SLOW
    @given(graph=small_graphs())
    def test_csr_degree_sums(self, graph):
        assert graph.out_degrees().sum() == graph.num_edges
        assert graph.in_degrees().sum() == graph.num_edges

    @SLOW
    @given(graph=small_graphs())
    def test_adjacency_roundtrip(self, graph):
        for v in range(graph.num_vertices):
            for u in graph.out_neighbors(v):
                assert v in graph.in_neighbors(int(u))


class TestVectorizedKernelProperties:
    """DESIGN.md §11 fuzzing: the SoA CSR build → edge-fold → apply
    round trip must equal a per-vertex reference fold bit-for-bit on
    arbitrary graphs — including inactive-vertex masking (unselected
    accumulators stay at their init value) and dangling vertices
    (no in-edges → ``has`` stays False and apply sees the identity)."""

    @staticmethod
    def _single_node_topo(graph):
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", num_nodes=1,
                             ft_mode="none", max_iterations=1)
        lg = engine.local_graphs[0]
        return lg, lg.topology()

    @SLOW
    @given(graph=small_graphs(), mask_seed=st.integers(0, 1000))
    def test_pagerank_fold_matches_scalar_reference(self, graph,
                                                    mask_seed):
        from repro.algorithms.kernels import PageRankKernel

        lg, topo = self._single_node_topo(graph)
        kernel = PageRankKernel(damping=0.85)
        rng = np.random.default_rng(mask_seed)
        values = rng.uniform(0.1, 2.0, size=topo.n)
        sel = rng.random(topo.n) < 0.6
        sel &= topo.occupied
        esel = np.flatnonzero(sel[topo.in_dst]) \
            if topo.in_dst.size else topo.in_dst
        acc, has = kernel.edge_fold(topo, values, esel)

        # Per-vertex reference: sequential left-to-right fold in edge
        # order, skipping zero-out-degree sources like the scalar loop.
        ref = np.zeros(topo.n)
        ref_has = np.zeros(topo.n, dtype=bool)
        for e in esel.tolist():
            src, dst = int(topo.in_src[e]), int(topo.in_dst[e])
            ref_has[dst] = True
            if topo.out_deg_f[src] > 0.0:
                ref[dst] += float(values[src]) / float(topo.out_deg_f[src])
        assert np.array_equal(has, ref_has)
        # Bit-exact, not approx: np.add.at accumulates in index order.
        assert np.array_equal(acc, ref)
        # Inactive masking: unselected positions keep the init value.
        assert not acc[~sel].any()
        assert not has[~sel].any()

        new = kernel.apply(topo.gids, values, acc, has,
                           ctx=None)
        expected = (1.0 - 0.85) + 0.85 * acc
        assert np.array_equal(new, expected)

    @SLOW
    @given(graph=small_graphs(), mask_seed=st.integers(0, 1000))
    def test_sssp_min_fold_and_dangling(self, graph, mask_seed):
        from repro.algorithms.kernels import SSSPKernel

        lg, topo = self._single_node_topo(graph)
        kernel = SSSPKernel(source=0)
        rng = np.random.default_rng(mask_seed)
        values = rng.uniform(0.0, 10.0, size=topo.n)
        sel = topo.occupied.copy()
        esel = np.flatnonzero(sel[topo.in_dst]) \
            if topo.in_dst.size else topo.in_dst
        acc, has = kernel.edge_fold(topo, values, esel)

        ref = np.full(topo.n, np.inf)
        for e in esel.tolist():
            src, dst = int(topo.in_src[e]), int(topo.in_dst[e])
            ref[dst] = min(ref[dst], float(values[src])
                           + float(topo.in_w[e]))
        assert np.array_equal(acc, ref)
        # Dangling vertices (no in-edges) never get an accumulator.
        dangling = topo.occupied & ~topo.has_in
        assert not has[dangling].any()
        assert np.isinf(acc[dangling]).all()
        # Min-apply keeps the old distance where nothing arrived.
        new = kernel.apply(topo.gids, values, acc, has, ctx=None)
        assert np.array_equal(new[dangling], values[dangling])

    @SLOW
    @given(graph=small_graphs(), mask_seed=st.integers(0, 1000))
    def test_cc_presence_gated_apply(self, graph, mask_seed):
        from repro.algorithms.kernels import CCKernel

        lg, topo = self._single_node_topo(graph)
        kernel = CCKernel()
        rng = np.random.default_rng(mask_seed)
        values = rng.integers(0, graph.num_vertices,
                              size=topo.n).astype(np.int64)
        sel = rng.random(topo.n) < 0.5
        sel &= topo.occupied
        esel = np.flatnonzero(sel[topo.in_dst]) \
            if topo.in_dst.size else topo.in_dst
        acc, has = kernel.edge_fold(topo, values, esel)
        new = kernel.apply(topo.gids, values, acc, has, ctx=None)
        # Presence-gated: positions without any contribution keep the
        # old label exactly (the int64 sentinel never leaks through).
        assert np.array_equal(new[~has], values[~has])
        ref = values.copy()
        for e in esel.tolist():
            src, dst = int(topo.in_src[e]), int(topo.in_dst[e])
            ref[dst] = min(ref[dst], values[src])
        assert np.array_equal(new, ref)

    @SLOW
    @given(graph=small_graphs())
    def test_translate_roundtrip(self, graph):
        """gid -> position translation inverts the position -> gid map
        for every occupied slot."""
        lg, topo = self._single_node_topo(graph)
        occ = np.flatnonzero(topo.occupied)
        assert np.array_equal(topo.translate(topo.gids[occ]), occ)


class TestCombinerProperties:
    """Combining-layer invariants (DESIGN.md §15): the declared
    combiners are commutative-associative over the values the programs
    produce, and the raw wire format's receiver-side group fold equals
    the sender-side fold bit-for-bit for any contribution multiset."""

    @SLOW
    @given(contribs=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                       allow_nan=False), max_size=20),
           order_seed=st.integers(0, 1000),
           name=st.sampled_from(["min", "max"]))
    def test_min_max_fold_is_order_free(self, contribs, order_seed, name):
        from repro.engine.combine import fold_contributions
        acc, folded = fold_contributions(name, None, contribs)
        rng = np.random.default_rng(order_seed)
        shuffled = [contribs[i] for i in rng.permutation(len(contribs))]
        acc2, folded2 = fold_contributions(name, None, shuffled)
        assert acc == acc2 and folded == folded2 == len(contribs)

    @SLOW
    @given(contribs=st.lists(st.integers(-10**6, 10**6), max_size=20),
           order_seed=st.integers(0, 1000))
    def test_sum_fold_is_order_free_on_exact_values(self, contribs,
                                                    order_seed):
        # float sums are only order-free when every partial is exactly
        # representable — integer-valued contributions are; that is why
        # the determinism contract pins the fold order instead of
        # relying on commutativity of float addition.
        from repro.engine.combine import fold_contributions
        floats = [float(c) for c in contribs]
        acc, _ = fold_contributions("sum", 0.0, floats)
        rng = np.random.default_rng(order_seed)
        shuffled = [floats[i] for i in rng.permutation(len(floats))]
        acc2, _ = fold_contributions("sum", 0.0, shuffled)
        assert acc == acc2

    @SLOW
    @given(groups=st.lists(st.lists(st.floats(min_value=0.0,
                                              max_value=1e3,
                                              allow_nan=False),
                                    max_size=6),
                           min_size=1, max_size=8),
           name=st.sampled_from(["sum", "min", "max"]))
    def test_receiver_group_fold_matches_sender_fold(self, groups, name):
        """RawGatherBatch round trip: folding each shipped group on the
        receiver reproduces the partial the sender would have combined,
        in both the scalar and the vectorized (ufunc.at) fold."""
        from repro.engine.combine import fold_contributions, ufunc_of

        batch_counts = np.array([len(g) for g in groups], dtype=np.int64)
        flat = [c for g in groups for c in g]
        init = 0.0 if name == "sum" else None
        expected = [fold_contributions(name, init, g)[0] for g in groups]

        # Scalar receiver fold (fold_raw_batch's loop).
        scalar = [fold_contributions(name, init, g)[0] for g in groups]
        assert scalar == expected

        # Vectorized receiver fold: index-order ufunc scatter.
        sentinel = {"sum": 0.0, "min": np.inf, "max": -np.inf}[name]
        acc = np.full(len(groups), sentinel, dtype=np.float64)
        if flat:
            ridx = np.repeat(np.arange(len(groups)), batch_counts)
            ufunc_of(name).at(acc, ridx, np.asarray(flat))
        for i, g in enumerate(groups):
            if not g:
                continue  # empty groups keep the fold identity
            want = expected[i]
            if name != "sum" and want is None:
                continue
            assert acc[i] == (want if init is not None or g else sentinel)


class TestRebalanceProperties:
    """Incremental Fennel restreaming (DESIGN.md §14): elastic joins
    and drains must keep every master on a live node, stay deterministic
    under the plan seed, and respect the streaming balance bound."""

    @SLOW
    @given(graph=small_graphs(), num_nodes=st.integers(2, 6),
           seed=st.integers(0, 10), drop=st.integers(0, 1),
           add=st.integers(0, 2))
    def test_rebalance_lands_on_live_nodes_only(self, graph, num_nodes,
                                                seed, drop, add):
        from repro.partition.fennel import fennel_rebalance
        part = hash_edge_cut(graph, num_nodes, seed=seed)
        master_of = list(part.master_of)
        nodes = list(range(num_nodes))
        if drop and len(nodes) > 2:
            nodes.remove(nodes[seed % len(nodes)])
        # Elastic joins allocate non-contiguous ids above the pool.
        nodes.extend(100 + i for i in range(add))
        new_master_of, moves = fennel_rebalance(graph, master_of, nodes,
                                                seed=seed)
        live = set(nodes)
        assert all(node in live for node in new_master_of)
        assert len(new_master_of) == graph.num_vertices
        # `moves` is exactly the delta, sorted by vertex id.
        delta = [(gid, new_master_of[gid])
                 for gid in range(graph.num_vertices)
                 if new_master_of[gid] != master_of[gid]]
        assert moves == delta

    @SLOW
    @given(graph=small_graphs(), num_nodes=st.integers(3, 6),
           seed=st.integers(0, 10))
    def test_rebalance_deterministic_under_seed(self, graph, num_nodes,
                                                seed):
        from repro.partition.fennel import fennel_rebalance
        part = hash_edge_cut(graph, num_nodes, seed=seed)
        master_of = list(part.master_of)
        nodes = [n for n in range(num_nodes) if n != 0] + [100]
        first = fennel_rebalance(graph, master_of, nodes, seed=seed)
        second = fennel_rebalance(graph, list(master_of), list(nodes),
                                  seed=seed)
        assert first == second

    @SLOW
    @given(graph=small_graphs(), num_nodes=st.integers(2, 5),
           seed=st.integers(0, 10), joins=st.integers(1, 2))
    def test_rebalance_balance_bound(self, graph, num_nodes, seed,
                                     joins):
        from collections import Counter

        from repro.partition.fennel import fennel_rebalance
        part = hash_edge_cut(graph, num_nodes, seed=seed)
        nodes = list(range(num_nodes)) + [100 + i for i in range(joins)]
        new_master_of, _moves = fennel_rebalance(
            graph, list(part.master_of), nodes, seed=seed)
        loads = Counter(new_master_of)
        capacity = 1.1 * graph.num_vertices / len(nodes) + 1
        assert max(loads.values()) <= int(capacity) + 1
