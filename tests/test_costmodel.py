"""Cost-model tests: clocks, accounting functions, data_scale."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    NodeClocks,
    barrier_max,
    compute_time,
    pairwise_comm_time,
    storage_read_time,
    storage_write_time,
)
from repro.errors import ConfigError


class TestNodeClocks:
    def test_advance_and_barrier(self):
        clocks = NodeClocks(3)
        clocks.advance(0, 1.0)
        clocks.advance(1, 2.0)
        post = clocks.barrier(DEFAULT_COST_MODEL)
        assert post == pytest.approx(2.0 + DEFAULT_COST_MODEL.barrier_latency_s)
        assert clocks.time_of(0) == post
        assert clocks.time_of(2) == post

    def test_barrier_subset(self):
        clocks = NodeClocks(3)
        clocks.advance(2, 10.0)
        clocks.barrier(DEFAULT_COST_MODEL, participants=[0, 1])
        assert clocks.time_of(0) < 1.0
        assert clocks.time_of(2) == 10.0

    def test_negative_advance_rejected(self):
        clocks = NodeClocks(1)
        with pytest.raises(ValueError):
            clocks.advance(0, -1.0)

    def test_add_node(self):
        clocks = NodeClocks(2)
        clocks.advance(0, 5.0)
        idx = clocks.add_node(clocks.global_max())
        assert idx == 2
        assert clocks.time_of(2) == 5.0


class TestComputeTime:
    def test_scales_with_work_and_cores(self):
        model = DEFAULT_COST_MODEL
        one_core = compute_time(model, 1000, 100, 1)
        four_core = compute_time(model, 1000, 100, 4)
        assert one_core == pytest.approx(4 * four_core)

    def test_data_scale_multiplies(self):
        scaled = replace(DEFAULT_COST_MODEL, data_scale=100.0)
        assert compute_time(scaled, 10, 10, 1) == pytest.approx(
            100 * compute_time(DEFAULT_COST_MODEL, 10, 10, 1))

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            compute_time(DEFAULT_COST_MODEL, 1, 1, 0)


class TestCommTime:
    def test_max_of_directions(self):
        model = DEFAULT_COST_MODEL
        bytes_map = {0: {1: 1_000_000}, 1: {0: 10_000_000}}
        msgs_map = {0: {1: 1}, 1: {0: 1}}
        t0 = pairwise_comm_time(model, bytes_map, msgs_map, 0)
        t1 = pairwise_comm_time(model, bytes_map, msgs_map, 1)
        # node 1 sends 10 MB, node 0 receives 10 MB: both bounded by it
        assert t0 == pytest.approx(t1, rel=0.2)
        assert t0 > 10_000_000 / model.network_bandwidth_bps * 0.99

    def test_idle_node_free(self):
        t = pairwise_comm_time(DEFAULT_COST_MODEL, {}, {}, 3)
        assert t == 0.0


class TestStorageTime:
    def test_write_dominated_by_latency_when_small(self):
        model = DEFAULT_COST_MODEL
        t = storage_write_time(model, 100, 1, in_memory=False)
        assert t == pytest.approx(model.dfs_op_latency_s, rel=0.01)

    def test_in_memory_faster(self):
        model = DEFAULT_COST_MODEL
        slow = storage_read_time(model, 10**9, 1, in_memory=False)
        fast = storage_read_time(model, 10**9, 1, in_memory=True)
        assert fast < slow

    def test_ops_add_latency(self):
        model = DEFAULT_COST_MODEL
        one = storage_read_time(model, 0, 1, in_memory=False)
        five = storage_read_time(model, 0, 5, in_memory=False)
        assert five == pytest.approx(5 * one)


class TestModelValidation:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigError):
            CostModel(network_bandwidth_bps=0)

    def test_dfs_params_switch(self):
        model = DEFAULT_COST_MODEL
        assert model.dfs_params(False)[0] == model.dfs_write_bps
        assert model.dfs_params(True)[0] == model.memdfs_write_bps

    def test_barrier_max_empty(self):
        assert barrier_max([], DEFAULT_COST_MODEL) == 0.0
