"""Generator tests: structural properties of each synthetic family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import generators


class TestErdosRenyi:
    def test_edge_count_close(self):
        g = generators.erdos_renyi(500, 2000, seed=1)
        assert abs(g.num_edges - 2000) <= 50

    def test_deterministic(self):
        a = generators.erdos_renyi(100, 300, seed=9)
        b = generators.erdos_renyi(100, 300, seed=9)
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.targets, b.targets)

    def test_no_self_loops(self):
        g = generators.erdos_renyi(50, 200, seed=2)
        assert not np.any(g.sources == g.targets)


class TestPowerLaw:
    def test_avg_degree_targeting(self):
        g = generators.power_law(2000, alpha=2.0, seed=3, avg_degree=8.0)
        avg = g.num_edges / g.num_vertices
        assert 6.5 <= avg <= 9.5

    def test_selfish_fraction(self):
        g = generators.power_law(2000, alpha=2.0, seed=3, avg_degree=4.0,
                                 selfish_frac=0.2)
        frac = float((g.out_degrees() == 0).mean())
        assert 0.15 <= frac <= 0.25

    def test_heavy_tail_in_degree(self):
        g = generators.power_law(2000, alpha=2.0, seed=4, avg_degree=6.0)
        in_deg = g.in_degrees()
        assert in_deg.max() > 10 * in_deg.mean()

    def test_lower_alpha_means_more_edges(self):
        dense = generators.power_law(1000, alpha=1.8, seed=5)
        sparse = generators.power_law(1000, alpha=2.4, seed=5)
        assert dense.num_edges > sparse.num_edges

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(GraphError):
            generators.power_law(10, alpha=1.0)

    def test_rejects_bad_selfish_frac(self):
        with pytest.raises(GraphError):
            generators.power_law(10, alpha=2.0, selfish_frac=1.0)


class TestSocialNetwork:
    def test_reciprocity_preserves_selfish(self):
        g = generators.social_network(1000, avg_degree=6.0, seed=6,
                                      reciprocity=0.7, selfish_frac=0.15)
        frac = float((g.out_degrees() == 0).mean())
        assert 0.10 <= frac <= 0.20

    def test_has_mutual_edges(self):
        g = generators.social_network(300, avg_degree=6.0, seed=7,
                                      reciprocity=0.9)
        pairs = set(zip(g.sources.tolist(), g.targets.tolist()))
        mutual = sum(1 for (u, v) in pairs if (v, u) in pairs)
        assert mutual > len(pairs) * 0.3


class TestRoadNetwork:
    def test_grid_degrees(self):
        g = generators.road_network(5, 5, seed=1)
        # Interior vertices have 4 out-edges; bidirectional lattice.
        assert g.out_degree(12) == 4
        assert g.out_degree(0) == 2
        assert g.num_edges == 2 * (2 * 5 * 4)

    def test_weights_lognormal_positive(self):
        g = generators.road_network(10, 10, seed=2)
        assert np.all(g.weights > 0)
        # log-normal(0.4, 1.2): median ~ e^0.4 ~ 1.5
        assert 0.8 < np.median(g.weights) < 3.0

    def test_symmetric(self):
        g = generators.road_network(4, 4, seed=3)
        pairs = set(zip(g.sources.tolist(), g.targets.tolist()))
        assert all((v, u) in pairs for (u, v) in pairs)

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            generators.road_network(0, 5)


class TestBipartite:
    def test_structure(self):
        g = generators.bipartite(100, 20, edges_per_user=5, seed=1)
        assert g.num_vertices == 120
        # Every edge crosses the partition.
        users = g.sources < 100
        items = g.targets >= 100
        crossing = users == items
        assert crossing.all()

    def test_both_directions_present(self):
        g = generators.bipartite(50, 10, edges_per_user=4, seed=2)
        pairs = set(zip(g.sources.tolist(), g.targets.tolist()))
        assert all((v, u) in pairs for (u, v) in pairs)

    def test_ratings_in_range(self):
        g = generators.bipartite(50, 10, edges_per_user=4, seed=3)
        assert np.all((g.weights >= 1.0) & (g.weights <= 5.0))

    def test_no_selfish(self):
        g = generators.bipartite(50, 10, edges_per_user=4, seed=4)
        connected = (g.in_degrees() > 0) | (g.out_degrees() > 0)
        assert not np.any((g.out_degrees() == 0) & connected)


class TestStructured:
    def test_ring(self):
        g = generators.ring(5)
        assert g.out_neighbors(4).tolist() == [0]
        assert g.num_edges == 5

    def test_star_inward(self):
        g = generators.star(4, inward=True)
        assert g.in_degree(0) == 4
        assert g.out_degree(0) == 0

    def test_star_outward(self):
        g = generators.star(4, inward=False)
        assert g.out_degree(0) == 4

    def test_complete(self):
        g = generators.complete(4)
        assert g.num_edges == 12

    def test_chain_weighted(self):
        g = generators.chain(5, weighted=True, seed=1)
        assert g.num_edges == 4
        assert np.all(g.weights > 0)

    def test_community_graph_two_blocks(self):
        g = generators.community_graph(2, 30, seed=1)
        assert g.num_vertices == 60
        # Intra-community edges dominate.
        same = (g.sources // 30) == (g.targets // 30)
        assert same.mean() > 0.5
