"""Algorithm unit tests: program hooks plus small end-to-end runs."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import (
    ALGORITHMS,
    AlternatingLeastSquares,
    CommunityDetection,
    PageRank,
    SingleSourceShortestPath,
)
from repro.api import make_engine, run_job
from repro.engine.vertex_program import ApplyContext, VertexView
from repro.graph import generators

CTX = ApplyContext(iteration=0, num_vertices=10, num_edges=20)


def view(vid=0, value=1.0, out_degree=2, in_degree=1):
    return VertexView(vid=vid, value=value, out_degree=out_degree,
                      in_degree=in_degree)


class TestPageRankUnit:
    def test_gather_divides_by_out_degree(self):
        pr = PageRank()
        acc = pr.gather(0.0, view(value=2.0, out_degree=4), 1.0, 1)
        assert acc == pytest.approx(0.5)

    def test_dangling_source_ignored(self):
        pr = PageRank()
        acc = pr.gather(0.0, view(value=2.0, out_degree=0), 1.0, 1)
        assert acc == 0.0

    def test_apply_damping(self):
        pr = PageRank(damping=0.85)
        assert pr.apply(0, 1.0, 1.0, CTX) == pytest.approx(1.0)
        assert pr.apply(0, 1.0, 0.0, CTX) == pytest.approx(0.15)
        assert pr.apply(0, 1.0, None, CTX) == pytest.approx(0.15)

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)

    def test_history_free(self):
        assert PageRank.history_free


class TestSsspUnit:
    def test_gather_min(self):
        sssp = SingleSourceShortestPath()
        acc = sssp.gather(math.inf, view(value=3.0), 2.0, 1)
        acc = sssp.gather(acc, view(value=1.0), 1.5, 1)
        assert acc == pytest.approx(2.5)

    def test_gather_sum_handles_none(self):
        sssp = SingleSourceShortestPath()
        assert sssp.gather_sum(None, 4.0) == 4.0
        assert sssp.gather_sum(2.0, None) == 2.0
        assert sssp.gather_sum(2.0, 4.0) == 2.0

    def test_only_source_initially_active(self):
        sssp = SingleSourceShortestPath(source=3)
        assert sssp.is_initially_active(3)
        assert not sssp.is_initially_active(0)

    def test_activates_only_on_improvement(self):
        sssp = SingleSourceShortestPath()
        ctx = ApplyContext(iteration=5, num_vertices=10, num_edges=20)
        assert sssp.activates_neighbors(1, 5.0, 4.0, ctx)
        assert not sssp.activates_neighbors(1, 4.0, 4.0, ctx)

    def test_negative_source_rejected(self):
        with pytest.raises(ValueError):
            SingleSourceShortestPath(source=-1)


class TestCommunityUnit:
    def test_majority_label_wins(self):
        cd = CommunityDetection()
        acc = None
        for label in (5, 5, 9):
            acc = cd.gather(acc, view(value=label), 1.0, 1)
        assert cd.apply(1, 1, acc, CTX) == 5

    def test_tie_breaks_to_smaller_label(self):
        cd = CommunityDetection()
        acc = {3: 2, 7: 2}
        assert cd.apply(1, 7, acc, CTX) == 3

    def test_current_label_must_be_beaten(self):
        cd = CommunityDetection()
        acc = {3: 2, 1: 2}
        # own label 1 ties the best count and is smaller: keep it
        assert cd.apply(1, 1, acc, CTX) == 1

    def test_gather_sum_merges_counts(self):
        cd = CommunityDetection()
        merged = cd.gather_sum({1: 2}, {1: 1, 2: 5})
        assert merged == {1: 3, 2: 5}

    def test_empty_gather_keeps_label(self):
        cd = CommunityDetection()
        assert cd.apply(4, 4, None, CTX) == 4

    def test_converges_on_communities(self):
        g = generators.community_graph(3, 25, p_in=0.3, p_out_edges=1,
                                       seed=5)
        result = run_job(g, "cd", num_nodes=4, max_iterations=30)
        labels = [result.values[v] for v in range(g.num_vertices)]
        # Far fewer labels than vertices.
        assert len(set(labels)) < g.num_vertices / 3


class TestAlsUnit:
    def test_sides_alternate(self):
        als = AlternatingLeastSquares(num_users=5, rank=2)
        even = ApplyContext(iteration=0, num_vertices=10, num_edges=0)
        odd = ApplyContext(iteration=1, num_vertices=10, num_edges=0)
        assert als.participates(0, even) and not als.participates(7, even)
        assert als.participates(7, odd) and not als.participates(0, odd)

    def test_initial_values_deterministic(self):
        als = AlternatingLeastSquares(num_users=5, rank=3)
        assert als.initial_value(2, CTX) == als.initial_value(2, CTX)
        assert len(als.initial_value(2, CTX)) == 3

    def test_apply_solves_normal_equations(self):
        als = AlternatingLeastSquares(num_users=1, rank=1,
                                      regularization=0.0)
        # One neighbor with latent x=2, rating 6: w = 6*2 / (2*2) = 3.
        acc = als.gather(None, view(value=(2.0,)), 6.0, 0)
        assert als.apply(0, (0.0,), acc, CTX)[0] == pytest.approx(3.0)

    def test_rmse_decreases_with_training(self):
        g = generators.bipartite(120, 30, edges_per_user=6, seed=9)
        als = AlternatingLeastSquares(num_users=120, rank=3)
        short = make_engine(g, AlternatingLeastSquares(120, rank=3),
                            num_nodes=4, max_iterations=2).run()
        long = make_engine(g, AlternatingLeastSquares(120, rank=3),
                           num_nodes=4, max_iterations=8).run()
        assert als.rmse(g, long.values) < als.rmse(g, short.values)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AlternatingLeastSquares(num_users=0)
        with pytest.raises(ValueError):
            AlternatingLeastSquares(num_users=1, rank=0)

    def test_message_sizes_scale_with_rank(self):
        als = AlternatingLeastSquares(num_users=5, rank=4)
        assert als.value_nbytes((0.0,) * 4) == 32
        assert als.acc_nbytes(None) == (16 + 4) * 8


class TestConnectedComponentsRun:
    def test_components(self, sym_two_components):
        result = run_job(sym_two_components, "cc", num_nodes=3,
                         max_iterations=20)
        values = result.values
        assert values[0] == values[1] == values[2] == values[3] == 0
        assert values[5] == values[6] == values[7] == 5
        assert values[8] == 8  # isolated keeps own id
        assert result.halted_early


class TestRegistry:
    def test_all_registered(self):
        assert set(ALGORITHMS) == {"pagerank", "sssp", "als", "cd", "cc",
                                   "degree"}

    def test_cc_on_vertex_cut(self, sym_two_components):
        result = run_job(sym_two_components, "cc", num_nodes=3,
                         max_iterations=20, partition="random_vertex_cut")
        assert result.values[3] == 0
