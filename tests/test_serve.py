"""Online read-serving layer: snapshot isolation, routing, degradation.

DESIGN.md §13: reads are served from *any* committed replica copy,
snapshot-isolated at the last committed superstep, concurrently with
supersteps and recovery.  The acceptance bar is bit-equality — every
response must equal the value committed at the superstep it is tagged
with, verified against a serving-free replay of the identical job
(:func:`repro.serve.replay.replay_committed_history`).

Covers the satellite checklist: snapshot isolation across superstep
boundaries, flush-free point reads, read-during-recovery degradation
tagging, replica-routing determinism, the selfish read fence closed by
the recovery audit, the replica-read-consistency chaos invariant, and
chaos slices with reads on both execution backends.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.api import make_engine
from repro.chaos import InvariantViolation, ReadConsistencyChecker
from repro.exec.base import BackendSpec
from repro.exec.simulator import SimulatorBackend
from repro.graph import generators
from repro.serve import (
    MISS,
    NEIGHBORHOOD,
    POINT,
    TOPK,
    OpenLoopWorkload,
    ReplicaRouter,
    check_responses,
    replay_committed_history,
    workload_from_config,
)

#: Mirrors the serve-smoke acceptance scenario: a power-law graph large
#: enough to have structural selfish sinks (no out-edges) on every
#: partitioning, which is what arms the selfish read fence.
NUM_VERTICES = 300
PARTS = ["hash_edge_cut", "random_vertex_cut"]

SERVE = (("num_queries", 2000), ("qps", 2000.0), ("seed", 11),
         ("neighborhood_frac", 0.05), ("topk_frac", 0.02))

#: First kill recovers by rebirth; the second (after_commit) by rebirth
#: too when spares remain, by migration when the pool is dry — both
#: paths recompute selfish masters and must fence their reads.
FAILURES = ((2, (0, 1), "compute"), (5, (2,), "after_commit"))


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(NUM_VERTICES, alpha=2.0, seed=7,
                                avg_degree=5.0)


def make_spec(partition="hash_edge_cut", failures=(), num_standby=3,
              serve=SERVE, **overrides):
    kwargs = dict(algorithm="pagerank", num_nodes=5, partition=partition,
                  ft_level=2, max_iterations=8, num_standby=num_standby,
                  failures=failures, serve=serve)
    kwargs.update(overrides)
    return BackendSpec(**kwargs)


def run_checked(graph, spec):
    """Run on the simulator and differential-check every response."""
    result = SimulatorBackend().run(graph, spec)
    history = replay_committed_history(graph, spec)
    mismatches = check_responses(result.extra["serve_responses"], history)
    assert mismatches == [], mismatches[:3]
    return result


class TestWorkload:
    """Seeded open-loop generation: deterministic, Zipf-keyed."""

    def test_same_seed_same_workload(self):
        a = OpenLoopWorkload(1000, num_queries=500, seed=3)
        b = OpenLoopWorkload(1000, num_queries=500, seed=3)
        assert np.array_equal(a.arrival_s, b.arrival_s)
        assert [a.query(i) for i in range(500)] == \
            [b.query(i) for i in range(500)]

    def test_different_seed_different_workload(self):
        a = OpenLoopWorkload(1000, num_queries=500, seed=3)
        b = OpenLoopWorkload(1000, num_queries=500, seed=4)
        assert not np.array_equal(a.arrival_s, b.arrival_s)

    def test_arrivals_are_open_loop_poisson(self):
        w = OpenLoopWorkload(1000, num_queries=4000, qps=500.0, seed=9)
        assert np.all(np.diff(w.arrival_s) >= 0)
        # Mean inter-arrival ~ 1/qps (law of large numbers, not a
        # distribution test).
        assert 1 / 500.0 == pytest.approx(
            float(np.mean(np.diff(w.arrival_s))), rel=0.1)

    def test_zipf_keys_are_skewed_and_in_range(self):
        w = OpenLoopWorkload(1000, num_queries=5000, zipf_s=1.2, seed=9)
        queries = [w.query(i) for i in range(5000)]
        gids = [q.gid for q in queries if q.kind != TOPK]
        assert min(gids) >= 0 and max(gids) < 1000
        counts = sorted(np.bincount(gids, minlength=1000))[::-1]
        # The hottest key absorbs far more than the uniform share.
        assert counts[0] > 5 * (len(gids) / 1000)

    def test_kind_mix_matches_fractions(self):
        w = OpenLoopWorkload(1000, num_queries=4000, seed=9,
                             neighborhood_frac=0.2, topk_frac=0.1)
        kinds = np.array([w.query(i).kind for i in range(4000)])
        assert np.mean(kinds == NEIGHBORHOOD) == pytest.approx(0.2,
                                                               abs=0.05)
        assert np.mean(kinds == TOPK) == pytest.approx(0.1, abs=0.05)

    def test_config_filter_ignores_routing_keys(self):
        w = workload_from_config(100, {"num_queries": 7, "seed": 1,
                                       "policy": "least_loaded",
                                       "expected_supersteps": 8})
        assert len(w) == 7


class _MidSuperstepProbe:
    """Serve hook reading values *inside* a superstep via ``value_of``.

    Captures a full point-read sweep at the ``sync`` phase (progress
    .5, after compute wrote new values but before the commit barrier)
    and asserts the flush-free contract by watching ``flush_count``.
    """

    def __init__(self, at_iteration: int):
        self.at_iteration = at_iteration
        self.snapshot: dict[int, float] | None = None
        self.tag = None
        self.flushes_during_reads = None

    def on_phase(self, engine, phase):
        if phase != "sync" or engine.iteration != self.at_iteration:
            return
        before = engine._vec.flush_count
        self.snapshot = {gid: engine.value_of(gid)
                         for gid in range(engine.graph.num_vertices)}
        self.tag = engine.committed_iteration
        self.flushes_during_reads = engine._vec.flush_count - before


class TestSnapshotIsolation:
    """Reads never expose mid-superstep or uncommitted state."""

    @pytest.mark.parametrize("partition", PARTS)
    def test_healthy_run_every_response_is_committed(self, graph,
                                                     partition):
        result = run_checked(graph, make_spec(partition))
        serve = result.extra["serve"]
        assert serve["queries"] == 2000
        assert serve["misses"] == 0
        assert serve["degraded_reads"] == 0

    def test_mid_superstep_point_reads_see_last_commit(self, graph):
        """At the sync phase of superstep N the engine holds N's fresh
        values uncommitted; ``value_of`` must still return N-1's."""
        spec = make_spec(serve=())
        probe = _MidSuperstepProbe(at_iteration=3)
        engine = make_engine(graph, **spec.engine_kwargs())
        engine.attach_serve(probe)
        engine.run()
        history = replay_committed_history(graph, spec)
        assert probe.tag == 2
        assert probe.snapshot == history[2]
        assert probe.snapshot != history[3]

    def test_point_reads_do_not_flush_columns(self, graph):
        probe = _MidSuperstepProbe(at_iteration=3)
        engine = make_engine(graph, **make_spec(serve=()).engine_kwargs())
        engine.attach_serve(probe)
        engine.run()
        # A whole-graph sweep of point reads mid-superstep triggered
        # zero column writebacks (satellite: no full-flush per read).
        assert probe.flushes_during_reads == 0

    def test_responses_tagged_with_monotonic_supersteps(self, graph):
        result = run_checked(graph, make_spec())
        tags = [r.superstep for r in result.extra["serve_responses"]]
        assert tags[0] == -1
        assert tags[-1] == result.iterations - 1
        assert all(b >= a for a, b in zip(tags, tags[1:]))


class TestRouting:
    """Seeded replica selection is deterministic and load-aware."""

    @pytest.fixture()
    def engine(self, graph):
        return make_engine(graph, **make_spec(serve=()).engine_kwargs())

    def test_round_robin_is_deterministic_for_a_seed(self, engine):
        gids = list(range(0, NUM_VERTICES, 7)) * 3
        a = ReplicaRouter(engine, seed=5)
        b = ReplicaRouter(engine, seed=5)
        assert [a.route(g) for g in gids] == [b.route(g) for g in gids]

    def test_round_robin_spreads_over_all_copies(self, engine):
        router = ReplicaRouter(engine, seed=0)
        gid = next(s.gid for s in engine.local_graphs[0].iter_masters()
                   if not s.selfish)
        nodes = {router.route(gid)[0] for _ in range(12)}
        assert nodes == set(router.candidates(gid))
        assert len(nodes) == 3  # ft_level=2 -> K+1 copies

    def test_least_loaded_balances_within_one(self, engine):
        router = ReplicaRouter(engine, seed=0, policy="least_loaded")
        gid = next(s.gid for s in engine.local_graphs[0].iter_masters()
                   if not s.selfish)
        for _ in range(31):
            router.route(gid)
        loads = [router.load[n] for n in router.candidates(gid)]
        assert max(loads) - min(loads) <= 1

    def test_unknown_policy_rejected(self, engine):
        with pytest.raises(ValueError, match="policy"):
            ReplicaRouter(engine, policy="random")

    def test_selfish_vertices_pinned_to_master(self, engine):
        # Structural sinks (no out-edges) skip replica syncs under the
        # selfish optimisation, so only the master holds fresh state.
        assert engine.selfish_opt_active
        selfish = [s.gid for lg in engine.local_graphs.values()
                   for s in lg.iter_masters() if s.selfish]
        assert selfish, "power-law graph should have structural sinks"
        router = ReplicaRouter(engine, seed=0)
        for gid in selfish[:10]:
            assert router.candidates(gid) == \
                [engine.master_node_of[gid]]

    def test_fenced_gid_is_a_degraded_miss(self, engine):
        router = ReplicaRouter(engine, seed=0)
        engine.selfish_read_fence.add(42)
        try:
            assert router.route(42) == (MISS, True)
        finally:
            engine.selfish_read_fence.clear()

    def test_dead_node_falls_back_to_surviving_replica(self, engine):
        router = ReplicaRouter(engine, seed=0)
        gid = next(s.gid for s in engine.local_graphs[0].iter_masters()
                   if not s.selfish)
        master = engine.master_node_of[gid]
        for _ in range(6):
            node, degraded = router.route(gid, dead={master})
            assert node != master and node != MISS
            assert degraded is True


class TestDegradedReads:
    """Reads during recovery degrade explicitly — and stay committed."""

    @pytest.mark.parametrize("partition", PARTS)
    def test_chaos_run_serves_correct_and_tagged(self, graph, partition):
        result = run_checked(graph, make_spec(partition,
                                              failures=FAILURES))
        serve = result.extra["serve"]
        # Two kill events (a double, then a single) -> two recoveries.
        assert result.failures_recovered == 2
        assert serve["degraded_reads"] > 0
        # Degraded responses carry the flag; misses are always degraded
        # and carry the sentinel node.
        for resp in result.extra["serve_responses"]:
            if resp.kind == POINT and resp.value is None:
                assert resp.degraded and resp.replica_node == MISS

    def test_recovery_reads_fall_back_to_surviving_replicas(self, graph):
        """Degraded reads are *answers*, not just misses: vertices that
        lost their master are still served — off a surviving replica,
        tagged degraded — and the served value is still committed."""
        result = run_checked(graph, make_spec(failures=FAILURES))
        answered_degraded = [
            r for r in result.extra["serve_responses"]
            if r.kind == POINT and r.degraded and r.value is not None]
        assert answered_degraded, \
            "recovery window should serve fallback reads"

    def test_selfish_fence_arms_on_recovery_and_clears_on_commit(
            self, graph):
        """The audit's bug: a recovery-recomputed selfish master holds
        the value the *retry* will commit.  The fence must be armed at
        post-recovery and dropped by the next commit barrier."""
        spec = make_spec(serve=(), failures=FAILURES, num_standby=2)

        class FenceWatch:
            def __init__(self):
                self.armed_at = []
                self.seen_nonempty_commit = False

            def on_phase(self, engine, phase):
                if phase == "post_recovery" and engine.selfish_read_fence:
                    self.armed_at.append(
                        (engine.iteration,
                         set(engine.selfish_read_fence)))
                if phase == "post_commit" and engine.selfish_read_fence:
                    self.seen_nonempty_commit = True

        watch = FenceWatch()
        engine = make_engine(graph, **spec.engine_kwargs())
        for iteration, ranks, phase in spec.failures:
            engine.schedule_failure(iteration, list(ranks), phase)
        engine.attach_serve(watch)
        engine.run()
        # num_standby=2 dries the pool at the second kill -> migration
        # rung -> recompute_selfish_masters arms the fence.
        assert watch.armed_at, "migration recovery should arm the fence"
        for _, gids in watch.armed_at:
            for gid in gids:
                master = engine.master_node_of[gid]
                assert engine.local_graphs[master].slot_of(gid).selfish
        # post_commit fires after _commit_barrier cleared the fence.
        assert not watch.seen_nonempty_commit
        assert not engine.selfish_read_fence

    def test_fenced_reads_stay_bit_correct_under_migration(self, graph):
        """With the fence in place the migration-recovery run (the
        reproduction of the stale-read bug) serves zero mismatches."""
        result = run_checked(
            graph, make_spec(failures=FAILURES, num_standby=2))
        assert result.failures_recovered == 2


class TestReadConsistencyChecker:
    """The chaos invariant: any replica read == the master read."""

    @pytest.mark.parametrize("partition", PARTS)
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_holds_at_every_commit_under_chaos(self, graph, partition,
                                               vectorized):
        spec = make_spec(partition, failures=FAILURES, serve=(),
                         vectorized=vectorized)
        checker = ReadConsistencyChecker(context=partition)
        engine = make_engine(graph, **spec.engine_kwargs())
        for iteration, ranks, phase in spec.failures:
            engine.schedule_failure(iteration, list(ranks), phase)
        engine.attach_serve(checker)
        engine.run()
        assert checker.checks >= spec.max_iterations

    def test_detects_a_torn_replica(self, graph):
        engine = make_engine(graph, **make_spec(
            serve=(), vectorized=False).engine_kwargs())
        engine.run()
        # Corrupt one replica copy behind the router's back.
        slot = next(s for s in engine.local_graphs[0].iter_masters()
                    if not s.selfish and s.meta.replica_positions)
        rnode, pos = next(iter(slot.meta.replica_positions.items()))
        engine.local_graphs[rnode].slots[pos].value = -123.0
        with pytest.raises(InvariantViolation, match="replica-read"):
            ReadConsistencyChecker().on_phase(engine, "post_commit")


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multiprocessing backend requires the fork start method")
class TestCrossBackendServing:
    """The same spec serves committed reads on real processes too."""

    def test_healthy_routing_is_identical_across_backends(self, graph):
        from repro.exec.mp import MultiprocessingBackend
        spec = make_spec()
        sim = SimulatorBackend().run(graph, spec)
        with MultiprocessingBackend() as backend:
            mp = backend.run(graph, spec)
        # Same workload, same seeded router decisions -> identical
        # per-replica load split, query-for-query.
        assert mp.extra["serve"]["per_replica_load"] == \
            sim.extra["serve"]["per_replica_load"]
        assert mp.extra["serve"]["queries"] == 2000
        assert mp.extra["serve"]["misses"] == 0
        history = replay_committed_history(graph, spec)
        assert check_responses(mp.extra["serve_responses"],
                               history) == []

    def test_reads_survive_real_kills_bit_equal(self, graph):
        from repro.exec.mp import MultiprocessingBackend
        spec = make_spec(failures=FAILURES)
        with MultiprocessingBackend() as backend:
            mp = backend.run(graph, spec)
        # The multiprocessing backend counts reborn ranks, not events.
        assert mp.failures_recovered == 3
        serve = mp.extra["serve"]
        assert serve["queries"] == 2000
        assert serve["degraded_reads"] > 0
        history = replay_committed_history(graph, spec)
        mismatches = check_responses(mp.extra["serve_responses"],
                                     history)
        assert mismatches == [], mismatches[:3]
