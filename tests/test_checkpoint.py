"""Imitator-CKPT baseline tests: interval policy, incremental
snapshots, reload-everything recovery with replay."""

from __future__ import annotations

import pytest

from repro.api import run_job
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(250, alpha=2.0, seed=71, avg_degree=5.0,
                                selfish_frac=0.1)


@pytest.fixture(scope="module")
def baseline(graph):
    result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                     ft_mode="none")
    return {v: result.values[v] for v in range(graph.num_vertices)}


class TestCheckpointWriting:
    def test_interval_one_writes_every_barrier(self, graph):
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", num_nodes=5,
                             max_iterations=4, ft_mode="checkpoint",
                             checkpoint_interval=1)
        engine.run()
        assert engine.ckpt.stats.checkpoints_written == 4

    def test_interval_two_writes_half(self, graph):
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", num_nodes=5,
                             max_iterations=4, ft_mode="checkpoint",
                             checkpoint_interval=2)
        engine.run()
        assert engine.ckpt.stats.checkpoints_written == 2

    def test_checkpoint_time_charged_in_barrier(self, graph):
        ckpt = run_job(graph, "pagerank", num_nodes=5, max_iterations=4,
                       ft_mode="checkpoint", checkpoint_interval=1)
        base = run_job(graph, "pagerank", num_nodes=5, max_iterations=4,
                       ft_mode="none")
        assert all(s.checkpoint_s > 0 for s in ckpt.iteration_stats)
        assert ckpt.total_sim_time_s > base.total_sim_time_s

    def test_in_memory_dfs_cheaper(self, graph):
        slow = run_job(graph, "pagerank", num_nodes=5, max_iterations=4,
                       ft_mode="checkpoint")
        fast = run_job(graph, "pagerank", num_nodes=5, max_iterations=4,
                       ft_mode="checkpoint", checkpoint_in_memory=True)
        assert (sum(s.checkpoint_s for s in fast.iteration_stats)
                < sum(s.checkpoint_s for s in slow.iteration_stats))

    def test_incremental_snapshot_smaller_for_sparse_updates(self):
        """SSSP touches few vertices per iteration: later incremental
        snapshots shrink."""
        from repro.api import make_engine
        g = generators.chain(60, weighted=True, seed=1)
        engine = make_engine(g, "sssp", num_nodes=4, max_iterations=20,
                             ft_mode="checkpoint", checkpoint_interval=1,
                             algorithm_kwargs={"source": 0})
        engine.run()
        store = engine.cluster.store
        sizes = []
        for iteration in (0, 10):
            total = 0
            for node in range(4):
                path = f"ckpt/data/node{node}/iter{iteration:06d}"
                if store.exists(path):
                    total += store.stat(path).nbytes
            sizes.append(total)
        assert sizes[1] <= sizes[0]


class TestCheckpointRecovery:
    def test_equivalence_interval_one(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         ft_mode="checkpoint", checkpoint_interval=1,
                         failures=[(3, [2])])
        assert len(result.recoveries) == 1
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]

    @pytest.mark.parametrize("interval", [2, 4])
    def test_equivalence_with_replay(self, graph, baseline, interval):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         ft_mode="checkpoint", checkpoint_interval=interval,
                         failures=[(3, [2])])
        stats = result.recoveries[0]
        # Failure at iteration 3: snapshots exist up to iteration
        # interval*k-1 < 3, so some iterations are replayed.
        assert stats.replayed_iterations > 0
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]

    def test_replay_reexecutes_iterations(self, graph):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         ft_mode="checkpoint", checkpoint_interval=4,
                         failures=[(5, [2])])
        # More barrier records than iterations: replayed ones recorded
        # twice.
        assert len(result.iteration_stats) > 6

    def test_failure_before_any_checkpoint(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         ft_mode="checkpoint", checkpoint_interval=4,
                         failures=[(1, [2])])
        # Restart from initial values (resume_iteration == 0).
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]

    def test_vertex_cut_checkpoint_recovery(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         ft_mode="checkpoint", partition="hybrid_cut",
                         failures=[(3, [2])])
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(baseline[v],
                                                     rel=1e-12)

    def test_sssp_checkpoint_recovery(self):
        g = generators.chain(30, weighted=True, seed=4)
        clean = run_job(g, "sssp", num_nodes=4, max_iterations=60,
                        ft_mode="none", algorithm_kwargs={"source": 0})
        failed = run_job(g, "sssp", num_nodes=4, max_iterations=60,
                         ft_mode="checkpoint", checkpoint_interval=3,
                         algorithm_kwargs={"source": 0},
                         failures=[(9, [1])])
        for v in range(30):
            assert failed.values[v] == clean.values[v]

    def test_recovery_stats(self, graph):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         ft_mode="checkpoint", failures=[(3, [2])])
        stats = result.recoveries[0]
        assert stats.strategy == "checkpoint"
        assert stats.reload_s > 0
        assert stats.reconstruct_s > 0
        assert stats.recovery_bytes > 0
        assert stats.vertices_recovered == graph.num_vertices
