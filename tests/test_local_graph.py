"""LocalGraph tests: positional array semantics, active-set index."""

from __future__ import annotations

import pytest

from repro.engine.local_graph import LocalGraph
from repro.engine.state import Role, VertexSlot
from repro.errors import EngineError


def slot(gid, role=Role.MASTER, active=False):
    return VertexSlot(gid=gid, role=role, active=active)


class TestSlotArray:
    def test_append_and_lookup(self):
        lg = LocalGraph(0)
        pos = lg.add_slot(slot(5))
        assert pos == 0
        assert 5 in lg
        assert lg.slot_of(5).gid == 5
        assert lg.position_of(5) == 0

    def test_positional_insert_pads(self):
        lg = LocalGraph(0)
        lg.add_slot(slot(9), position=3)
        assert lg.slots[0] is None
        assert lg.slot_at(3).gid == 9
        assert lg.slot_at(99) is None

    def test_duplicate_gid_rejected(self):
        lg = LocalGraph(0)
        lg.add_slot(slot(1))
        with pytest.raises(EngineError):
            lg.add_slot(slot(1))

    def test_occupied_position_rejected(self):
        lg = LocalGraph(0)
        lg.add_slot(slot(1), position=2)
        with pytest.raises(EngineError):
            lg.add_slot(slot(2), position=2)

    def test_remove_leaves_tombstone(self):
        lg = LocalGraph(0)
        lg.add_slot(slot(1))
        lg.add_slot(slot(2))
        removed = lg.remove_slot(1)
        assert removed.gid == 1
        assert lg.slots[0] is None
        assert 1 not in lg
        assert lg.slot_of(2).gid == 2  # position unaffected

    def test_remove_missing_raises(self):
        lg = LocalGraph(0)
        with pytest.raises(EngineError):
            lg.remove_slot(7)

    def test_missing_lookup_raises(self):
        lg = LocalGraph(0)
        with pytest.raises(EngineError):
            lg.slot_of(3)


class TestActiveIndex:
    def test_set_active_routes_by_role(self):
        lg = LocalGraph(0)
        master = slot(1, Role.MASTER)
        replica = slot(2, Role.REPLICA)
        lg.add_slot(master)
        lg.add_slot(replica)
        lg.set_active(master, True)
        lg.set_active(replica, True)
        assert lg.active_masters == {1}
        assert lg.active_others == {2}
        lg.set_active(master, False)
        assert lg.active_masters == set()

    def test_active_at_insert(self):
        lg = LocalGraph(0)
        lg.add_slot(slot(3, Role.MIRROR, active=True))
        assert lg.active_others == {3}

    def test_role_change_moves_sets(self):
        lg = LocalGraph(0)
        s = slot(4, Role.MIRROR, active=True)
        lg.add_slot(s)
        s.role = Role.MASTER  # promotion
        lg.set_active(s, True)
        assert lg.active_masters == {4}
        assert lg.active_others == set()

    def test_remove_clears_active(self):
        lg = LocalGraph(0)
        lg.add_slot(slot(5, Role.MASTER, active=True))
        lg.remove_slot(5)
        assert lg.active_masters == set()


class TestIterationAndCounts:
    def make(self):
        lg = LocalGraph(1)
        lg.add_slot(slot(0, Role.MASTER))
        lg.add_slot(slot(1, Role.MIRROR))
        ft = slot(2, Role.MIRROR)
        ft.ft_only = True
        lg.add_slot(ft)
        lg.add_slot(slot(3, Role.REPLICA))
        return lg

    def test_counts(self):
        counts = self.make().counts()
        assert counts == {"masters": 1, "mirrors": 2, "replicas": 1,
                          "ft_replicas": 1, "local_in_edges": 0,
                          "total": 4}

    def test_iterators(self):
        lg = self.make()
        assert [s.gid for s in lg.iter_masters()] == [0]
        assert sorted(s.gid for s in lg.iter_mirrors()) == [1, 2]
        assert len(list(lg.iter_slots())) == 4

    def test_view(self):
        lg = LocalGraph(0)
        s = slot(7)
        s.value = 2.5
        s.out_degree = 3
        lg.add_slot(s)
        view = lg.view(0)
        assert view.vid == 7
        assert view.value == 2.5
        assert view.out_degree == 3

    def test_memory_counts_edges_and_meta(self):
        from repro.algorithms import PageRank
        lg = self.make()
        base = lg.memory_nbytes(PageRank())
        master = lg.slot_of(0)
        master.in_edges.append((1, 1.0))
        assert lg.memory_nbytes(PageRank()) > base
