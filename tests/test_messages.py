"""Message payload tests: wire-size accounting."""

from __future__ import annotations

import pytest

from repro.engine.messages import (
    ActivatePayload,
    ActiveBroadcastPayload,
    GatherPayload,
    MirrorSyncPayload,
    RecoveredVertex,
    RecoveryBatch,
    SyncPayload,
)
from repro.utils.sizing import BYTES_PER_EDGE, BYTES_PER_VID


class TestSyncSizes:
    def test_plain_sync(self):
        payload = SyncPayload(gid=1, value=1.0, activates=True)
        assert payload.nbytes(8) == BYTES_PER_VID + 8 + 1

    def test_mirror_sync_carries_extras(self):
        plain = SyncPayload(1, 1.0, True).nbytes(8)
        mirror = MirrorSyncPayload(1, 1.0, True, True).nbytes(8)
        assert mirror == plain + 1

    def test_gather(self):
        assert GatherPayload(1, 2.0).nbytes(24) == BYTES_PER_VID + 24

    def test_activate_is_tiny(self):
        assert ActivatePayload(1).nbytes() == BYTES_PER_VID
        assert ActiveBroadcastPayload(1, True).nbytes() == BYTES_PER_VID + 1


class TestRecoveredVertex:
    def base(self, **kw):
        defaults = dict(gid=1, role="replica", position=0, value=1.0,
                        active=True, last_activates=False, out_degree=2,
                        in_degree=3, master_node=0)
        defaults.update(kw)
        return RecoveredVertex(**defaults)

    def test_replica_size(self):
        assert self.base().nbytes(8) == BYTES_PER_VID + 8 + 8 + 4

    def test_edges_add_size(self):
        rv = self.base(full_edges=[(0, 0, 1.0)] * 5)
        assert rv.nbytes(8) == self.base().nbytes(8) + 5 * BYTES_PER_EDGE

    def test_meta_adds_size(self):
        rv = self.base(replica_positions={1: 0, 2: 3}, mirror_nodes=[1])
        assert rv.nbytes(8) == (self.base().nbytes(8)
                                + 2 * (BYTES_PER_VID + 4) + 4)


class TestRecoveryBatch:
    def test_batch_sums_vertices(self):
        batch = RecoveryBatch(src_node=0, iteration=4)
        batch.vertices.append(RecoveredVertex(
            gid=1, role="replica", position=0, value=1.0, active=True,
            last_activates=False, out_degree=0, in_degree=0,
            master_node=0))
        one = batch.nbytes(lambda v: 8)
        batch.vertices.append(RecoveredVertex(
            gid=2, role="replica", position=1, value=1.0, active=True,
            last_activates=False, out_degree=0, in_degree=0,
            master_node=0))
        assert batch.nbytes(lambda v: 8) > one

    def test_negative_message_size_rejected(self):
        from repro.cluster.network import Message, MessageKind
        with pytest.raises(ValueError):
            Message(MessageKind.SYNC, 0, 1, None, -2)
