"""Selfish-vertex optimisation tests (Section 4.4, invariant P5)."""

from __future__ import annotations

import pytest

from repro.api import make_engine, run_job
from repro.chaos import FailureSchedule, run_differential
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    # A large selfish population makes the message savings visible.
    return generators.power_law(300, alpha=2.0, seed=91, avg_degree=5.0,
                                selfish_frac=0.25)


class TestMessageSavings:
    def test_fewer_messages_with_optimization(self, graph):
        on = run_job(graph, "pagerank", num_nodes=6, max_iterations=4,
                     selfish_optimization=True)
        off = run_job(graph, "pagerank", num_nodes=6, max_iterations=4,
                      selfish_optimization=False)
        assert on.total_messages < off.total_messages

    def test_values_identical(self, graph):
        """P5: the optimisation never changes results."""
        on = run_job(graph, "pagerank", num_nodes=6, max_iterations=4,
                     selfish_optimization=True)
        off = run_job(graph, "pagerank", num_nodes=6, max_iterations=4,
                      selfish_optimization=False)
        for v in range(graph.num_vertices):
            assert on.values[v] == off.values[v]

    def test_not_applied_to_history_dependent_programs(self):
        """SSSP is not history-free: selfish vertices sync normally and
        the message counts match."""
        g = generators.power_law(200, alpha=2.0, seed=5, avg_degree=4.0,
                                 selfish_frac=0.2)
        on = run_job(g, "sssp", num_nodes=4, max_iterations=30,
                     selfish_optimization=True,
                     algorithm_kwargs={"source": 0})
        off = run_job(g, "sssp", num_nodes=4, max_iterations=30,
                      selfish_optimization=False,
                      algorithm_kwargs={"source": 0})
        assert on.total_messages == off.total_messages


class TestRecoveryWithSelfishOptimization:
    @pytest.mark.parametrize("recovery", ["rebirth", "migration"])
    def test_selfish_values_recomputed(self, graph, recovery):
        """A recovered selfish master's value is recomputed from
        neighbors, ending exactly equal to the failure-free run."""
        base = run_job(graph, "pagerank", num_nodes=6, max_iterations=6)
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=6,
                         recovery=recovery, failures=[(3, [1])])
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(base.values[v],
                                                     rel=1e-12)

    def test_vertex_cut_selfish_recovery(self, graph):
        base = run_job(graph, "pagerank", num_nodes=6, max_iterations=6,
                       partition="hybrid_cut")
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=6,
                         partition="hybrid_cut", recovery="migration",
                         failures=[(3, [1])])
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(base.values[v],
                                                     rel=1e-9)

    def test_selfish_flagged_in_slots(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=6)
        selfish = set((graph.out_degrees() == 0).nonzero()[0].tolist())
        for lg in engine.local_graphs.values():
            for slot in lg.iter_slots():
                assert slot.selfish == (slot.gid in selfish)

    def test_selfish_mirrors_are_ft_only(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=6)
        for lg in engine.local_graphs.values():
            for slot in lg.iter_mirrors():
                if slot.selfish:
                    assert slot.ft_only


class TestSelfishUnderChaos:
    """Chaos-schedule-driven crashes over a selfish-heavy graph.

    The selfish optimisation skips syncing selfish masters' values to
    their FT-only mirrors; recovery must recompute them from neighbor
    state instead.  The differential oracle checks the recomputed
    values land exactly on the failure-free run (P5 composed with P4).
    """

    def _kwargs(self, recovery, total_crashes, **over):
        kw = dict(num_nodes=6, ft_mode="replication", recovery=recovery,
                  max_iterations=6, ft_level=1,
                  num_standby=0 if recovery == "migration"
                  else total_crashes,
                  selfish_optimization=True)
        kw.update(over)
        return kw

    @pytest.mark.parametrize("recovery", ["rebirth", "migration"])
    @pytest.mark.parametrize("phase", ["gather", "sync", "after_commit"])
    def test_phase_crashes(self, graph, recovery, phase):
        schedule = (FailureSchedule(seed=13)
                    .crash(2, phase=phase, target="most-loaded"))
        report = run_differential(
            graph, "pagerank", schedule,
            **self._kwargs(recovery, schedule.total_crashes))
        assert report.recoveries == 1
        assert report.matches, report.summary()

    @pytest.mark.parametrize("recovery", ["rebirth", "migration"])
    def test_repeated_crashes(self, graph, recovery):
        schedule = (FailureSchedule(seed=31)
                    .crash(1, phase="sync", target="mirror-heaviest")
                    .crash(3, phase="barrier", target="most-loaded"))
        report = run_differential(
            graph, "pagerank", schedule,
            **self._kwargs(recovery, schedule.total_crashes))
        assert report.recoveries == 2
        assert report.matches, report.summary()

    def test_vertex_cut_chaos(self, graph):
        schedule = (FailureSchedule(seed=47)
                    .crash(2, phase="superstep_start", target="random"))
        report = run_differential(
            graph, "pagerank", schedule,
            **self._kwargs("migration", schedule.total_crashes,
                           partition="hybrid_cut"))
        assert report.recoveries == 1
        assert report.matches, report.summary()
