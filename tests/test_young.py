"""Young's-model tests (Section 6.11)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.ft.young import DEFAULT_MTBF_S, efficiency, optimal_interval


class TestOptimalInterval:
    def test_formula(self):
        assert optimal_interval(2.0, 100.0) == pytest.approx(
            math.sqrt(400.0))

    def test_paper_ckpt_magnitude(self):
        """Paper: CKPT payment 75.63 s on a 7.3-day-MTBF cluster gives
        an optimal interval of 9,768 s."""
        interval = optimal_interval(75.63, DEFAULT_MTBF_S)
        assert interval == pytest.approx(9768, rel=0.01)

    def test_paper_rep_magnitude(self):
        """Paper: REP payment 0.31 s gives 623 s."""
        interval = optimal_interval(0.31, DEFAULT_MTBF_S)
        assert interval == pytest.approx(623, rel=0.02)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            optimal_interval(0.0)
        with pytest.raises(ConfigError):
            optimal_interval(1.0, mtbf_s=0.0)


class TestEfficiency:
    def test_paper_efficiencies(self):
        """Paper Section 6.11: CKPT ~98.44%, REP ~99.90%."""
        ckpt = efficiency("ckpt", 75.63, 183.7)
        rep = efficiency("rep", 0.31, 33.4)
        assert ckpt.efficiency == pytest.approx(0.9844, abs=0.005)
        assert rep.efficiency == pytest.approx(0.9990, abs=0.001)
        assert rep.efficiency > ckpt.efficiency

    def test_cheaper_payment_higher_efficiency(self):
        cheap = efficiency("a", 0.1, 10.0)
        costly = efficiency("b", 100.0, 10.0)
        assert cheap.efficiency > costly.efficiency

    def test_efficiency_below_one(self):
        report = efficiency("x", 1.0, 1.0)
        assert 0.0 < report.efficiency < 1.0
