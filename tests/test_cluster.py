"""Cluster substrate tests: nodes, failure injection, standby takeover."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node, NodeState
from repro.config import ClusterConfig
from repro.errors import (
    NoStandbyNodeError,
    NodeCrashedError,
    UnknownNodeError,
)


def small_cluster(n=4, standby=1):
    return Cluster(ClusterConfig(num_nodes=n, num_standby=standby))


class TestNode:
    def test_initial_state(self):
        node = Node(3)
        assert node.is_alive and not node.is_crashed

    def test_crash_drops_local_state(self):
        node = Node(0)
        node.local = {"x": 1}
        node.crash()
        assert node.is_crashed
        assert node.local is None

    def test_crash_idempotent(self):
        node = Node(0)
        node.crash()
        node.crash()
        assert node.is_crashed

    def test_check_alive_raises_after_crash(self):
        node = Node(0)
        node.crash()
        with pytest.raises(NodeCrashedError):
            node.check_alive("test")

    def test_standby_activation(self):
        node = Node(9, state=NodeState.STANDBY)
        node.activate()
        assert node.is_alive
        assert node.incarnation == 1

    def test_alive_node_cannot_activate(self):
        node = Node(0)
        with pytest.raises(NodeCrashedError):
            node.activate()


class TestCluster:
    def test_layout(self):
        cluster = small_cluster(4, 2)
        assert cluster.alive_workers() == [0, 1, 2, 3]
        assert cluster.standby_nodes() == [4, 5]
        assert cluster.num_workers == 4

    def test_crash_removes_from_workers(self):
        cluster = small_cluster()
        cluster.crash(2)
        assert 2 not in cluster.alive_workers()
        assert cluster.detector.newly_failed() == {2}

    def test_crash_purges_messages(self):
        from repro.cluster.network import Message, MessageKind
        cluster = small_cluster()
        cluster.network.send(Message(MessageKind.SYNC, 2, 1, "x", 8))
        cluster.network.send(Message(MessageKind.SYNC, 0, 2, "y", 8))
        cluster.crash(2)
        # message from 2 purged; message to 2 purged
        assert cluster.network.deliver(1) == []

    def test_replace_node_keeps_logical_id(self):
        cluster = small_cluster(4, 1)
        cluster.crash(1)
        fresh = cluster.replace_node(1)
        assert fresh.node_id == 1
        assert fresh.incarnation == 1
        assert cluster.alive_workers() == [0, 1, 2, 3]
        assert cluster.standby_nodes() == []

    def test_replace_needs_crash(self):
        cluster = small_cluster()
        with pytest.raises(NoStandbyNodeError):
            cluster.replace_node(1)

    def test_replace_without_standby_fails(self):
        cluster = small_cluster(4, 0)
        cluster.crash(1)
        with pytest.raises(NoStandbyNodeError):
            cluster.replace_node(1)

    def test_unknown_node(self):
        cluster = small_cluster()
        with pytest.raises(UnknownNodeError):
            cluster.node(99)

    def test_add_standby_grows_cluster(self):
        cluster = small_cluster(4, 0)
        nid = cluster.add_standby()
        assert nid == 4
        assert cluster.standby_nodes() == [4]


class TestFailureDetector:
    def test_detection_delay_matches_config(self):
        cluster = Cluster(ClusterConfig(num_nodes=3,
                                        heartbeat_interval_s=0.5,
                                        heartbeat_misses=14))
        assert cluster.detector.detection_delay_s == pytest.approx(7.0)

    def test_edge_triggered(self):
        cluster = small_cluster()
        cluster.crash(0)
        assert cluster.detector.newly_failed() == {0}
        assert cluster.detector.newly_failed() == set()

    def test_forget_rearms(self):
        cluster = small_cluster()
        cluster.crash(0)
        cluster.detector.newly_failed()
        cluster.detector.forget(0)
        assert cluster.detector.newly_failed() == {0}
