"""Persistent-store (HDFS stand-in) tests."""

from __future__ import annotations

import pytest

from repro.cluster.storage import PersistentStore
from repro.errors import StorageError


class TestBasicOps:
    def test_write_read_roundtrip(self):
        store = PersistentStore()
        store.write("a/b", {"k": 1}, 100)
        assert store.read("a/b") == {"k": 1}
        assert store.bytes_written == 100
        assert store.bytes_read == 100

    def test_overwrite_bumps_version(self):
        store = PersistentStore()
        store.write("x", 1, 10)
        obj = store.write("x", 2, 20)
        assert obj.version == 2
        assert store.read("x") == 2

    def test_missing_read_raises(self):
        store = PersistentStore()
        with pytest.raises(StorageError):
            store.read("nope")

    def test_delete(self):
        store = PersistentStore()
        store.write("x", 1, 10)
        store.delete("x")
        assert not store.exists("x")
        with pytest.raises(StorageError):
            store.delete("x")

    def test_negative_size_rejected(self):
        store = PersistentStore()
        with pytest.raises(StorageError):
            store.write("x", 1, -5)


class TestAppend:
    def test_append_creates_log(self):
        store = PersistentStore()
        store.append("log", "r1", 10)
        store.append("log", "r2", 10)
        assert store.read("log") == ["r1", "r2"]
        assert store.stat("log").nbytes == 20

    def test_append_to_non_list_raises(self):
        store = PersistentStore()
        store.write("x", {"not": "list"}, 5)
        with pytest.raises(StorageError):
            store.append("x", "r", 5)


class TestListing:
    def test_listdir_prefix(self):
        store = PersistentStore()
        store.write("dir/a", 1, 1)
        store.write("dir/b", 2, 1)
        store.write("other/c", 3, 1)
        assert list(store.listdir("dir")) == ["dir/a", "dir/b"]

    def test_replicated_footprint(self):
        store = PersistentStore(replication_factor=3)
        store.write("x", 1, 100)
        assert store.total_bytes_stored == 100
        assert store.replicated_bytes_stored == 300

    def test_rejects_zero_replication(self):
        with pytest.raises(StorageError):
            PersistentStore(replication_factor=0)

    def test_reset_counters(self):
        store = PersistentStore()
        store.write("x", 1, 10)
        store.read("x")
        store.reset_counters()
        assert store.bytes_written == 0
        assert store.read_ops == 0
