"""Transport contract suite (DESIGN.md §12).

Every :class:`repro.exec.base.Transport` implementation must satisfy
the same contract — FIFO per sender, lossless with visible
backpressure, typed frames surviving the trip — so the superstep
protocol can run unchanged over any of them.  The suite is
parametrized over the in-process endpoint pair (the simulator's
extracted queue structure) and the real pipe pair (the
multiprocessing backend's wire).
"""

from __future__ import annotations

import pytest

from repro.engine.messages import (ActivateBatch, ActiveBroadcastBatch,
                                   GatherBatch, SyncBatch)
from repro.exec.base import TransportClosed
from repro.exec.serialize import (decode_batch, encode_batch,
                                  encoded_nbytes, encoded_records)
from repro.exec.transport import LocalRouter, pipe_pair


@pytest.fixture(params=["local", "pipe"])
def endpoints(request):
    """A connected transport pair ``(a, b)`` with ranks 0 and 1."""
    if request.param == "local":
        router = LocalRouter()
        a, b = router.endpoint(0), router.endpoint(1)
    else:
        a, b = pipe_pair(0, 1)
    yield a, b
    a.close()
    b.close()


class TestOrdering:
    def test_fifo_per_sender(self, endpoints):
        a, b = endpoints
        for i in range(50):
            a.send(1, ("frame", i))
        got = [b.recv(timeout=5.0) for _ in range(50)]
        assert got == [(0, ("frame", i)) for i in range(50)]

    def test_duplex_no_crosstalk(self, endpoints):
        a, b = endpoints
        a.send(1, "to-b")
        b.send(0, "to-a")
        assert b.recv(timeout=5.0) == (0, "to-b")
        assert a.recv(timeout=5.0) == (1, "to-a")


class TestBackpressure:
    def test_pending_counts_buffered_frames(self, endpoints):
        a, b = endpoints
        assert b.pending() == 0
        for i in range(20):
            a.send(1, i)
        assert b.pending() == 20
        assert b.poll()
        # Lossless: the full backlog drains in order.
        assert [b.recv(timeout=5.0)[1] for i in range(20)] == list(range(20))
        assert b.pending() == 0
        assert not b.poll()

    def test_recv_empty_times_out(self, endpoints):
        _a, b = endpoints
        with pytest.raises(TimeoutError):
            b.recv(timeout=0.01)


class TestClose:
    def test_send_after_close_raises(self, endpoints):
        a, b = endpoints
        a.close()
        with pytest.raises(TransportClosed):
            a.send(1, "late")


def _batch_specimens():
    plain = SyncBatch()
    plain.append(7, 0.25, 8, True)
    plain.append(9, -1.5, 8, False)
    full = SyncBatch(full_state=True)
    full.append(3, 2.0, 8, True, True, ((0, 0.5), (2, 1.25)))
    full.append(5, 0.0, 8, False, False, ())
    gather = GatherBatch()
    gather.append(11, 0.125, 8)
    gather.append(13, 4.75, 8)
    activate = ActivateBatch([2, 4, 6])
    broadcast = ActiveBroadcastBatch()
    broadcast.append(1, True)
    broadcast.append(8, False)
    return [plain, full, gather, activate, broadcast]


@pytest.mark.parametrize("batch", _batch_specimens(),
                         ids=["sync", "mirror_sync", "gather",
                              "activate", "broadcast"])
def test_batch_round_trip(endpoints, batch):
    """All four columnar batch types survive the wire unchanged, with
    the codec's accounting fields matching the originals."""
    a, b = endpoints
    enc = encode_batch(batch)
    assert encoded_records(enc) == batch.record_count
    assert encoded_nbytes(enc) == batch.nbytes()
    a.send(1, enc)
    src, received = b.recv(timeout=5.0)
    assert src == 0
    decoded = decode_batch(received)
    assert type(decoded) is type(batch)
    assert decoded.record_count == batch.record_count
    assert decoded.nbytes() == batch.nbytes()
    assert list(decoded.gids) == list(batch.gids)
    if isinstance(batch, SyncBatch):
        assert list(decoded.values) == list(batch.values)
        assert list(decoded.flags) == list(batch.flags)
        assert list(decoded.sizes) == list(batch.sizes)
        assert decoded.full_state == batch.full_state
        if batch.full_state:
            assert list(decoded.edge_updates) == list(batch.edge_updates)
    elif isinstance(batch, GatherBatch):
        assert list(decoded.accs) == list(batch.accs)
        assert list(decoded.sizes) == list(batch.sizes)
    elif isinstance(batch, ActiveBroadcastBatch):
        assert list(decoded.actives) == list(batch.actives)
