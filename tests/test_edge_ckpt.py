"""Edge-ckpt file tests (Section 4.3, vertex-cut edge recovery)."""

from __future__ import annotations

import pytest

from repro.api import make_engine
from repro.cluster.storage import PersistentStore
from repro.ft.edge_ckpt import EdgeCkptStore, EdgeRecord
from repro.graph import generators
from repro.utils.sizing import BYTES_PER_EDGE


class TestStoreBasics:
    def test_write_and_read_all(self):
        store = EdgeCkptStore(PersistentStore(), num_nodes=3)
        records = {1: [EdgeRecord(0, 1, 1.0)],
                   2: [EdgeRecord(2, 3, 2.0), EdgeRecord(4, 3, 1.0)]}
        nbytes = store.write_node_edges(0, records)
        assert nbytes == 3 * BYTES_PER_EDGE
        assert len(store.read_all(0)) == 3
        assert store.read_file(0, 2) == records[2]
        assert store.read_file(0, 1) == records[1]

    def test_missing_file_reads_empty(self):
        store = EdgeCkptStore(PersistentStore(), num_nodes=3)
        assert store.read_file(5, 1) == []
        assert store.read_all(5) == []

    def test_incremental_log(self):
        store = EdgeCkptStore(PersistentStore(), num_nodes=3)
        store.write_node_edges(0, {1: [EdgeRecord(0, 1, 1.0)]})
        store.log_edge_update(0, 1, EdgeRecord(0, 1, 9.0))
        records = store.read_file(0, 1)
        assert len(records) == 2
        assert records[-1].weight == 9.0

    def test_file_nbytes(self):
        store = EdgeCkptStore(PersistentStore(), num_nodes=3)
        store.write_node_edges(0, {1: [EdgeRecord(0, 1, 1.0)] * 4})
        assert store.file_nbytes(0, 1) == 4 * BYTES_PER_EDGE
        assert store.file_nbytes(0, 2) == 0


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def engine(self):
        graph = generators.power_law(200, alpha=2.0, seed=13,
                                     avg_degree=5.0)
        return make_engine(graph, "pagerank", num_nodes=5,
                           partition="hybrid_cut")

    def test_files_written_at_loading(self, engine):
        assert engine.edge_ckpt is not None
        total = sum(len(engine.edge_ckpt.read_all(n)) for n in range(5))
        assert total == engine.graph.num_edges

    def test_files_cover_each_node_edges(self, engine):
        for node in range(5):
            lg = engine.local_graphs[node]
            local_edges = sum(len(s.in_edges) for s in lg.iter_slots())
            assert len(engine.edge_ckpt.read_all(node)) == local_edges

    def test_receiver_hosts_target_copy(self, engine):
        """Every edge's receiver node hosts the master or a mirror of
        the edge's target (the Migration placement rule)."""
        for owner in range(5):
            for receiver in range(5):
                for record in engine.edge_ckpt.read_file(owner, receiver):
                    master_node = engine.master_node_of[record.dst]
                    meta = engine.local_graphs[master_node] \
                        .slot_of(record.dst).meta
                    hosts = {master_node, *meta.mirror_nodes}
                    assert receiver in hosts

    def test_receiver_is_not_owner(self, engine):
        for owner in range(5):
            for record in engine.edge_ckpt.read_file(owner, owner):
                # Only permitted when no off-owner copy existed.
                master_node = engine.master_node_of[record.dst]
                assert master_node == owner

    def test_edge_cut_engine_skips_edge_ckpt(self):
        graph = generators.power_law(100, alpha=2.0, seed=14)
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             partition="hash_edge_cut")
        assert engine.edge_ckpt is None
