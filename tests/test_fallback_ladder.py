"""Recovery fallback ladder, post-recovery repair and degraded mode.

DESIGN.md §9: when the configured recovery strategy cannot handle a
failure, the engine walks a ladder — Rebirth → Migration → safety-net
checkpoint — and only raises :class:`UnrecoverableFailureError` (with
structured context) when every rung fails.  After any successful
recovery the replication level is repaired back toward ``ft_level``;
when the surviving cluster is too small for that, the run completes in
explicitly reported degraded mode.
"""

from __future__ import annotations

import pytest

from repro.api import make_engine, run_job
from repro.chaos.controller import ChaosController
from repro.chaos.oracle import run_differential
from repro.chaos.schedule import FailureSchedule
from repro.config import FaultToleranceConfig, FTMode
from repro.errors import (ConfigError, NoStandbyNodeError,
                          UnrecoverableFailureError)
from repro.graph import generators

PARTS = ["hash_edge_cut", "random_vertex_cut"]


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(200, alpha=2.0, seed=17, avg_degree=5.0,
                                selfish_frac=0.1)


@pytest.fixture(scope="module")
def baselines(graph):
    return {part: run_job(graph, "pagerank", num_nodes=6,
                          max_iterations=8, partition=part).values
            for part in PARTS}


def assert_matches(result, baseline):
    for gid, base_v in baseline.items():
        assert result.values[gid] == pytest.approx(base_v, rel=1e-12), \
            f"vertex {gid} diverged after recovery"


class TestFallbackRungs:
    """Each rung engages exactly when the one above it cannot."""

    @pytest.mark.parametrize("partition", PARTS)
    def test_standby_exhausted_falls_back_to_migration(
            self, graph, baselines, partition):
        # Two spares cover the first double failure; the second finds
        # the pool dry and must ride the Migration rung instead of
        # dying with NoStandbyNodeError.
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=8,
                         partition=partition, ft_level=2, num_standby=2,
                         recovery="rebirth",
                         failures=[(2, (0, 1)), (5, (2, 3))])
        assert [r.strategy for r in result.recoveries] == \
            ["rebirth", "migration"]
        assert result.fallbacks == {"migration": 1}
        assert_matches(result, baselines[partition])

    def test_zero_standby_first_failure_uses_migration(
            self, graph, baselines):
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=8,
                         ft_level=1, num_standby=0, recovery="rebirth",
                         failures=[(3, (2,))])
        assert result.recoveries[0].strategy == "migration"
        assert result.fallbacks == {"migration": 1}
        assert_matches(result, baselines["hash_edge_cut"])

    @pytest.mark.parametrize("partition", PARTS)
    def test_replication_exhausted_uses_safety_checkpoint(
            self, graph, baselines, partition):
        # Three simultaneous failures at ft_level=1: some vertex loses
        # every in-memory copy, so only the safety-net checkpoint rung
        # can recover — and the run still converges to the baseline.
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=8,
                         partition=partition, ft_level=1, num_standby=3,
                         recovery="rebirth", safety_checkpoint_interval=1,
                         failures=[(3, (0, 1, 2))])
        assert result.recoveries[0].strategy == "safety-checkpoint"
        assert result.fallbacks == {"checkpoint": 1}
        assert_matches(result, baselines[partition])

    def test_safety_checkpoint_recovers_without_spares(self, graph,
                                                       baselines):
        # The checkpoint rung reloads everything from persistent
        # storage, so rebooted machines can take the crashed slots even
        # with a dry standby pool.
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=8,
                         ft_level=1, num_standby=0, recovery="rebirth",
                         safety_checkpoint_interval=2,
                         failures=[(3, (0, 1))])
        assert result.recoveries[0].strategy == "safety-checkpoint"
        assert_matches(result, baselines["hash_edge_cut"])

    def test_every_rung_failing_raises_structured_error(self, graph):
        # >K failures without the safety net: the error reports what
        # was attempted, what was lost and who survived.
        with pytest.raises(UnrecoverableFailureError) as err:
            run_job(graph, "pagerank", num_nodes=6, max_iterations=8,
                    ft_level=1, num_standby=3, recovery="rebirth",
                    failures=[(3, (0, 1, 2))])
        assert err.value.lost_vertices > 0
        assert "replication:exhausted" in err.value.rungs_attempted
        assert err.value.surviving_nodes == (3, 4, 5)


class TestPostRecoveryRepair:
    """Recovery restores the data; repair restores the *safety margin*."""

    @pytest.mark.parametrize("partition", PARTS)
    @pytest.mark.parametrize("strategy", ["rebirth", "migration"])
    def test_survives_second_k_failure_after_repair(
            self, graph, baselines, partition, strategy):
        # Acceptance scenario: crash k nodes, then k *different* nodes
        # a few iterations later.  Migration consumes mirrors when it
        # promotes them, so without the repair pass the second failure
        # would find vertices below K+1 copies.
        k = 2
        report = run_differential(
            graph, "pagerank",
            FailureSchedule(seed=1)
            .crash(2, phase="gather", target=0)
            .crash(2, phase="gather", target=1)
            .crash(5, phase="gather", target=2)
            .crash(5, phase="gather", target=3),
            baseline=baselines[partition],
            num_nodes=6, max_iterations=8, partition=partition,
            ft_level=k, num_standby=2 * k, recovery=strategy)
        assert report.matches, report.summary()
        assert report.recoveries == 2
        if strategy == "migration":
            assert report.chaos_result.recoveries[0] \
                .repair_replicas_created > 0

    def test_repair_is_traced_and_charged(self, graph):
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=8,
                         ft_level=2, num_standby=0, recovery="migration",
                         failures=[(3, (0, 1))])
        stats = result.recoveries[0]
        assert stats.repair_replicas_created > 0
        assert stats.repair_s > 0.0
        assert stats.repaired_vertices > 0
        # Repair time is charged separately so total_s keeps the
        # paper's reload+reconstruct+replay meaning.
        assert stats.total_s == pytest.approx(
            stats.reload_s + stats.reconstruct_s + stats.replay_s)

    def test_repair_span_in_trace(self, graph, tmp_path):
        from repro.obs import Tracer
        tracer = Tracer()
        engine = make_engine(graph, "pagerank", num_nodes=6,
                             max_iterations=8, ft_level=2, num_standby=0,
                             recovery="migration", tracer=tracer)
        engine.schedule_failure(3, (0, 1))
        engine.run()
        names = [ev["name"] for ev in tracer.events]
        assert "recovery.repair" in names


class TestDegradedMode:
    def test_small_cluster_completes_degraded(self, graph):
        # 4 nodes at ft_level=2: after two crashes only 2 survive, so
        # at most one mirror per master can exist — the run completes
        # and reports the degradation instead of failing.
        baseline = run_job(graph, "pagerank", num_nodes=4,
                           max_iterations=8).values
        result = run_job(graph, "pagerank", num_nodes=4, max_iterations=8,
                         ft_level=2, num_standby=0, recovery="migration",
                         failures=[(2, (0, 1))])
        assert result.ft_degraded is True
        assert result.ft_level_current == 1
        assert_matches(result, baseline)

    def test_full_repair_clears_degraded_flag(self, graph):
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=8,
                         ft_level=2, num_standby=0, recovery="migration",
                         failures=[(3, (0, 1))])
        assert result.ft_degraded is False
        assert result.ft_level_current == 2

    def test_healthy_run_reports_full_level(self, graph):
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=4,
                         ft_level=2, num_standby=0)
        assert result.ft_degraded is False
        assert result.ft_level_current == 2
        assert result.fallbacks == {}

    def test_gauges_published_on_non_replication_early_return(self, graph):
        # Regression: ``_update_ft_gauges`` used to return before
        # publishing on the non-replication path, so a metrics snapshot
        # of such a run carried no (or stale) ``ft.*`` gauges.
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             max_iterations=3, ft_mode="none")
        # Construction already walked the early-return path once.
        assert engine.metrics.gauge("ft.level_current") == 0
        assert engine.metrics.gauge("ft.degraded") is False
        # Poison the gauges the way a stale prior publish would; the
        # early-return path must overwrite, not skip, them.
        engine.metrics.set_gauge("ft.level_current", 2)
        engine.metrics.set_gauge("ft.degraded", True)
        engine._update_ft_gauges()
        assert engine.metrics.gauge("ft.level_current") == 0
        assert engine.metrics.gauge("ft.degraded") is False
        engine.run()
        assert engine.metrics.gauge("ft.level_current") == 0
        assert engine.metrics.gauge("ft.degraded") is False

    def test_gauges_published_in_replication_mode(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=6,
                             max_iterations=4, ft_level=2, num_standby=0)
        engine.run()
        assert engine.metrics.gauge("ft.level_current") == 2
        assert engine.metrics.gauge("ft.degraded") is False


class TestMidProtocolRestart:
    """Satellite: a crash landing *during* recovery is handled at once
    (Section 5.3.2), not deferred to the next barrier."""

    @pytest.mark.parametrize("strategy", ["rebirth", "migration"])
    def test_crash_during_protocol_restarts_recovery(
            self, graph, baselines, strategy):
        schedule = (FailureSchedule(seed=5)
                    .crash(2, phase="gather", target=0)
                    .crash(2, phase="recovery_protocol", target="random"))
        engine = make_engine(graph, "pagerank", num_nodes=6,
                             max_iterations=8, ft_level=2, num_standby=4,
                             recovery=strategy)
        ChaosController(schedule).attach(engine)
        result = engine.run()
        assert len(result.recoveries) == 2
        assert engine.metrics.value("recovery.restarts") == 1
        assert_matches(result, baselines["hash_edge_cut"])

    def test_restart_targets_only_still_crashed_nodes(self, graph):
        # The first pass revives node 0; the restarted pass must not
        # treat the healthy node 0 as failed again.
        schedule = (FailureSchedule(seed=5)
                    .crash(2, phase="gather", target=0)
                    .crash(2, phase="recovery_protocol", target=3))
        engine = make_engine(graph, "pagerank", num_nodes=6,
                             max_iterations=8, ft_level=2, num_standby=4,
                             recovery="rebirth")
        ChaosController(schedule).attach(engine)
        result = engine.run()
        assert [list(r.failed_nodes) for r in result.recoveries] == \
            [[0], [3]]


class TestStandbyLiveness:
    """Satellite: dead spares are never handed out as Rebirth targets."""

    def test_claim_standby_skips_crashed_spare(self):
        from repro.cluster.cluster import Cluster
        from repro.config import ClusterConfig
        cluster = Cluster(ClusterConfig(num_nodes=2, num_standby=2))
        spares = cluster.standby_nodes()
        cluster.crash(spares[0])
        assert cluster.live_standby_nodes() == [spares[1]]
        assert cluster.claim_standby() == spares[1]
        with pytest.raises(NoStandbyNodeError):
            cluster.claim_standby()

    def test_rebirth_uses_surviving_spare(self, graph, baselines):
        schedule = (FailureSchedule(seed=2)
                    .crash(1, phase="superstep_start", target="standby")
                    .crash(3, phase="gather", target=0))
        report = run_differential(
            graph, "pagerank", schedule,
            baseline=baselines["hash_edge_cut"],
            num_nodes=6, max_iterations=8, ft_level=1, num_standby=2,
            recovery="rebirth")
        assert report.matches, report.summary()
        assert report.chaos_result.recoveries[0].strategy == "rebirth"

    def test_all_spares_dead_falls_back_to_migration(self, graph,
                                                     baselines):
        schedule = (FailureSchedule(seed=2)
                    .crash(1, phase="superstep_start", target="standby",
                           count=2)
                    .crash(3, phase="gather", target=0))
        report = run_differential(
            graph, "pagerank", schedule,
            baseline=baselines["hash_edge_cut"],
            num_nodes=6, max_iterations=8, ft_level=1, num_standby=2,
            recovery="rebirth")
        assert report.matches, report.summary()
        assert report.chaos_result.recoveries[0].strategy == "migration"
        assert report.chaos_result.fallbacks == {"migration": 1}


class TestTerminalPaths:
    """Satellite: the paths that must end in a structured error."""

    def test_migration_with_no_survivors(self, graph):
        from repro.ft.migration import MigrationRecovery
        engine = make_engine(graph, "pagerank", num_nodes=3,
                             max_iterations=4, ft_level=1, num_standby=0,
                             recovery="migration")
        for node in range(3):
            engine.cluster.crash(node)
        with pytest.raises(UnrecoverableFailureError) as err:
            MigrationRecovery(engine).recover((0, 1, 2))
        assert err.value.rungs_attempted == ("migration",)
        assert err.value.lost_vertices == graph.num_vertices

    def test_replication_without_mirrors_is_exhausted(self, graph):
        # ft_level=0 replication keeps no mirrors at all: any master
        # loss exhausts replication immediately (only the checkpoint
        # rung could help, and it is not configured here).
        from repro.api import make_program
        from repro.config import (ClusterConfig, EngineConfig, JobConfig,
                                  RecoveryStrategy)
        from repro.engine.engine import Engine
        ft = FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=1,
                                  recovery=RecoveryStrategy.REBIRTH)
        object.__setattr__(ft, "ft_level", 0)
        job = JobConfig(cluster=ClusterConfig(num_nodes=4, num_standby=2),
                        engine=EngineConfig(max_iterations=4), ft=ft)
        engine = Engine(graph, make_program("pagerank", graph), job=job)
        engine.schedule_failure(2, (0,))
        with pytest.raises(UnrecoverableFailureError) as err:
            engine.run()
        assert err.value.lost_vertices > 0
        assert "replication:exhausted" in err.value.rungs_attempted

    def test_lost_vertices_propagates_through_run(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=6,
                             max_iterations=8, ft_level=1, num_standby=3,
                             recovery="migration")
        engine.schedule_failure(3, (0, 1, 2))
        with pytest.raises(UnrecoverableFailureError) as err:
            engine.run()
        assert err.value.lost_vertices > 0
        assert err.value.surviving_nodes == (3, 4, 5)

    def test_safety_interval_requires_replication_mode(self):
        with pytest.raises(ConfigError):
            FaultToleranceConfig(mode=FTMode.CHECKPOINT,
                                 safety_checkpoint_interval=2)
        with pytest.raises(ConfigError):
            FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=1,
                                 safety_checkpoint_interval=-1)
