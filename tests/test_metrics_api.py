"""Metrics-report and API façade tests."""

from __future__ import annotations

import pytest

from repro import FTMode, PartitionStrategy, make_engine, make_program, \
    run_job
from repro.algorithms import AlternatingLeastSquares, PageRank
from repro.errors import ConfigError
from repro.graph import generators
from repro.metrics import compare_overhead, message_overhead, \
    total_cluster_memory
from repro.metrics.report import execution_time


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(200, alpha=2.0, seed=17, avg_degree=5.0,
                                selfish_frac=0.1)


class TestReports:
    def test_overhead_report(self, graph):
        base = run_job(graph, "pagerank", num_nodes=4, max_iterations=3,
                       ft_mode="none")
        rep = run_job(graph, "pagerank", num_nodes=4, max_iterations=3)
        report = compare_overhead("rep", base, rep)
        assert report.overhead >= 0.0
        assert report.ft_time_s == pytest.approx(execution_time(rep))

    def test_replication_cheaper_than_checkpoint(self, graph):
        """The paper's headline: REP overhead tiny, CKPT large."""
        base = run_job(graph, "pagerank", num_nodes=4, max_iterations=3,
                       ft_mode="none")
        rep = run_job(graph, "pagerank", num_nodes=4, max_iterations=3)
        ckpt = run_job(graph, "pagerank", num_nodes=4, max_iterations=3,
                       ft_mode="checkpoint")
        rep_oh = compare_overhead("rep", base, rep).overhead
        ckpt_oh = compare_overhead("ckpt", base, ckpt).overhead
        assert rep_oh < 0.25
        assert ckpt_oh > 2 * rep_oh

    def test_message_overhead(self, graph):
        base = run_job(graph, "pagerank", num_nodes=4, max_iterations=3,
                       ft_mode="none")
        rep = run_job(graph, "pagerank", num_nodes=4, max_iterations=3)
        assert message_overhead(base, rep) >= 0.0

    def test_memory_grows_with_ft_level(self, graph):
        mem = {}
        for level in (1, 3):
            engine = make_engine(graph, "pagerank", num_nodes=4,
                                 ft_level=level)
            mem[level] = total_cluster_memory(engine)
        base = make_engine(graph, "pagerank", num_nodes=4, ft_mode="none")
        mem[0] = total_cluster_memory(base)
        assert mem[0] < mem[1] < mem[3]


class TestApiFacade:
    def test_make_program_by_name(self, graph):
        program = make_program("pagerank", graph)
        assert isinstance(program, PageRank)

    def test_make_program_passthrough(self, graph):
        program = PageRank(damping=0.5)
        assert make_program(program, graph) is program

    def test_unknown_algorithm(self, graph):
        with pytest.raises(ConfigError):
            make_program("bogus", graph)

    def test_als_infers_user_count(self):
        g = generators.bipartite(40, 10, edges_per_user=3, seed=1)
        program = make_program("als", g)
        assert isinstance(program, AlternatingLeastSquares)
        assert program.num_users == g.num_vertices // 2

    def test_string_enums_accepted(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             ft_mode="replication", recovery="migration",
                             partition="grid_vertex_cut")
        assert engine.job.ft.mode is FTMode.REPLICATION
        assert engine.job.engine.partition is \
            PartitionStrategy.GRID_VERTEX_CUT

    def test_data_scale_builds_scaled_cluster(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             data_scale=100.0)
        assert engine.model.data_scale == 100.0

    def test_run_job_failure_tuples(self, graph):
        result = run_job(graph, "pagerank", num_nodes=4, max_iterations=4,
                         num_standby=2,
                         failures=[(1, [0]), (2, [1], "after_commit")])
        assert len(result.recoveries) == 2

    def test_scaled_times_exceed_unscaled(self, graph):
        small = run_job(graph, "pagerank", num_nodes=4, max_iterations=3,
                        ft_mode="none")
        big = run_job(graph, "pagerank", num_nodes=4, max_iterations=3,
                      ft_mode="none", data_scale=200.0)
        assert execution_time(big) > execution_time(small)
