"""Migration recovery tests: promotion, FT restoration (P6), equivalence."""

from __future__ import annotations

import pytest

from repro.api import make_engine, run_job
from repro.engine.state import Role
from repro.graph import generators

PARTS = ["hash_edge_cut", "hybrid_cut"]


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(250, alpha=2.0, seed=61, avg_degree=5.0,
                                selfish_frac=0.1)


@pytest.fixture(scope="module")
def baseline(graph):
    result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6)
    return {v: result.values[v] for v in range(graph.num_vertices)}


class TestEquivalence:
    def test_edge_cut_bitwise_equal(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="migration", failures=[(3, [2])])
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]

    def test_vertex_cut_numerically_equal(self, graph, baseline):
        """Vertex-cut migration regroups the gather fold: values agree
        to floating-point reassociation tolerance."""
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         partition="hybrid_cut", recovery="migration",
                         failures=[(3, [2])])
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(baseline[v],
                                                     rel=1e-9)

    @pytest.mark.parametrize("phase", ["compute", "after_commit"])
    def test_both_detection_points(self, graph, baseline, phase):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="migration", failures=[(3, [2], phase)])
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]

    def test_sssp_equivalent(self):
        g = generators.chain(30, weighted=True, seed=3)
        clean = run_job(g, "sssp", num_nodes=4, max_iterations=60,
                        algorithm_kwargs={"source": 0})
        failed = run_job(g, "sssp", num_nodes=4, max_iterations=60,
                         recovery="migration",
                         algorithm_kwargs={"source": 0},
                         failures=[(8, [1])])
        for v in range(30):
            assert failed.values[v] == clean.values[v]

    def test_two_sequential_failures(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="migration", failures=[(2, [1]), (4, [3])])
        assert len(result.recoveries) == 2
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]


class TestPromotion:
    def test_masters_moved_to_survivors(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=5,
                             max_iterations=6, recovery="migration")
        moved = [v for v in range(graph.num_vertices)
                 if engine.master_node_of[v] == 2]
        engine.schedule_failure(3, [2])
        engine.run()
        assert moved  # node 2 owned something
        for v in moved:
            new_node = engine.master_node_of[v]
            assert new_node != 2
            slot = engine.local_graphs[new_node].slot_of(v)
            assert slot.role is Role.MASTER

    def test_no_standby_consumed(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=5,
                             max_iterations=6, recovery="migration",
                             num_standby=1)
        engine.schedule_failure(3, [2])
        engine.run()
        assert len(engine.cluster.standby_nodes()) == 1
        assert 2 not in engine.cluster.alive_workers()

    def test_works_with_zero_standby(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="migration", num_standby=0,
                         failures=[(3, [2])])
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]


class TestFtLevelRestoration:
    @pytest.mark.parametrize("partition", PARTS)
    def test_every_vertex_keeps_k_mirrors(self, graph, partition):
        """Invariant P6: after migration every vertex again tolerates
        ft_level failures."""
        engine = make_engine(graph, "pagerank", num_nodes=5,
                             max_iterations=6, partition=partition,
                             recovery="migration")
        engine.schedule_failure(3, [2])
        engine.run()
        alive = set(engine.cluster.alive_workers())
        for v in range(graph.num_vertices):
            node = engine.master_node_of[v]
            assert node in alive
            meta = engine.local_graphs[node].slot_of(v).meta
            assert len(meta.mirror_nodes) >= 1
            for mnode in meta.mirror_nodes:
                assert mnode in alive
                mirror = engine.local_graphs[mnode].slot_of(v)
                assert mirror.role is Role.MIRROR
                assert mirror.master_node == node

    def test_survives_failure_after_migration(self, graph, baseline):
        """The restored FT level actually covers a second failure."""
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="migration", num_standby=0,
                         failures=[(2, [2]), (4, [0])])
        assert len(result.recoveries) == 2
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(baseline[v],
                                                     rel=1e-9)

    def test_replica_positions_valid_after_migration(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=5,
                             max_iterations=6, recovery="migration")
        engine.schedule_failure(3, [2])
        engine.run()
        for node in engine.cluster.alive_workers():
            lg = engine.local_graphs[node]
            for slot in lg.iter_masters():
                for rnode, pos in slot.meta.replica_positions.items():
                    replica = engine.local_graphs[rnode].slots[pos]
                    assert replica is not None
                    assert replica.gid == slot.gid


class TestStats:
    def test_stats_populated(self, graph):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="migration", failures=[(3, [2])])
        stats = result.recoveries[0]
        assert stats.strategy == "migration"
        assert stats.newbie_nodes == ()
        assert stats.vertices_recovered > 0
        assert stats.total_s > 0

    def test_migration_pays_more_rounds_than_rebirth(self, graph):
        """Section 6.4: multiple message rounds slow Migration on small
        graphs."""
        mig = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                      recovery="migration", failures=[(3, [2])])
        reb = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                      recovery="rebirth", failures=[(3, [2])])
        assert mig.recoveries[0].reload_s > reb.recoveries[0].reload_s
