"""Scalar-vs-vectorized differential oracle (DESIGN.md §11).

The vectorized structure-of-arrays path promises *bit-for-bit* equality
with the per-vertex scalar loop — not approximate convergence.  Every
case here runs the same job twice, once with ``vectorized=False`` and
once with ``vectorized=True``, and asserts that everything observable
matches exactly: committed values, per-node activity sets, logical
message and wire-byte counters, elision counts, simulated time, and the
full per-iteration stats.

The sweep covers all four kernel-backed algorithms × both partitioning
families × ft_level 0–2 (level 0 runs with fault tolerance disabled
entirely, levels 1–2 under replication, which adds mirrors and the
full-state MIRROR_SYNC flag bits to the hot path).
"""

from __future__ import annotations

import pytest

from repro.api import make_engine

ALGORITHMS = ["pagerank", "degree", "sssp", "cc"]
PARTITIONS = ["hash_edge_cut", "hybrid_cut"]
FT_LEVELS = [0, 1, 2]

MAX_ITERATIONS = 8
NUM_NODES = 6


def _kwargs(algorithm: str, partition: str, ft_level: int) -> dict:
    kw = dict(num_nodes=NUM_NODES, partition=partition,
              max_iterations=MAX_ITERATIONS)
    if ft_level == 0:
        kw["ft_mode"] = "none"
    else:
        kw.update(ft_mode="replication", ft_level=ft_level)
    if algorithm == "sssp":
        kw["algorithm_kwargs"] = {"source": 0}
    return kw


def _run(graph, algorithm: str, vectorized: bool, kw: dict):
    engine = make_engine(graph, algorithm, vectorized=vectorized, **kw)
    # Non-vacuity: the flag must actually select the intended path.
    if vectorized:
        assert engine._vec is not None, \
            "vectorized=True did not install the array executor"
    else:
        assert engine._vec is None, \
            "vectorized=False must keep the scalar loop"
    result = engine.run()
    observed = {
        "values": engine.values(),
        "active": {node: (sorted(lg.active_masters),
                          sorted(lg.active_others))
                   for node, lg in engine.local_graphs.items()},
        "slots": {node: [(s.gid, s.value, s.active, s.last_activates,
                          s.mirror_self_active, s.last_update_iter)
                         for s in lg.iter_slots()]
                  for node, lg in engine.local_graphs.items()},
        "syncs_elided": engine.syncs_elided,
        "num_iterations": result.num_iterations,
        "total_messages": result.total_messages,
        "total_bytes": result.total_bytes,
        "total_sim_time_s": result.total_sim_time_s,
        "halted_early": result.halted_early,
        "iteration_stats": result.iteration_stats,
    }
    return observed


@pytest.mark.parametrize("ft_level", FT_LEVELS)
@pytest.mark.parametrize("partition", PARTITIONS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_scalar_vectorized_identical(chaos_graph, algorithm, partition,
                                     ft_level):
    kw = _kwargs(algorithm, partition, ft_level)
    scalar = _run(chaos_graph, algorithm, False, kw)
    vectorized = _run(chaos_graph, algorithm, True, kw)
    for field in scalar:
        assert vectorized[field] == scalar[field], \
            (f"{algorithm}/{partition}/ft{ft_level}: vectorized path "
             f"diverged on {field}")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_unbatched_transport_identical(chaos_graph, algorithm):
    """The legacy per-record transport re-splits columnar batches; the
    vectorized path must stay exact through that packaging too."""
    kw = _kwargs(algorithm, "hash_edge_cut", 1)
    kw["batch_syncs"] = False
    scalar = _run(chaos_graph, algorithm, False, kw)
    vectorized = _run(chaos_graph, algorithm, True, kw)
    for field in scalar:
        assert vectorized[field] == scalar[field], \
            f"{algorithm}/unbatched: vectorized path diverged on {field}"


@pytest.mark.parametrize("partition", PARTITIONS)
def test_elision_disabled_identical(chaos_graph, partition):
    """Sync elision off exercises the unfiltered sync fan-out."""
    kw = _kwargs("sssp", partition, 1)
    kw["sync_elision"] = False
    scalar = _run(chaos_graph, "sssp", False, kw)
    vectorized = _run(chaos_graph, "sssp", True, kw)
    for field in scalar:
        assert vectorized[field] == scalar[field], \
            f"sssp/{partition}/no-elision: diverged on {field}"


VC_PARTITIONS = ["random_vertex_cut", "hybrid_cut"]


@pytest.mark.parametrize("combining", [True, False])
@pytest.mark.parametrize("partition", VC_PARTITIONS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_combining_modes_identical(chaos_graph, algorithm, partition,
                                   combining):
    """The combining layer (DESIGN.md §15) in both wire formats: the
    vectorized vertex-cut gather — combined partials with folded
    counts, or raw contribution groups — must stay bit-equal to the
    scalar protocol's."""
    kw = _kwargs(algorithm, partition, 1)
    kw["combining"] = combining
    scalar = _run(chaos_graph, algorithm, False, kw)
    vectorized = _run(chaos_graph, algorithm, True, kw)
    for field in scalar:
        assert vectorized[field] == scalar[field], \
            (f"{algorithm}/{partition}/combining={combining}: "
             f"vectorized path diverged on {field}")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_combining_off_matches_on_vectorized(chaos_graph, algorithm):
    """Within the vectorized path, the raw (combining-off) wire format
    is observationally identical to the combined one — values, logical
    messages, bytes and simulated time."""
    kw = _kwargs(algorithm, "random_vertex_cut", 1)
    on = _run(chaos_graph, algorithm, True, {**kw, "combining": True})
    off = _run(chaos_graph, algorithm, True, {**kw, "combining": False})
    for field in on:
        assert off[field] == on[field], \
            f"{algorithm}: combining=False diverged on {field}"


def test_custom_program_falls_back_to_scalar(chaos_graph):
    """A VertexProgram without a kernel() must run the scalar loop even
    with vectorized=True — the fallback rule of DESIGN.md §11."""
    from repro.algorithms.pagerank import PageRank

    class CustomPageRank(PageRank):
        def kernel(self):
            return None

    engine = make_engine(chaos_graph, CustomPageRank(), num_nodes=NUM_NODES,
                         max_iterations=4, vectorized=True)
    assert engine._vec is None
    reference = make_engine(chaos_graph, "pagerank", num_nodes=NUM_NODES,
                            max_iterations=4, vectorized=False)
    assert engine.run().values == reference.run().values
