"""Replication-planning tests: FT replicas, mirrors, invariants P2/P3."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FaultToleranceConfig, FTMode
from repro.errors import ConfigError
from repro.ft.replication import computation_replicas, plan_replication
from repro.graph import generators
from repro.partition import hash_edge_cut, hybrid_cut


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(400, alpha=2.0, seed=21, avg_degree=5.0,
                                selfish_frac=0.15)


def ft(level, **kw):
    return FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=level,
                                **kw)


class TestComputationReplicas:
    def test_edge_cut_semantics(self, graph):
        part = hash_edge_cut(graph, 6)
        replicas = computation_replicas(graph, part)
        # A replica of u exists exactly on remote out-neighbor nodes.
        for eid in range(graph.num_edges):
            u = int(graph.sources[eid])
            v = int(graph.targets[eid])
            if part.master_of[u] != part.master_of[v]:
                assert int(part.master_of[v]) in replicas[u]

    def test_master_never_in_own_replicas(self, graph):
        part = hybrid_cut(graph, 6)
        replicas = computation_replicas(graph, part)
        for v in range(graph.num_vertices):
            assert int(part.master_of[v]) not in replicas[v]


class TestPlanInvariants:
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_every_vertex_covered(self, graph, level):
        part = hash_edge_cut(graph, 8)
        plan = plan_replication(graph, part, ft(level))
        plan.validate()
        for v in range(graph.num_vertices):
            assert len(plan.replica_nodes[v]) >= level
            assert len(plan.mirror_nodes[v]) == level

    def test_mirrors_on_distinct_nodes(self, graph):
        part = hash_edge_cut(graph, 8)
        plan = plan_replication(graph, part, ft(3))
        for v in range(graph.num_vertices):
            mirrors = plan.mirror_nodes[v]
            assert len(set(mirrors)) == len(mirrors)
            assert int(plan.master_of[v]) not in mirrors

    def test_ft_replicas_are_mirrors(self, graph):
        """Section 4.2: the FT replica is always the mirror."""
        part = hash_edge_cut(graph, 8)
        plan = plan_replication(graph, part, ft(1))
        for v in range(graph.num_vertices):
            for node in plan.ft_nodes[v]:
                assert node in plan.mirror_nodes[v]

    def test_zero_level_plan_is_bare(self, graph):
        part = hash_edge_cut(graph, 8)
        cfg = FaultToleranceConfig(mode=FTMode.NONE, ft_level=0)
        plan = plan_replication(graph, part, cfg)
        assert plan.total_ft_replicas() == 0
        assert all(not m for m in plan.mirror_nodes)

    def test_selfish_flags(self, graph):
        part = hash_edge_cut(graph, 8)
        plan = plan_replication(graph, part, ft(1))
        assert np.array_equal(plan.selfish, graph.out_degrees() == 0)

    def test_extra_replica_fraction_small(self, graph):
        """Fig. 3b/8a: FT replicas are a small share of all replicas."""
        part = hash_edge_cut(graph, 8)
        plan = plan_replication(graph, part, ft(1))
        assert plan.extra_replica_fraction() < 0.25

    def test_higher_level_needs_more_ft_replicas(self, graph):
        part = hash_edge_cut(graph, 8)
        one = plan_replication(graph, part, ft(1)).total_ft_replicas()
        three = plan_replication(graph, part, ft(3)).total_ft_replicas()
        assert three > one

    def test_impossible_level_rejected(self, graph):
        part = hash_edge_cut(graph, 3)
        with pytest.raises(ConfigError):
            plan_replication(graph, part, ft(3))

    def test_deterministic(self, graph):
        part = hash_edge_cut(graph, 8)
        a = plan_replication(graph, part, ft(2), seed=5)
        b = plan_replication(graph, part, ft(2), seed=5)
        assert a.replica_nodes == b.replica_nodes
        assert a.mirror_nodes == b.mirror_nodes

    def test_mirror_load_balanced(self, graph):
        """The greedy election spreads mirrors across machines."""
        part = hash_edge_cut(graph, 8)
        plan = plan_replication(graph, part, ft(1))
        counts = np.zeros(8, dtype=int)
        for v in range(graph.num_vertices):
            for node in plan.mirror_nodes[v]:
                counts[node] += 1
        assert counts.max() < 3 * max(1, counts.mean())

    def test_vertex_cut_plan(self, graph):
        part = hybrid_cut(graph, 8)
        plan = plan_replication(graph, part, ft(2))
        plan.validate()
        for v in range(graph.num_vertices):
            assert len(plan.mirror_nodes[v]) == 2
