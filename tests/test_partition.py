"""Partitioning tests: P1 invariants, strategy-specific properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PartitionStrategy
from repro.errors import PartitionError
from repro.graph import generators
from repro.partition import (
    EdgeCutPartitioning,
    fennel_edge_cut,
    grid_vertex_cut,
    hash_edge_cut,
    hybrid_cut,
    make_partitioner,
    random_vertex_cut,
    replication_factor,
    report,
)
from repro.partition.base import VertexCutPartitioning
from repro.partition.grid_vertex_cut import _grid_shape


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(600, alpha=2.0, seed=11, avg_degree=6.0)


EDGE_CUTS = [hash_edge_cut, fennel_edge_cut]
VERTEX_CUTS = [random_vertex_cut, grid_vertex_cut, hybrid_cut]


class TestEdgeCuts:
    @pytest.mark.parametrize("cut", EDGE_CUTS)
    def test_every_vertex_assigned(self, graph, cut):
        part = cut(graph, 8)
        part.validate(graph)
        assert part.master_of.shape == (graph.num_vertices,)
        assert part.master_of.min() >= 0
        assert part.master_of.max() < 8

    def test_hash_deterministic(self, graph):
        a = hash_edge_cut(graph, 8)
        b = hash_edge_cut(graph, 8)
        assert np.array_equal(a.master_of, b.master_of)

    def test_hash_seed_changes_layout(self, graph):
        a = hash_edge_cut(graph, 8, seed=0)
        b = hash_edge_cut(graph, 8, seed=1)
        assert not np.array_equal(a.master_of, b.master_of)

    def test_hash_roughly_balanced(self, graph):
        part = hash_edge_cut(graph, 8)
        counts = np.bincount(part.master_of, minlength=8)
        assert counts.max() < 2 * counts.mean()

    def test_fennel_respects_balance_slack(self, graph):
        part = fennel_edge_cut(graph, 8, balance_slack=1.1)
        counts = np.bincount(part.master_of, minlength=8)
        # capacity = slack * n/p + 1, and the last admitted vertex may
        # land exactly on it
        assert counts.max() <= 1.1 * graph.num_vertices / 8 + 2

    def test_fennel_beats_hash_replication(self, graph):
        lam_hash = replication_factor(graph, hash_edge_cut(graph, 8))
        lam_fennel = replication_factor(graph, fennel_edge_cut(graph, 8))
        assert lam_fennel < lam_hash

    def test_masters_on(self, graph):
        part = hash_edge_cut(graph, 4)
        all_masters = np.concatenate([part.masters_on(n) for n in range(4)])
        assert sorted(all_masters.tolist()) == list(range(graph.num_vertices))


class TestVertexCuts:
    @pytest.mark.parametrize("cut", VERTEX_CUTS)
    def test_every_edge_assigned_once(self, graph, cut):
        part = cut(graph, 6)
        part.validate(graph)
        assert part.edge_node.shape == (graph.num_edges,)
        # P1: the union of per-node edge sets is a partition.
        total = sum(len(part.edges_on(n)) for n in range(6))
        assert total == graph.num_edges

    @pytest.mark.parametrize("cut", VERTEX_CUTS)
    def test_master_hosts_copy(self, graph, cut):
        """The master node hosts at least one adjacent edge, or the
        vertex is edge-free."""
        part = cut(graph, 6)
        hosts = [set() for _ in range(graph.num_vertices)]
        for eid in range(graph.num_edges):
            node = int(part.edge_node[eid])
            hosts[int(graph.sources[eid])].add(node)
            hosts[int(graph.targets[eid])].add(node)
        for v in range(graph.num_vertices):
            if hosts[v]:
                assert int(part.master_of[v]) in hosts[v]

    def test_grid_shape_square(self):
        assert _grid_shape(50) == (5, 10)
        assert _grid_shape(16) == (4, 4)
        assert _grid_shape(7) == (1, 7)

    def test_grid_constrains_spread(self, graph):
        part = grid_vertex_cut(graph, 16)
        rows, cols = _grid_shape(16)
        cap = rows + cols  # constraint-set size bound
        spread = [set() for _ in range(graph.num_vertices)]
        for eid in range(graph.num_edges):
            node = int(part.edge_node[eid])
            spread[int(graph.sources[eid])].add(node)
        assert max((len(s) for s in spread), default=0) <= cap

    def test_hybrid_low_degree_edges_at_target_hash(self, graph):
        part = hybrid_cut(graph, 6, threshold=100)
        in_deg = graph.in_degrees()
        vhash = hash_edge_cut(graph, 6).master_of
        for eid in range(graph.num_edges):
            dst = int(graph.targets[eid])
            if in_deg[dst] <= 100:
                assert part.edge_node[eid] == vhash[dst]

    def test_replication_factor_ordering(self, graph):
        """Fig. 14a: hybrid < grid <= random on skewed graphs."""
        lam = {cut.__name__: replication_factor(graph, cut(graph, 16))
               for cut in VERTEX_CUTS}
        assert lam["hybrid_cut"] < lam["random_vertex_cut"]
        assert lam["grid_vertex_cut"] < lam["random_vertex_cut"]


class TestValidationAndFactory:
    def test_bad_master_shape_rejected(self, graph):
        part = EdgeCutPartitioning(4, np.zeros(3, dtype=np.int64))
        with pytest.raises(PartitionError):
            part.validate(graph)

    def test_bad_edge_assignment_rejected(self, graph):
        part = VertexCutPartitioning(
            4, np.full(graph.num_edges, 9, dtype=np.int64),
            np.zeros(graph.num_vertices, dtype=np.int64))
        with pytest.raises(PartitionError):
            part.validate(graph)

    def test_factory_resolves_all_strategies(self, graph):
        for strategy in PartitionStrategy:
            fn = make_partitioner(strategy)
            part = fn(graph, 4)
            part.validate(graph)
            assert part.kind == ("edge-cut" if strategy.is_edge_cut
                                 else "vertex-cut")

    def test_report_fields(self, graph):
        rep = report(graph, hash_edge_cut(graph, 8))
        assert rep.num_nodes == 8
        assert rep.replication_factor >= 1.0
        assert rep.vertex_balance >= 1.0
        assert rep.edge_balance >= 1.0
