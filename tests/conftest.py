"""Shared fixtures: small deterministic graphs and engine factories.

Chaos testing (see DESIGN.md, "Chaos testing"):

* ``pytest -m chaos`` selects the seeded chaos sweeps;
* ``--chaos-seed N`` replays one exact failure schedule — every chaos
  failure message prints the one-line command to do so.
"""

from __future__ import annotations

import pytest

from repro.api import make_engine
from repro.graph import generators
from repro.graph.builder import GraphBuilder


def pytest_addoption(parser):
    parser.addoption(
        "--chaos-seed", type=int, default=None,
        help="Replay chaos tests with this exact schedule seed "
             "(printed by failing chaos runs).")


@pytest.fixture
def chaos_seed_override(request):
    """The ``--chaos-seed`` value, or None for the default sweep."""
    return request.config.getoption("--chaos-seed")


@pytest.fixture(scope="session")
def chaos_graph():
    """Deterministic 60-vertex power-law graph for chaos sweeps."""
    return generators.power_law(60, alpha=2.0, seed=7, name="chaos-pl")


@pytest.fixture(scope="session")
def small_powerlaw():
    """A ~300-vertex power-law graph with selfish vertices."""
    return generators.power_law(300, alpha=2.0, seed=7, avg_degree=4.0,
                                selfish_frac=0.1, name="small-pl")


@pytest.fixture(scope="session")
def tiny_graph():
    """The paper's Fig. 1-style sample graph (7 vertices)."""
    builder = GraphBuilder(name="fig1")
    edges = [(1, 2), (2, 1), (3, 2), (4, 2), (2, 5), (5, 4),
             (6, 5), (4, 6), (1, 7), (3, 7)]
    for src, dst in edges:
        builder.add_edge(src - 1, dst - 1)  # 0-based
    return builder.build()


@pytest.fixture(scope="session")
def weighted_chain():
    return generators.chain(32, weighted=True, seed=5)


@pytest.fixture(scope="session")
def sym_two_components():
    """Two undirected components plus one isolated vertex."""
    builder = GraphBuilder(name="two-comp")
    for u, v in [(0, 1), (1, 2), (2, 3), (5, 6), (6, 7)]:
        builder.add_edge(u, v)
        builder.add_edge(v, u)
    builder.ensure_vertex(8)  # isolated
    return builder.build()


def engine_for(graph, algorithm="pagerank", **kw):
    """Small-cluster engine with test-friendly defaults."""
    kw.setdefault("num_nodes", 4)
    kw.setdefault("max_iterations", 5)
    kw.setdefault("num_standby", 2)
    return make_engine(graph, algorithm, **kw)


@pytest.fixture
def make_small_engine():
    return engine_for
