"""Local-graph construction tests: edges land once, positions recorded,
mirror full state is faithful (invariants P3/P7 groundwork)."""

from __future__ import annotations

import pytest

from repro.config import FaultToleranceConfig, FTMode
from repro.engine.construction import build_local_graphs
from repro.engine.state import Role
from repro.ft.replication import plan_replication
from repro.graph import generators
from repro.partition import hash_edge_cut, hybrid_cut


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(300, alpha=2.0, seed=31, avg_degree=5.0,
                                selfish_frac=0.1)


def build(graph, part, level=1):
    cfg = (FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=level)
           if level else FaultToleranceConfig(mode=FTMode.NONE, ft_level=0))
    plan = plan_replication(graph, part, cfg)
    return plan, build_local_graphs(graph, part, plan)


class TestEdgeCutConstruction:
    def test_each_edge_once_at_target_master(self, graph):
        part = hash_edge_cut(graph, 6)
        plan, (locals_, _) = build(graph, part)
        seen = set()
        for node, lg in locals_.items():
            for slot in lg.iter_slots():
                for src_pos, _w in slot.in_edges:
                    src = lg.slots[src_pos]
                    seen.add((src.gid, slot.gid))
                    # in-edges only at the target's master node
                    assert slot.is_master
                    assert node == int(part.master_of[slot.gid])
        expected = set(zip(graph.sources.tolist(), graph.targets.tolist()))
        assert seen == expected

    def test_out_edges_mirror_in_edges(self, graph):
        part = hash_edge_cut(graph, 6)
        _, (locals_, _) = build(graph, part)
        for lg in locals_.values():
            for slot in lg.iter_slots():
                for dst_pos in slot.out_edges:
                    dst = lg.slots[dst_pos]
                    src_positions = [p for p, _ in dst.in_edges]
                    assert lg.position_of(slot.gid) in src_positions

    def test_positions_recorded_in_meta(self, graph):
        part = hash_edge_cut(graph, 6)
        plan, (locals_, _) = build(graph, part)
        for v in range(graph.num_vertices):
            master = locals_[int(part.master_of[v])].slot_of(v)
            for node, pos in master.meta.replica_positions.items():
                replica = locals_[node].slots[pos]
                assert replica is not None and replica.gid == v
            assert master.meta.master_position == \
                locals_[int(part.master_of[v])].position_of(v)

    def test_mirror_full_edges_match_master(self, graph):
        part = hash_edge_cut(graph, 6)
        plan, (locals_, _) = build(graph, part)
        for v in range(graph.num_vertices):
            master_node = int(part.master_of[v])
            master = locals_[master_node].slot_of(v)
            for node in plan.mirror_nodes[v]:
                mirror = locals_[node].slot_of(v)
                assert mirror.role is Role.MIRROR
                assert mirror.full_edges is not None
                assert len(mirror.full_edges) == len(master.in_edges)
                for (gid, pos, w), (mpos, mw) in zip(mirror.full_edges,
                                                     master.in_edges):
                    assert pos == mpos and w == mw
                    assert locals_[master_node].slots[pos].gid == gid

    def test_mirror_meta_is_copy(self, graph):
        part = hash_edge_cut(graph, 6)
        plan, (locals_, _) = build(graph, part)
        v = next(v for v in range(graph.num_vertices)
                 if plan.mirror_nodes[v])
        master = locals_[int(part.master_of[v])].slot_of(v)
        mirror = locals_[plan.mirror_nodes[v][0]].slot_of(v)
        assert mirror.meta is not master.meta
        assert mirror.meta.replica_positions == \
            master.meta.replica_positions

    def test_degrees_replicated(self, graph):
        part = hash_edge_cut(graph, 6)
        _, (locals_, _) = build(graph, part)
        for lg in locals_.values():
            for slot in lg.iter_slots():
                assert slot.out_degree == graph.out_degree(slot.gid)
                assert slot.in_degree == graph.in_degree(slot.gid)


class TestVertexCutConstruction:
    def test_each_edge_once_at_assigned_node(self, graph):
        part = hybrid_cut(graph, 6)
        _, (locals_, _) = build(graph, part)
        count = 0
        for node, lg in locals_.items():
            for slot in lg.iter_slots():
                for src_pos, _w in slot.in_edges:
                    count += 1
        assert count == graph.num_edges

    def test_edges_on_assigned_nodes(self, graph):
        part = hybrid_cut(graph, 6)
        _, (locals_, _) = build(graph, part)
        per_node = {node: set() for node in locals_}
        for node, lg in locals_.items():
            for slot in lg.iter_slots():
                for src_pos, _w in slot.in_edges:
                    per_node[node].add((lg.slots[src_pos].gid, slot.gid))
        for eid in range(graph.num_edges):
            node = int(part.edge_node[eid])
            pair = (int(graph.sources[eid]), int(graph.targets[eid]))
            assert pair in per_node[node]

    def test_no_full_edges_under_vertex_cut(self, graph):
        part = hybrid_cut(graph, 6)
        _, (locals_, _) = build(graph, part)
        for lg in locals_.values():
            for slot in lg.iter_slots():
                assert slot.full_edges is None


class TestReport:
    def test_census_classes(self, graph):
        part = hash_edge_cut(graph, 6)
        _, (_, rep) = build(graph, part)
        assert rep.num_vertices == graph.num_vertices
        assert rep.replica_less_selfish > 0
        assert 0 <= rep.extra_replica_fraction < 0.5
        assert rep.ft_replicas > 0

    def test_no_ft_mode_has_no_ft_replicas(self, graph):
        part = hash_edge_cut(graph, 6)
        _, (_, rep) = build(graph, part, level=0)
        assert rep.ft_replicas == 0
