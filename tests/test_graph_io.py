"""Edge-list I/O tests."""

from __future__ import annotations

import pytest

from repro.errors import GraphFormatError
from repro.graph import generators
from repro.graph.io import load_edge_list, save_edge_list


class TestRoundtrip:
    def test_unweighted(self, tmp_path):
        g = generators.erdos_renyi(50, 200, seed=1)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        g2 = load_edge_list(path)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        assert list(g2.edges()) == [(s, d, 1.0) for s, d, _ in g.edges()]

    def test_weighted(self, tmp_path):
        g = generators.chain(10, weighted=True, seed=2)
        path = tmp_path / "w.txt"
        save_edge_list(g, path, include_weights=True)
        g2 = load_edge_list(path)
        for (a, b, w1), (c, d, w2) in zip(g.edges(), g2.edges()):
            assert (a, b) == (c, d)
            assert w1 == pytest.approx(w2, rel=1e-4)

    def test_forced_vertex_count(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0\t1\n")
        g = load_edge_list(path, num_vertices=10)
        assert g.num_vertices == 10


class TestParsing:
    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\n0\t1\n  \n2\t3\n")
        assert load_edge_list(path).num_edges == 2

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_negative_id(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("-1 2\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)
