"""Graph substrate tests: CSR structure, builder, derived graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def diamond():
    """0 -> {1, 2} -> 3."""
    builder = GraphBuilder(name="diamond")
    builder.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    return builder.build()


class TestGraphStructure:
    def test_counts(self):
        g = diamond()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_out_neighbors(self):
        g = diamond()
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
        assert g.out_neighbors(3).tolist() == []

    def test_in_neighbors(self):
        g = diamond()
        assert sorted(g.in_neighbors(3).tolist()) == [1, 2]
        assert g.in_neighbors(0).tolist() == []

    def test_degrees(self):
        g = diamond()
        assert g.out_degree(0) == 2
        assert g.in_degree(3) == 2
        assert g.out_degrees().tolist() == [2, 1, 1, 0]
        assert g.in_degrees().tolist() == [0, 1, 1, 2]

    def test_edge_ids_consistent(self):
        g = diamond()
        for v in range(4):
            for eid in g.in_edge_ids(v):
                assert g.edge(int(eid))[1] == v
            for eid in g.out_edge_ids(v):
                assert g.edge(int(eid))[0] == v

    def test_edges_iteration_sorted(self):
        g = diamond()
        edges = [(s, d) for s, d, _ in g.edges()]
        assert edges == sorted(edges)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, np.array([0]), np.array([5]))

    def test_weight_length_mismatch(self):
        with pytest.raises(GraphError):
            Graph(2, np.array([0]), np.array([1]), np.array([1.0, 2.0]))

    def test_reversed(self):
        g = diamond()
        rev = g.reversed()
        assert sorted(rev.out_neighbors(3).tolist()) == [1, 2]

    def test_with_weights(self):
        g = diamond()
        g2 = g.with_weights(np.full(4, 2.5))
        assert g2.edge(0)[2] == 2.5
        assert g.edge(0)[2] == 1.0  # original untouched


class TestBuilder:
    def test_dedup(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        assert builder.build().num_edges == 1

    def test_dedup_keeps_first_weight(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 5.0)
        builder.add_edge(0, 1, 9.0)
        assert builder.build().edge(0)[2] == 5.0

    def test_self_loop_dropped_by_default(self):
        builder = GraphBuilder()
        builder.add_edge(1, 1)
        assert builder.build().num_edges == 0

    def test_self_loop_allowed_when_opted_in(self):
        builder = GraphBuilder(allow_self_loops=True)
        builder.add_edge(1, 1)
        assert builder.build().num_edges == 1

    def test_ensure_vertex_grows(self):
        builder = GraphBuilder()
        builder.ensure_vertex(9)
        assert builder.build().num_vertices == 10

    def test_negative_vertex_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError):
            builder.ensure_vertex(-1)

    def test_add_vertex_allocates_sequentially(self):
        builder = GraphBuilder()
        assert builder.add_vertex() == 0
        assert builder.add_vertex() == 1

    def test_builder_reusable(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        g1 = builder.build()
        g2 = builder.build()
        assert g1.num_edges == g2.num_edges == 1
