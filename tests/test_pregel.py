"""Pregel/Hama message-passing engine tests (the Section 2.3 baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import run_job
from repro.engine.pregel import (
    MessagePassingPageRank,
    PregelEngine,
    PregelProgram,
)
from repro.errors import EngineError, UnrecoverableFailureError
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(250, alpha=2.0, seed=67, avg_degree=5.0)


def numpy_pagerank(graph, iterations, damping=0.85):
    n = graph.num_vertices
    out_deg = graph.out_degrees().astype(float)
    rank = np.ones(n)
    for _ in range(iterations):
        contrib = np.zeros(n)
        mass = np.where(out_deg > 0, rank / np.maximum(out_deg, 1), 0.0)
        np.add.at(contrib, graph.targets, mass[graph.sources])
        rank = (1 - damping) + damping * contrib
    return rank


class TestCorrectness:
    def test_matches_numpy(self, graph):
        engine = PregelEngine(graph, MessagePassingPageRank(), num_nodes=4)
        result = engine.run(5)
        # Pregel superstep 0 only seeds messages: 5 supersteps = 4
        # value updates.
        ref = numpy_pagerank(graph, 4)
        got = np.array([result.values[v] for v in range(graph.num_vertices)])
        assert np.allclose(got, ref, rtol=1e-12)

    def test_matches_replication_engine(self, graph):
        pregel = PregelEngine(graph, MessagePassingPageRank(),
                              num_nodes=4).run(5)
        rep = run_job(graph, "pagerank", num_nodes=4, max_iterations=4)
        for v in range(graph.num_vertices):
            assert pregel.values[v] == pytest.approx(rep.values[v],
                                                     rel=1e-12)

    def test_node_count_invariant(self, graph):
        a = PregelEngine(graph, MessagePassingPageRank(),
                         num_nodes=2).run(4)
        b = PregelEngine(graph, MessagePassingPageRank(),
                         num_nodes=7).run(4)
        for v in range(graph.num_vertices):
            assert a.values[v] == pytest.approx(b.values[v], rel=1e-12)

    def test_message_volume_tracks_edges(self, graph):
        engine = PregelEngine(graph, MessagePassingPageRank(), num_nodes=4)
        result = engine.run(3)
        # Every non-dangling vertex messages all out-neighbors each
        # superstep.
        per_iter = result.iteration_stats[-1].messages
        assert per_iter == graph.num_edges


class TestCheckpointAndRecovery:
    def test_checkpoint_written_per_interval(self, graph):
        engine = PregelEngine(graph, MessagePassingPageRank(),
                              num_nodes=4, checkpoint_interval=2)
        engine.run(4)
        store = engine.cluster.store
        assert store.exists("hama-ckpt/node0/iter000001")
        assert store.exists("hama-ckpt/node0/iter000003")
        assert not store.exists("hama-ckpt/node0/iter000000")

    def test_snapshot_contains_messages(self, graph):
        """Hama's defining cost: in-flight messages in every snapshot."""
        engine = PregelEngine(graph, MessagePassingPageRank(),
                              num_nodes=4, checkpoint_interval=1)
        engine.run(2)
        payload = engine.cluster.store.read("hama-ckpt/node0/iter000000")
        assert payload["pending"], "snapshot lacks in-flight messages"

    def test_recovery_equivalence(self, graph):
        clean = PregelEngine(graph, MessagePassingPageRank(),
                             num_nodes=4).run(6)
        engine = PregelEngine(graph, MessagePassingPageRank(),
                              num_nodes=4, checkpoint_interval=2)
        engine.schedule_failure(4, 1)
        failed = engine.run(6)
        assert failed.recovered == 1
        for v in range(graph.num_vertices):
            assert failed.values[v] == clean.values[v]

    def test_failure_before_first_checkpoint_restarts(self, graph):
        clean = PregelEngine(graph, MessagePassingPageRank(),
                             num_nodes=4).run(4)
        engine = PregelEngine(graph, MessagePassingPageRank(),
                              num_nodes=4, checkpoint_interval=10)
        engine.schedule_failure(2, 1)
        failed = engine.run(4)
        assert failed.recovered == 1
        for v in range(graph.num_vertices):
            assert failed.values[v] == clean.values[v]

    def test_no_checkpoint_means_fatal(self, graph):
        engine = PregelEngine(graph, MessagePassingPageRank(), num_nodes=4)
        engine.schedule_failure(2, 1)
        with pytest.raises(UnrecoverableFailureError):
            engine.run(4)

    def test_bad_failure_node_rejected(self, graph):
        engine = PregelEngine(graph, MessagePassingPageRank(), num_nodes=4)
        with pytest.raises(EngineError):
            engine.schedule_failure(1, 99)


class TestHamaVsImitatorCkptCost:
    def test_message_snapshots_cost_more(self, graph):
        """Section 2.3: Imitator-CKPT avoids storing messages, making
        its snapshots several times smaller/cheaper than Hama's."""
        hama = PregelEngine(graph, MessagePassingPageRank(),
                            num_nodes=4, checkpoint_interval=1)
        hama.run(4)
        from repro.api import make_engine
        imitator = make_engine(graph, "pagerank", num_nodes=4,
                               max_iterations=4, ft_mode="checkpoint",
                               checkpoint_interval=1)
        imitator.run()
        hama_bytes = hama.ckpt_stats_bytes
        imitator_bytes = imitator.ckpt.stats.bytes_written
        assert hama_bytes > 2 * imitator_bytes


class TestProgramApi:
    def test_abstract_hooks(self):
        program = PregelProgram()
        with pytest.raises(NotImplementedError):
            program.initial_value(0)
        with pytest.raises(NotImplementedError):
            program.compute(0, None, [], 0, 1)
