"""Multiple-machine-failure tests (Section 5.3.1)."""

from __future__ import annotations

import pytest

from repro.api import run_job
from repro.errors import UnrecoverableFailureError
from repro.graph import generators

PARTS = ["hash_edge_cut", "hybrid_cut"]


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(300, alpha=2.0, seed=81, avg_degree=5.0,
                                selfish_frac=0.1)


@pytest.fixture(scope="module")
def baseline(graph):
    result = run_job(graph, "pagerank", num_nodes=6, max_iterations=6)
    return {v: result.values[v] for v in range(graph.num_vertices)}


class TestSimultaneousFailures:
    @pytest.mark.parametrize("partition", PARTS)
    @pytest.mark.parametrize("k", [2, 3])
    def test_rebirth_covers_k_failures(self, graph, baseline, partition, k):
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=6,
                         partition=partition, ft_level=k, num_standby=k,
                         recovery="rebirth",
                         failures=[(3, list(range(k)))])
        assert result.recoveries[0].failed_nodes == tuple(range(k))
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(baseline[v],
                                                     rel=1e-12)

    @pytest.mark.parametrize("k", [2, 3])
    def test_migration_covers_k_failures(self, graph, baseline, k):
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=6,
                         ft_level=k, num_standby=0, recovery="migration",
                         failures=[(3, list(range(k)))])
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(baseline[v],
                                                     rel=1e-12)

    def test_k1_cannot_cover_two_failures(self, graph):
        """Losing master plus only mirror is unrecoverable at K=1."""
        with pytest.raises(UnrecoverableFailureError):
            # Crash half the cluster: some vertex surely loses both
            # copies at ft_level=1.
            run_job(graph, "pagerank", num_nodes=6, max_iterations=6,
                    ft_level=1, num_standby=3, recovery="rebirth",
                    failures=[(3, [0, 1, 2])])

    def test_lowest_id_mirror_leads(self, graph):
        """Only one surviving mirror recovers each crashed master
        (Section 5.3.1): every lost master recovered exactly once."""
        from repro.api import make_engine
        engine = make_engine(graph, "pagerank", num_nodes=6,
                             max_iterations=6, ft_level=2, num_standby=2,
                             recovery="rebirth")
        engine.schedule_failure(3, [0, 1])
        engine.run()
        # Reconstruction would have raised on a duplicate positional
        # insert; additionally every master of nodes 0/1 must be back.
        for node in (0, 1):
            lg = engine.local_graphs[node]
            for slot in lg.iter_masters():
                assert engine.master_node_of[slot.gid] == node

    def test_more_mirrors_more_sync_traffic(self, graph):
        one = run_job(graph, "pagerank", num_nodes=6, max_iterations=4,
                      ft_level=1)
        three = run_job(graph, "pagerank", num_nodes=6, max_iterations=4,
                        ft_level=3)
        assert three.total_messages > one.total_messages
        assert three.total_bytes > one.total_bytes


class TestRepeatedFailures:
    def test_migration_then_migration(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=6,
                         ft_level=2, num_standby=0, recovery="migration",
                         failures=[(2, [0, 1]), (4, [2])])
        assert len(result.recoveries) == 2
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(baseline[v],
                                                     rel=1e-9)

    def test_rebirth_then_rebirth_same_node(self, graph, baseline):
        """The reborn node can crash again and be reborn again."""
        result = run_job(graph, "pagerank", num_nodes=6, max_iterations=6,
                         recovery="rebirth", num_standby=2,
                         failures=[(2, [3]), (4, [3])])
        assert len(result.recoveries) == 2
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]
