"""Differential chaos sweep: every algorithm × partitioning × FT mode.

Each case derives a :class:`FailureSchedule` from a seed, runs the job
failure-free and under chaos, and asserts the converged values are
identical (DESIGN.md P4) while the invariant checker re-verifies the
replication state at every barrier.  72 seeded schedules cover the
4 algorithms × {edge-cut, vertex-cut} × {Rebirth, Migration,
checkpoint-baseline} grid with 3 seeds each.

A failing case prints a one-line reproduction command; the schedule is
fully determined by the printed seed, so
``pytest tests/test_chaos_matrix.py --chaos-seed <seed> -k <case>``
replays the exact same crashes and message faults.
"""

from __future__ import annotations

import pytest

from repro.chaos import FailureSchedule, run_differential
from repro.utils.rng import derive_seed

pytestmark = pytest.mark.chaos

ALGORITHMS = ["pagerank", "sssp", "cc", "cd"]
PARTITIONS = ["hash_edge_cut", "hybrid_cut"]
FT_MODES = [
    pytest.param(("replication", "rebirth"), id="rebirth"),
    pytest.param(("replication", "migration"), id="migration"),
    pytest.param(("checkpoint", "rebirth"), id="checkpoint"),
]
SEED_INDEXES = [0, 1, 2]

#: Crashes per iteration never exceed the run's ft_level: the engine
#: merges same-iteration crashes into one simultaneous-failure event,
#: and more than K of those would *correctly* be unrecoverable.
FT_LEVEL = 2
MAX_ITERATIONS = 8

# Cached failure-free runs, keyed by the job configuration.
_baselines: dict[tuple, dict] = {}


def _job_kwargs(partition: str, mode: str, recovery: str,
                total_crashes: int) -> dict:
    kw = dict(num_nodes=6, ft_mode=mode, recovery=recovery,
              partition=partition, max_iterations=MAX_ITERATIONS,
              ft_level=FT_LEVEL,
              num_standby=0 if recovery == "migration" else total_crashes)
    if mode == "checkpoint":
        kw.update(checkpoint_interval=2, checkpoint_in_memory=True)
    return kw


def _baseline(chaos_graph, algorithm: str, kw: dict) -> dict:
    key = (algorithm,) + tuple(sorted(kw.items()))
    if key not in _baselines:
        from repro.api import run_job
        _baselines[key] = run_job(chaos_graph, algorithm, **kw).values
    return _baselines[key]


@pytest.mark.parametrize("seed_index", SEED_INDEXES)
@pytest.mark.parametrize("ft", FT_MODES)
@pytest.mark.parametrize("partition", PARTITIONS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_chaos_differential(chaos_graph, algorithm, partition, ft,
                            seed_index, chaos_seed_override, request):
    mode, recovery = ft
    if chaos_seed_override is not None:
        seed = chaos_seed_override
    else:
        seed = derive_seed(2014 + seed_index, algorithm, partition,
                           mode, recovery)
    schedule = FailureSchedule.random(
        seed, max_iterations=MAX_ITERATIONS - 2,
        max_concurrent=FT_LEVEL, max_events=2)
    kw = _job_kwargs(partition, mode, recovery, schedule.total_crashes)
    command = (f"PYTHONPATH=src python -m pytest "
               f"tests/test_chaos_matrix.py --chaos-seed {seed} "
               f"-k '{request.node.name}'")
    report = run_differential(
        chaos_graph, algorithm, schedule,
        baseline=_baseline(chaos_graph, algorithm, kw),
        command=command, **kw)
    assert report.fired >= 1, \
        f"schedule injected nothing: {schedule.describe()}\n{command}"
    assert report.invariant_checks >= 1
    assert report.matches, report.summary()


@pytest.mark.parametrize("partition", PARTITIONS)
def test_chaos_double_recovery_rebirth(chaos_graph, partition,
                                       chaos_seed_override):
    """A node crashing twice (regression: stale mirror backups)."""
    seed = chaos_seed_override if chaos_seed_override is not None else 99
    schedule = (FailureSchedule(seed=seed)
                .crash(2, phase="sync", target="most-loaded", count=2)
                .crash(4, phase="after_commit", target="most-loaded"))
    kw = _job_kwargs(partition, "replication", "rebirth",
                     schedule.total_crashes)
    report = run_differential(chaos_graph, "cc", schedule, **kw)
    assert report.recoveries == 2
    assert report.matches, report.summary()


@pytest.mark.parametrize("partition", PARTITIONS)
def test_chaos_double_recovery_migration(chaos_graph, partition,
                                         chaos_seed_override):
    """Two migrations in a row (regression: dead edge-ckpt receivers)."""
    seed = chaos_seed_override if chaos_seed_override is not None else 99
    schedule = (FailureSchedule(seed=seed)
                .crash(0, phase="superstep_start", target="mirror-heaviest",
                       count=2)
                .crash(4, phase="superstep_start", target="random", count=2))
    kw = _job_kwargs(partition, "replication", "migration",
                     schedule.total_crashes)
    report = run_differential(chaos_graph, "pagerank", schedule, **kw)
    assert report.recoveries == 2
    assert report.matches, report.summary()


def test_chaos_crash_during_recovery(chaos_graph, chaos_seed_override):
    """A standby crashing mid-recovery merges into a larger failure."""
    seed = chaos_seed_override if chaos_seed_override is not None else 7
    schedule = (FailureSchedule(seed=seed)
                .crash(2, phase="gather", target="random")
                .crash(2, phase="recovery", target="random"))
    kw = _job_kwargs("hash_edge_cut", "replication", "rebirth",
                     schedule.total_crashes)
    report = run_differential(chaos_graph, "sssp", schedule, **kw)
    assert report.matches, report.summary()
    # Both crashes were handled by a single (merged) recovery pass.
    assert report.recoveries == 1
    assert len(report.chaos_result.recoveries[0].failed_nodes) == 2


# -- vectorized slice --------------------------------------------------
#
# The full matrix above already runs on the vectorized fast path (it is
# the default); this slice makes the cross-path guarantee explicit: a
# *vectorized* run under chaos must converge to the *scalar* path's
# failure-free values — recovery tears down and rebuilds the SoA
# columns (Rebirth, Migration, checkpoint reload), and what comes back
# must be bit-compatible with the per-vertex loop's truth.

VEC_SLICE = [
    ("pagerank", "hash_edge_cut", ("replication", "rebirth")),
    ("pagerank", "hybrid_cut", ("checkpoint", "rebirth")),
    ("sssp", "hybrid_cut", ("replication", "migration")),
    ("sssp", "hash_edge_cut", ("checkpoint", "rebirth")),
    ("cc", "hash_edge_cut", ("replication", "migration")),
    ("degree", "hybrid_cut", ("replication", "rebirth")),
]


@pytest.mark.parametrize("algorithm,partition,ft", [
    pytest.param(*case, id="-".join([case[0], case[1], case[2][1]]))
    for case in VEC_SLICE])
def test_chaos_vectorized_against_scalar_baseline(
        chaos_graph, algorithm, partition, ft, chaos_seed_override,
        request):
    mode, recovery = ft
    if chaos_seed_override is not None:
        seed = chaos_seed_override
    else:
        seed = derive_seed(4102, algorithm, partition, mode, recovery)
    # Degree converges (and halts) after two supersteps; its crashes
    # must land in the first iteration to fire at all.
    schedule = FailureSchedule.random(
        seed,
        max_iterations=1 if algorithm == "degree" else MAX_ITERATIONS - 2,
        max_concurrent=FT_LEVEL, max_events=2)
    kw = _job_kwargs(partition, mode, recovery, schedule.total_crashes)
    kw["vectorized"] = True
    scalar_kw = dict(kw, vectorized=False)
    command = (f"PYTHONPATH=src python -m pytest "
               f"tests/test_chaos_matrix.py --chaos-seed {seed} "
               f"-k '{request.node.name}'")
    report = run_differential(
        chaos_graph, algorithm, schedule,
        baseline=_baseline(chaos_graph, algorithm, scalar_kw),
        command=command, **kw)
    assert report.fired >= 1, \
        f"schedule injected nothing: {schedule.describe()}\n{command}"
    assert report.invariant_checks >= 1
    assert report.matches, report.summary()


@pytest.mark.parametrize("algorithm", ["pagerank", "sssp", "cc", "degree"])
def test_vectorized_baseline_equals_scalar_baseline(chaos_graph,
                                                    algorithm):
    """Failure-free: both paths produce the same values on the chaos
    graph under the chaos-matrix job configuration."""
    kw = _job_kwargs("hash_edge_cut", "replication", "rebirth", 1)
    assert (_baseline(chaos_graph, algorithm, dict(kw, vectorized=True))
            == _baseline(chaos_graph, algorithm,
                         dict(kw, vectorized=False)))
