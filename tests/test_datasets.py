"""Dataset catalog tests: structural fidelity of the stand-ins."""

from __future__ import annotations

import pytest

from repro.datasets import (
    ALPHA_GRAPHS,
    CATALOG,
    CYCLOPS_WORKLOADS,
    POWERLYRA_GRAPHS,
    load,
)
from repro.graph.analysis import degree_stats


class TestCatalogStructure:
    def test_workload_table_matches_paper(self):
        assert CYCLOPS_WORKLOADS == (
            ("pagerank", "gweb"), ("pagerank", "ljournal"),
            ("pagerank", "wiki"), ("als", "syn-gl"), ("cd", "dblp"),
            ("sssp", "roadca"))

    def test_all_referenced_datasets_exist(self):
        for _, dataset in CYCLOPS_WORKLOADS:
            assert dataset in CATALOG
        for dataset in POWERLYRA_GRAPHS + ALPHA_GRAPHS:
            assert dataset in CATALOG

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_load_is_cached(self):
        assert load("gweb") is load("gweb")

    def test_scale_factors_recorded(self):
        for spec in CATALOG.values():
            assert spec.scale >= 20
            assert spec.paper_vertices > spec.scale


class TestStructuralFidelity:
    def test_relative_sizes_preserved(self):
        """|V| and |E| orderings of Table 1 hold for the stand-ins."""
        sizes = {name: degree_stats(load(name))
                 for name in ("gweb", "ljournal", "wiki")}
        assert sizes["gweb"].num_vertices < sizes["ljournal"].num_vertices \
            < sizes["wiki"].num_vertices
        assert sizes["gweb"].num_edges < sizes["ljournal"].num_edges \
            < sizes["wiki"].num_edges

    def test_selfish_profile_matches_fig3(self):
        """GWeb/LJournal have >10% selfish vertices; others ~0."""
        assert degree_stats(load("gweb")).selfish_fraction > 0.10
        assert degree_stats(load("ljournal")).selfish_fraction > 0.10
        for name in ("syn-gl", "dblp", "roadca"):
            assert degree_stats(load(name)).selfish_fraction < 0.01

    def test_alpha_series_monotone_edges(self):
        """Table 4: lower alpha, more edges (heavier tail)."""
        edges = [load(name).num_edges for name in ALPHA_GRAPHS]
        assert edges == sorted(edges)
        assert edges[-1] > 5 * edges[0]

    def test_alpha_series_fixed_vertices(self):
        sizes = {load(name).num_vertices for name in ALPHA_GRAPHS}
        assert len(sizes) == 1

    def test_twitter_heavy_tailed(self):
        stats = degree_stats(load("twitter"))
        assert stats.max_in_degree > 50 * stats.avg_out_degree

    def test_roadca_weighted_lognormal(self):
        graph = load("roadca")
        assert graph.weights.min() > 0
        assert graph.weights.max() / graph.weights.mean() > 3

    def test_syn_gl_bipartite(self):
        graph = load("syn-gl")
        users = 4_400
        for src, dst in zip(graph.sources[:200], graph.targets[:200]):
            assert (src < users) != (dst < users)
