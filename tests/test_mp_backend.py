"""Multiprocessing backend: differential oracle + real-kill recovery.

The cross-backend differential oracle runs the same ``BackendSpec`` on
the deterministic simulator and on real forked worker processes and
asserts *bit-identical* committed values plus equal logical-message
accounting — the CI gate for the pluggable-backend refactor
(DESIGN.md §12).

The recovery tests deliver real ``SIGKILL``s to worker processes and
assert the heartbeat/sentinel detection plus rebirth-from-replicas
path converges to the failure-free values exactly.
"""

from __future__ import annotations

import multiprocessing
import signal

import pytest

from repro.algorithms import PageRank
from repro.errors import UnrecoverableFailureError
from repro.exec.base import BackendError, BackendSpec
from repro.exec.mp import MultiprocessingBackend
from repro.exec.simulator import SimulatorBackend
from repro.graph import generators

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multiprocessing backend requires the fork start method")

WATCHDOG_S = 180


@pytest.fixture(autouse=True)
def watchdog():
    """SIGALRM backstop so a wedged worker round can never hang the
    suite (CI additionally enforces pytest-timeout per test)."""
    def _fire(signum, frame):  # pragma: no cover - only on a hang
        raise TimeoutError(f"mp backend test exceeded {WATCHDOG_S}s")

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.alarm(WATCHDOG_S)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(80, alpha=2.0, seed=7, avg_degree=5.0,
                                name="mp-oracle")


def _assert_equivalent(sim, mp):
    assert mp.values == sim.values
    assert mp.iterations == sim.iterations
    assert mp.halted == sim.halted
    assert mp.total_msgs == sim.total_msgs
    assert mp.total_bytes == sim.total_bytes
    assert mp.total_batches == sim.total_batches
    assert mp.msgs_by_kind == sim.msgs_by_kind
    assert mp.syncs_elided == sim.syncs_elided


class TestDifferentialOracle:
    """Same graph/program/seed => identical outcome on both backends."""

    @pytest.mark.parametrize("partition",
                             ["hash_edge_cut", "random_vertex_cut"])
    @pytest.mark.parametrize("ft_level", [0, 1, 2])
    @pytest.mark.parametrize("algorithm,kwargs", [
        ("pagerank", ()),
        ("sssp", (("source", 0),)),
    ])
    def test_values_and_message_counts_match(self, graph, algorithm,
                                             kwargs, partition, ft_level):
        spec = BackendSpec(
            algorithm=algorithm, num_nodes=4, partition=partition,
            ft_mode="none" if ft_level == 0 else "replication",
            ft_level=ft_level, max_iterations=10,
            algorithm_kwargs=kwargs)
        sim = SimulatorBackend().run(graph, spec)
        with MultiprocessingBackend() as backend:
            mp = backend.run(graph, spec)
        _assert_equivalent(sim, mp)

    @pytest.mark.parametrize("combining", [True, False])
    def test_combining_parity(self, graph, combining):
        """Combining oracle (DESIGN.md §15): both wire formats produce
        identical values and logical accounting on both backends, and
        the combine counters agree with the simulator's exactly."""
        spec = BackendSpec(algorithm="pagerank", num_nodes=4,
                           partition="random_vertex_cut",
                           max_iterations=8, combining=combining)
        sim = SimulatorBackend().run(graph, spec)
        with MultiprocessingBackend() as backend:
            mp = backend.run(graph, spec)
        _assert_equivalent(sim, mp)
        assert mp.combined_records == sim.combined_records
        assert mp.combine_ratio == sim.combine_ratio
        if combining:
            assert mp.combine_ratio > 1.5
        else:
            assert mp.combine_ratio == 1.0
            assert mp.combined_records == 0

    def test_combining_off_matches_on(self, graph):
        """The uncombined wire format changes nothing observable at the
        logical tier, across real process boundaries too."""
        on = BackendSpec(algorithm="sssp", num_nodes=4,
                         partition="random_vertex_cut", max_iterations=8,
                         algorithm_kwargs=(("source", 0),))
        off = BackendSpec(algorithm="sssp", num_nodes=4,
                          partition="random_vertex_cut", max_iterations=8,
                          combining=False,
                          algorithm_kwargs=(("source", 0),))
        with MultiprocessingBackend() as backend:
            mp_on = backend.run(graph, on)
        with MultiprocessingBackend() as backend:
            mp_off = backend.run(graph, off)
        assert mp_on.values == mp_off.values
        assert mp_on.total_msgs == mp_off.total_msgs
        assert mp_on.total_bytes == mp_off.total_bytes
        assert mp_on.msgs_by_kind == mp_off.msgs_by_kind
        assert mp_on.combined_records > 0
        assert mp_off.combined_records == 0

    def test_sync_elision_parity(self, graph):
        """Elision fires on converging SSSP and both backends elide the
        same records (and fewer messages than the elision-off run)."""
        on = BackendSpec(algorithm="sssp", num_nodes=4, max_iterations=12,
                         algorithm_kwargs=(("source", 0),))
        off = BackendSpec(algorithm="sssp", num_nodes=4, max_iterations=12,
                          sync_elision=False,
                          algorithm_kwargs=(("source", 0),))
        sim_on = SimulatorBackend().run(graph, on)
        sim_off = SimulatorBackend().run(graph, off)
        with MultiprocessingBackend() as backend:
            mp_on = backend.run(graph, on)
        with MultiprocessingBackend() as backend:
            mp_off = backend.run(graph, off)
        _assert_equivalent(sim_on, mp_on)
        _assert_equivalent(sim_off, mp_off)
        assert mp_on.syncs_elided > 0
        assert mp_on.total_msgs < mp_off.total_msgs


class TestRealKillRecovery:
    """Real SIGKILL -> sentinel/heartbeat detection -> rebirth."""

    @pytest.mark.parametrize("partition",
                             ["hash_edge_cut", "random_vertex_cut"])
    @pytest.mark.parametrize("seed", [7, 21])
    def test_kill_mid_compute_converges_to_failure_free(self, partition,
                                                        seed):
        g = generators.power_law(80, alpha=2.0, seed=seed, avg_degree=5.0)
        base = BackendSpec(algorithm="sssp", num_nodes=4,
                           partition=partition, ft_level=1,
                           max_iterations=15,
                           algorithm_kwargs=(("source", 0),))
        kill = BackendSpec(algorithm="sssp", num_nodes=4,
                           partition=partition, ft_level=1,
                           max_iterations=15,
                           algorithm_kwargs=(("source", 0),),
                           failures=((1, (2,), "compute"),))
        reference = SimulatorBackend().run(g, base)
        with MultiprocessingBackend() as backend:
            survived = backend.run(g, kill)
        assert survived.failures_recovered == 1
        assert survived.values == reference.values
        assert survived.iterations == reference.iterations

    @pytest.mark.parametrize("phase", ["compute", "after_commit"])
    def test_pagerank_kill_both_phases(self, graph, phase):
        base = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=8)
        kill = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=8,
                           failures=((2, (1,), phase),))
        reference = SimulatorBackend().run(graph, base)
        with MultiprocessingBackend() as backend:
            survived = backend.run(graph, kill)
        assert survived.failures_recovered == 1
        assert survived.values == reference.values

    def test_double_kill_with_ft2(self, graph):
        """Two ranks SIGKILLed in one iteration; ft_level=2 still holds
        a copy of everything on the survivors."""
        base = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=2,
                           max_iterations=8, num_standby=2)
        kill = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=2,
                           max_iterations=8, num_standby=2,
                           failures=((1, (1, 3), "compute"),))
        reference = SimulatorBackend().run(graph, base)
        with MultiprocessingBackend() as backend:
            survived = backend.run(graph, kill)
        assert survived.failures_recovered == 2
        assert survived.values == reference.values

    def test_standby_pool_exhaustion_is_unrecoverable(self, graph):
        spec = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=10, num_standby=1,
                           failures=((1, (2,), "compute"),
                                     (3, (0,), "compute")))
        with MultiprocessingBackend() as backend:
            with pytest.raises(UnrecoverableFailureError,
                               match="standby pool exhausted"):
                backend.run(graph, spec)

    def test_kill_without_replication_is_unrecoverable(self, graph):
        spec = BackendSpec(algorithm="pagerank", num_nodes=4,
                           ft_mode="none", ft_level=0, max_iterations=10,
                           failures=((1, (2,), "compute"),))
        with MultiprocessingBackend() as backend:
            with pytest.raises(UnrecoverableFailureError):
                backend.run(graph, spec)


class TestWorkerHygiene:
    """Child processes are reaped on every exit path."""

    def test_no_children_leak_after_clean_run(self, graph):
        spec = BackendSpec(algorithm="pagerank", num_nodes=4,
                           max_iterations=4)
        with MultiprocessingBackend() as backend:
            backend.run(graph, spec)
            assert not multiprocessing.active_children()

    def test_no_children_leak_after_failed_run(self, graph):
        """A run that dies with an unrecoverable failure must still
        reap every worker (the context manager close is also a no-op
        by then — run()'s finally already cleaned up)."""
        spec = BackendSpec(algorithm="pagerank", num_nodes=4,
                           ft_mode="none", ft_level=0, max_iterations=10,
                           failures=((1, (2,), "compute"),))
        with MultiprocessingBackend() as backend:
            with pytest.raises(UnrecoverableFailureError):
                backend.run(graph, spec)
        assert not multiprocessing.active_children()

    def test_close_is_idempotent(self, graph):
        backend = MultiprocessingBackend()
        backend.run(graph, BackendSpec(algorithm="pagerank", num_nodes=2,
                                       max_iterations=2))
        backend.close()
        backend.close()
        assert not multiprocessing.active_children()


class TestSpecValidation:
    def test_rejects_edge_mutating_programs(self, graph, monkeypatch):
        monkeypatch.setattr(PageRank, "mutates_edges", True)
        spec = BackendSpec(algorithm="pagerank", num_nodes=2,
                           max_iterations=2)
        with MultiprocessingBackend() as backend:
            with pytest.raises(BackendError, match="edge-mutating"):
                backend.run(graph, spec)
        assert not multiprocessing.active_children()

    def test_rejects_unbatched_syncs(self, graph):
        spec = BackendSpec(algorithm="pagerank", num_nodes=2,
                           max_iterations=2, batch_syncs=False)
        with MultiprocessingBackend() as backend:
            with pytest.raises(BackendError, match="batches syncs"):
                backend.run(graph, spec)

    def test_rejects_non_rebirth_recovery(self, graph):
        spec = BackendSpec(algorithm="pagerank", num_nodes=2,
                           max_iterations=2, recovery="migration")
        with MultiprocessingBackend() as backend:
            with pytest.raises(BackendError, match="rebirth"):
                backend.run(graph, spec)

    def test_rejects_failure_beyond_horizon(self, graph):
        spec = BackendSpec(algorithm="pagerank", num_nodes=2,
                           max_iterations=2,
                           failures=((5, (0,), "compute"),))
        with MultiprocessingBackend() as backend:
            with pytest.raises(BackendError, match="beyond"):
                backend.run(graph, spec)


class TestCommitRoundKill:
    """Satellite: a worker dying inside the commit round must either be
    absorbed by the bounded abort-and-redo retry (deaths before
    ``finalize_commit``) or surface as a structured ``BackendError``
    (deaths inside the finalize round) — never a hang and never silent
    divergence."""

    def test_commit_kill_retries_bit_identical(self, graph):
        base = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=8)
        kill = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=8,
                           failures=((3, (1,), "commit"),))
        reference = SimulatorBackend().run(graph, base)
        with MultiprocessingBackend() as backend:
            survived = backend.run(graph, kill)
        assert survived.failures_recovered == 1
        assert survived.values == reference.values
        assert survived.iterations == reference.iterations

    def test_retry_budget_exhaustion_is_structured(self, graph):
        kill = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=8,
                           failures=((3, (1,), "commit"),))
        with MultiprocessingBackend() as backend:
            backend.max_iteration_retries = 0
            with pytest.raises(BackendError, match="retr"):
                backend.run(graph, kill)
        assert not multiprocessing.active_children()


class TestElasticMembership:
    """Joins, drains and flaps on the real-process backend."""

    def test_flap_is_bit_identical(self, graph):
        """SIGSTOP/SIGCONT below the death budget: the stalled worker
        is never declared failed and values match a flap-free run."""
        base = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=8)
        flap = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=8,
                           membership=((3, "flap", 2),))
        reference = SimulatorBackend().run(graph, base)
        with MultiprocessingBackend() as backend:
            flapped = backend.run(graph, flap)
        assert flapped.values == reference.values
        assert flapped.failures_recovered == 0
        assert flapped.extra["membership"]["flaps"] == 1

    def test_join_and_drain_bit_identical_across_backends(self, graph):
        spec = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=10, num_standby=1,
                           membership=((2, "join", None),
                                       (5, "drain", 1)))
        sim = SimulatorBackend().run(graph, spec)
        with MultiprocessingBackend() as backend:
            mp = backend.run(graph, spec)
        assert mp.values == sim.values
        memb = mp.extra["membership"]
        assert memb["joins"] == 1
        assert memb["drains"] == 1
        assert memb["reshapes"] == 2
        assert memb["moves"] > 0

    def test_kill_after_reshape_recovers(self, graph):
        """A SIGKILL lands after a join reshaped the cluster: the
        respawned topology must still recover bit-identically."""
        base = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                           max_iterations=10, num_standby=2)
        churn = BackendSpec(algorithm="pagerank", num_nodes=4, ft_level=1,
                            max_iterations=10, num_standby=2,
                            membership=((2, "join", None),),
                            failures=((5, (1,), "compute"),))
        reference = SimulatorBackend().run(graph, base)
        with MultiprocessingBackend() as backend:
            survived = backend.run(graph, churn)
        assert survived.failures_recovered == 1
        assert survived.values == reference.values
        memb = survived.extra["membership"]
        assert memb["leader"] >= 0
        assert memb["leader_term"] >= 1

    def test_membership_requires_replication(self, graph):
        spec = BackendSpec(algorithm="pagerank", num_nodes=4,
                           ft_mode="none", max_iterations=6,
                           membership=((2, "join", None),))
        with MultiprocessingBackend() as backend:
            with pytest.raises(BackendError, match="replication"):
                backend.run(graph, spec)
