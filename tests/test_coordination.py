"""Coordination service tests: barriers, membership, shared state."""

from __future__ import annotations

import pytest

from repro.cluster.coordination import CoordinationService
from repro.cluster.heartbeat import FailureDetector
from repro.cluster.node import Node, NodeState
from repro.errors import UnknownNodeError


class TestMembership:
    def test_register_deregister(self):
        svc = CoordinationService()
        svc.register(0)
        svc.register(1)
        assert svc.members == frozenset({0, 1})
        svc.deregister(0)
        assert svc.members == frozenset({1})

    def test_deregister_unknown_raises(self):
        svc = CoordinationService()
        with pytest.raises(UnknownNodeError):
            svc.deregister(7)


class TestSharedState:
    def test_put_get_delete(self):
        svc = CoordinationService()
        svc.put("iteration", 5)
        assert svc.get("iteration") == 5
        svc.delete("iteration")
        assert svc.get("iteration", -1) == -1


class TestBarrier:
    def test_normal_barrier(self):
        svc = CoordinationService()
        for n in range(3):
            svc.register(n)
        result = svc.barrier(set())
        assert not result.is_fail()
        assert result.epoch == 1

    def test_failure_reported_once(self):
        svc = CoordinationService()
        for n in range(3):
            svc.register(n)
        first = svc.barrier({1})
        assert first.failed == (1,)
        assert first.is_fail()
        second = svc.barrier({1})
        assert not second.is_fail()
        assert svc.members == frozenset({0, 2})

    def test_epoch_monotonic(self):
        svc = CoordinationService()
        svc.register(0)
        epochs = [svc.barrier(set()).epoch for _ in range(4)]
        assert epochs == [1, 2, 3, 4]

    def test_rejoin_after_failure(self):
        svc = CoordinationService()
        svc.register(0)
        svc.register(1)
        svc.barrier({1})
        svc.register(1)  # standby took over logical id 1
        assert 1 in svc.members
        result = svc.barrier(set())
        assert not result.is_fail()

    def test_multiple_simultaneous_failures(self):
        svc = CoordinationService()
        for n in range(5):
            svc.register(n)
        result = svc.barrier({3, 1})
        assert result.failed == (1, 3)


class TestFailureDetector:
    def make_cluster(self, n=3):
        return {i: Node(i) for i in range(n)}

    def test_poll_is_idempotent(self):
        nodes = self.make_cluster()
        det = FailureDetector(nodes)
        nodes[1].crash()
        assert det.poll() == {1}
        # Repeated polls report the same steady state, no side effects.
        assert det.poll() == {1}
        assert det.newly_failed() == {1}
        assert det.newly_failed() == set()

    def test_poll_idempotent_across_recovery(self):
        """A re-heartbeating logical id clears the failed record.

        After Rebirth a standby takes over the crashed node's logical
        id and starts heartbeating.  The detector must clear its
        known-failed record *without* an explicit ``forget``, so that a
        second crash of the same id is reported as a fresh failure.
        """
        nodes = self.make_cluster()
        det = FailureDetector(nodes)
        nodes[2].crash()
        assert det.newly_failed() == {2}
        # Rebirth: logical id 2 is alive again (new incarnation).
        nodes[2] = Node(2, state=NodeState.STANDBY)
        nodes[2].activate()
        det._nodes = nodes  # the engine re-points the node table
        assert det.poll() == set()
        # Second crash of the same logical id is fresh, not stale.
        nodes[2].crash()
        assert det.newly_failed() == {2}

    def test_standby_crash_not_reported_to_members(self):
        nodes = self.make_cluster()
        nodes[3] = Node(3, state=NodeState.STANDBY)
        det = FailureDetector(nodes, members=lambda: {0, 1, 2})
        nodes[3].crash()
        assert det.poll() == set()
        assert det.newly_failed() == set()

    def test_detection_delay(self):
        det = FailureDetector(self.make_cluster(), interval_s=0.5,
                              misses=14)
        assert det.detection_delay_s == pytest.approx(7.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FailureDetector({}, interval_s=0)
        with pytest.raises(ValueError):
            FailureDetector({}, misses=0)
