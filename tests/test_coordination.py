"""Coordination service tests: barriers, membership, shared state."""

from __future__ import annotations

import pytest

from repro.cluster.coordination import CoordinationService
from repro.errors import UnknownNodeError


class TestMembership:
    def test_register_deregister(self):
        svc = CoordinationService()
        svc.register(0)
        svc.register(1)
        assert svc.members == frozenset({0, 1})
        svc.deregister(0)
        assert svc.members == frozenset({1})

    def test_deregister_unknown_raises(self):
        svc = CoordinationService()
        with pytest.raises(UnknownNodeError):
            svc.deregister(7)


class TestSharedState:
    def test_put_get_delete(self):
        svc = CoordinationService()
        svc.put("iteration", 5)
        assert svc.get("iteration") == 5
        svc.delete("iteration")
        assert svc.get("iteration", -1) == -1


class TestBarrier:
    def test_normal_barrier(self):
        svc = CoordinationService()
        for n in range(3):
            svc.register(n)
        result = svc.barrier(set())
        assert not result.is_fail()
        assert result.epoch == 1

    def test_failure_reported_once(self):
        svc = CoordinationService()
        for n in range(3):
            svc.register(n)
        first = svc.barrier({1})
        assert first.failed == (1,)
        assert first.is_fail()
        second = svc.barrier({1})
        assert not second.is_fail()
        assert svc.members == frozenset({0, 2})

    def test_epoch_monotonic(self):
        svc = CoordinationService()
        svc.register(0)
        epochs = [svc.barrier(set()).epoch for _ in range(4)]
        assert epochs == [1, 2, 3, 4]

    def test_rejoin_after_failure(self):
        svc = CoordinationService()
        svc.register(0)
        svc.register(1)
        svc.barrier({1})
        svc.register(1)  # standby took over logical id 1
        assert 1 in svc.members
        result = svc.barrier(set())
        assert not result.is_fail()

    def test_multiple_simultaneous_failures(self):
        svc = CoordinationService()
        for n in range(5):
            svc.register(n)
        result = svc.barrier({3, 1})
        assert result.failed == (1, 3)
