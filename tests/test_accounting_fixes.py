"""Regression tests for the network/barrier accounting bug sweep.

Four bugs, one test class each:

* the barrier's activation exchange consumed *every* inbox message as
  an activation, payload semantics be damned;
* a ``duplicate`` chaos verdict enqueued the *same* ``Message`` object
  twice, so mutating one delivery corrupted the other;
* ``purge_from`` never deducted purged traffic from the step counters,
  charging the rolled-back barrier comm time for exchanges that never
  completed;
* ``deliver``/``purge_inbox`` left empty defaultdict keys behind for
  every dead node id, an unbounded leak across rebirth cycles.
"""

from __future__ import annotations

import pytest

from repro.api import make_engine
from repro.cluster.network import Message, MessageKind, Network
from repro.costmodel import DEFAULT_COST_MODEL, pairwise_comm_time
from repro.engine.messages import SyncBatch
from repro.errors import EngineError
from repro.graph import generators
from repro.utils.sizing import BYTES_PER_MSG_HEADER


def make_net(alive=None):
    alive = set(alive) if alive is not None else {0, 1, 2}
    net = Network(is_alive=lambda n: n in alive)
    net.begin_step()
    return net


class TestActivationDrainFilter:
    def _engine_at_activation_iteration(self):
        """Drive a vertex-cut SSSP run up to an iteration that sends
        remote activation signals (the frontier crosses nodes)."""
        graph = generators.chain(32, weighted=True, seed=3)
        engine = make_engine(graph, "sssp", num_nodes=4,
                             partition="random_vertex_cut",
                             max_iterations=8,
                             algorithm_kwargs={"source": 0})
        for _ in range(2):
            assert engine._run_superstep() is None
            engine._commit_barrier()
            engine.iteration += 1
        assert engine._run_superstep() is None
        return engine

    def test_stray_message_in_activation_exchange_raises(self):
        engine = self._engine_at_activation_iteration()
        alive = engine._alive()
        net = engine.cluster.network
        engine._apply_received_syncs(alive, net)
        engine._commit_edge_mutations()
        # A message surviving past the sync drain is a sequencing bug;
        # the old drain would have silently flipped a next_active flag.
        net.send(Message(MessageKind.CONTROL, alive[0], alive[1],
                         ("stale", 0), 4))
        with pytest.raises(EngineError, match="activation exchange"):
            engine._commit_values(alive, net)

    def test_clean_activation_exchange_commits(self):
        engine = self._engine_at_activation_iteration()
        alive = engine._alive()
        net = engine.cluster.network
        engine._apply_received_syncs(alive, net)
        engine._commit_edge_mutations()
        total_active = engine._commit_values(alive, net)
        assert total_active > 0
        # Every inbox fully drained: no messages leak past the barrier.
        assert net.queued_node_ids() == set()


class TestDuplicateIndependence:
    def test_duplicate_delivers_independent_copies(self):
        net = make_net()
        net.fault_injector = lambda msg: "duplicate"
        net.send(Message(MessageKind.SYNC, 0, 1, {"edges": [1, 2]}, 8))
        inbox = net.deliver(1)
        assert len(inbox) == 2
        assert inbox[0].payload is not inbox[1].payload
        # A consumer mutating one copy must not corrupt the other.
        inbox[0].payload["edges"].append(99)
        assert inbox[1].payload["edges"] == [1, 2]

    def test_duplicate_batch_uses_payload_clone(self):
        """Columnar batches clone via ``payload.clone()`` — cheaper than
        ``copy.deepcopy`` and still an independent copy per delivery."""
        net = make_net()
        net.fault_injector = lambda msg: "duplicate"
        batch = SyncBatch()
        batch.append(7, 0.25, 8, activates=True)
        batch.append(9, 0.5, 8, activates=False)
        net.send(Message(MessageKind.SYNC, 0, 1, batch, batch.nbytes()))
        inbox = net.deliver(1)
        assert len(inbox) == 2
        assert inbox[0].payload is not inbox[1].payload
        assert inbox[0].payload.gids is not inbox[1].payload.gids
        inbox[0].payload.values[0] = -1.0
        inbox[0].payload.gids.append(99)
        assert inbox[1].payload.values == [0.25, 0.5]
        assert inbox[1].payload.gids == [7, 9]
        assert inbox[1].payload.nbytes() == batch.nbytes()

    def test_both_copies_fully_counted(self):
        net = make_net()
        net.fault_injector = lambda msg: "duplicate"
        net.send(Message(MessageKind.SYNC, 0, 1, "x", 8))
        wire = 8 + BYTES_PER_MSG_HEADER
        assert net.chaos_duplicated_msgs == 1
        assert net.totals.total_msgs == 2
        assert net.totals.total_bytes == 2 * wire
        assert net.step_msgs_sent_by(0) == 2
        assert net.step_bytes_sent_by(0) == 2 * wire


class TestPurgeStepDeduction:
    def test_purge_from_deducts_step_counters(self):
        net = make_net()
        net.send(Message(MessageKind.SYNC, 0, 1, "a", 40))
        net.send(Message(MessageKind.SYNC, 0, 2, "b", 24))
        net.send(Message(MessageKind.SYNC, 2, 1, "c", 16))
        assert net.purge_from(0) == 2
        assert net.step_bytes_sent_by(0) == 0
        assert net.step_msgs_sent_by(0) == 0
        # Survivor traffic untouched, lifetime totals keep everything.
        assert net.step_msgs_sent_by(2) == 1
        assert net.totals.total_msgs == 3
        assert net.purged_msgs == 2

    def test_self_sends_never_deducted(self):
        net = make_net()
        net.send(Message(MessageKind.SYNC, 0, 0, "self", 8))
        net.send(Message(MessageKind.SYNC, 0, 1, "out", 8))
        assert net.purge_from(0) == 2
        # The self-send was never step-counted; no underflow.
        assert net.step_bytes_sent_by(0) == 0
        assert net.step_msgs_sent_by(0) == 0

    def test_purge_restores_cost_model_baseline(self):
        """The rolled-back barrier must charge exactly the surviving
        traffic's communication time — as if the crashed node had
        never sent its batch."""
        model = DEFAULT_COST_MODEL
        baseline = make_net()
        baseline.send(Message(MessageKind.SYNC, 2, 1, "c" * 16, 16))
        expected = pairwise_comm_time(model, baseline.step_bytes,
                                      baseline.step_msgs, 1)
        net = make_net()
        net.send(Message(MessageKind.SYNC, 0, 1, "a" * 4096, 4096))
        net.send(Message(MessageKind.SYNC, 2, 1, "c" * 16, 16))
        inflated = pairwise_comm_time(model, net.step_bytes,
                                      net.step_msgs, 1)
        net.purge_from(0)
        after = pairwise_comm_time(model, net.step_bytes, net.step_msgs, 1)
        assert inflated > expected
        assert after == pytest.approx(expected)


class TestQueueKeyBoundedness:
    def test_deliver_removes_queue_keys(self):
        net = make_net()
        net.send(Message(MessageKind.SYNC, 0, 1, "x", 8))
        net.deliver(1)
        assert net.queued_node_ids() == set()

    def test_purge_inbox_removes_keys(self):
        net = make_net()
        net.fault_injector = lambda msg: "delay"
        net.send(Message(MessageKind.SYNC, 0, 1, "late", 8))
        net.fault_injector = None
        net.send(Message(MessageKind.SYNC, 2, 1, "x", 8))
        assert net.purge_inbox(1) == 2
        assert net.queued_node_ids() == set()
        assert net.purged_msgs == 2

    def test_purge_from_removes_emptied_keys(self):
        net = make_net()
        net.send(Message(MessageKind.SYNC, 0, 1, "x", 8))
        net.purge_from(0)
        assert net.queued_node_ids() == set()

    def test_no_key_leak_across_rebirth_cycles(self):
        """Repeated crash/rebirth cycles must not grow the queue maps:
        every dead incarnation's entries are removed outright."""
        graph = generators.power_law(120, alpha=2.0, seed=19,
                                     avg_degree=5.0)
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             max_iterations=8, num_standby=4)
        engine.schedule_failure(1, [1])
        engine.schedule_failure(3, [2], "after_commit")
        engine.schedule_failure(5, [0])
        result = engine.run()
        assert len(result.recoveries) == 3
        net = engine.cluster.network
        assert net.queued_node_ids() == set()
        assert not net._queues and not net._delayed
