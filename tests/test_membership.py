"""Elastic membership + adaptive FT control plane (DESIGN.md §14).

Unit coverage for the membership package (seeded leader election, the
adaptive replication-floor policy, the cluster membership state
machine, the ``move_master`` transfer primitive) plus the end-to-end
properties the tentpole claims:

* elastic runs (joins, drains, flaps) are **bit-identical** to static
  runs — membership is value-neutral;
* the adaptive floor observably rises on failures and relaxes after
  quiet;
* the serve router never routes a read to a joining, draining or
  retired node;
* the full chaos schedule of the issue — join 2, drain 1, flap 1,
  kill the elected recovery leader mid-recovery — passes the
  differential oracle with every invariant sweep clean.
"""

from __future__ import annotations

import pytest

from repro.api import make_engine, run_job
from repro.chaos import (
    FailureSchedule,
    InvariantViolation,
    MembershipInvariant,
    run_differential,
)
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, FaultToleranceConfig, FTMode
from repro.errors import ClusterError, ConfigError
from repro.exec.base import BackendSpec
from repro.exec.simulator import SimulatorBackend
from repro.graph import generators
from repro.membership.election import elect_leader
from repro.membership.policy import FtPolicy, FtPolicyConfig
from repro.membership.rebalance import move_master
from repro.serve.server import ReadServer, ServePump, WorkloadCursor
from repro.serve.workload import OpenLoopWorkload


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(150, alpha=2.1, seed=3, name="memb-pl")


# ---------------------------------------------------------------------------
# Leader election
# ---------------------------------------------------------------------------


class TestLeaderElection:
    def test_deterministic_per_term(self):
        alive = [0, 2, 3, 5]
        for term in range(6):
            a = elect_leader(alive, seed=11, term=term)
            b = elect_leader(list(reversed(alive)), seed=11, term=term)
            assert a == b
            assert a in alive

    def test_terms_spread_leadership(self):
        alive = list(range(8))
        leaders = {elect_leader(alive, seed=7, term=t) for t in range(32)}
        assert len(leaders) > 1

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            elect_leader([], seed=0, term=1)


# ---------------------------------------------------------------------------
# Adaptive floor policy
# ---------------------------------------------------------------------------


def _policy(base=1, lo=1, hi=3, **cfg):
    ft = FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=base,
                              ft_level_min=lo, ft_level_max=hi)
    return FtPolicy(ft, FtPolicyConfig(**cfg) if cfg else None)


class TestFtPolicy:
    def test_failure_raises_target_capped(self):
        policy = _policy(base=1, lo=1, hi=3)
        policy.on_failure(2, count=1)
        assert policy.floor_target == 2
        policy.on_failure(3, count=5)
        assert policy.floor_target == 3  # capped at ft_level_max

    def test_flap_raises_at_most_one_above_base(self):
        policy = _policy(base=1, lo=1, hi=3)
        for it in range(4):
            policy.on_flap(it)
        assert policy.floor_target == 2
        # A flap never lowers an already-raised target.
        policy.on_failure(5, count=2)
        policy.on_flap(6)
        assert policy.floor_target == 3

    def test_relax_after_cooldown(self):
        policy = _policy(base=1, lo=1, hi=3, cooldown=2)
        policy.on_failure(0, count=2)
        assert policy.floor_target == 3
        policy.on_barrier(1)
        assert policy.floor_target == 3  # still inside the window
        policy.on_barrier(2)
        assert policy.floor_target == 2  # one step per cooldown
        policy.on_barrier(3)
        assert policy.floor_target == 2  # quiet clock restarted
        policy.on_barrier(4)
        assert policy.floor_target == 1
        kinds = [kind for _it, kind, _f in policy.events]
        assert kinds == ["failure", "relax", "relax"]

    def test_enforced_is_min_of_target_and_achieved(self):
        policy = _policy()
        policy.on_failure(0, count=2)
        policy.floor_achieved = 1
        assert policy.floor_enforced == 1
        policy.floor_achieved = 3
        assert policy.floor_enforced == policy.floor_target

    def test_backoff_and_breaker(self):
        policy = _policy(cooldown=6, repair_batch=8,
                         breaker_threshold=2, breaker_quiet=3)
        policy.on_failure(0, count=2)
        assert policy.repair_allowance() == 8
        policy.repair_result(8, 0)  # futile round 1 -> backoff 1
        assert policy.repair_allowance() == 0
        assert policy.repair_allowance() == 8
        policy.repair_result(8, 0)  # futile round 2 -> breaker opens
        assert policy.breaker_open
        # Open breaker: quiet barriers, then a quarter-batch probe.
        probes = [policy.repair_allowance() for _ in range(3)]
        assert probes[:2] == [0, 0] and probes[2] == 2
        # Full progress closes the breaker and resets the ladder.
        policy.repair_result(2, 2)
        assert not policy.breaker_open
        assert policy.repair_allowance() == 8


# ---------------------------------------------------------------------------
# Cluster membership state machine
# ---------------------------------------------------------------------------


class TestClusterMembership:
    def _cluster(self, n=4, standby=1):
        return Cluster(ClusterConfig(num_nodes=n, num_standby=standby,
                                     seed=5))

    def test_join_lifecycle(self):
        cluster = self._cluster()
        epoch0 = cluster.membership_epoch
        nid = cluster.join_node()
        assert nid > max(range(4))  # above workers and standby pool
        assert cluster.membership_epoch == epoch0 + 1
        assert cluster.expected_workers() == 5
        assert not cluster.read_eligible(nid)  # state still arriving
        assert cluster.placement_eligible(nid)  # may receive state
        cluster.finish_join(nid)
        assert cluster.read_eligible(nid)
        assert cluster.membership_epoch == epoch0 + 2

    def test_drain_lifecycle(self):
        cluster = self._cluster()
        epoch0 = cluster.membership_epoch
        cluster.begin_drain(1)
        assert not cluster.read_eligible(1)
        assert not cluster.placement_eligible(1)
        assert cluster.expected_workers() == 4  # not retired yet
        cluster.retire_node(1)
        assert cluster.expected_workers() == 3
        assert not cluster.read_eligible(1)
        assert cluster.membership_epoch > epoch0

    def test_abort_transition_restores_eligibility(self):
        cluster = self._cluster()
        cluster.begin_drain(2)
        cluster.abort_transition(2)
        assert cluster.read_eligible(2)
        assert cluster.placement_eligible(2)


# ---------------------------------------------------------------------------
# move_master
# ---------------------------------------------------------------------------


class TestMoveMaster:
    def _engine(self, graph):
        return make_engine(graph, "pagerank", num_nodes=5, ft_level=1,
                           max_iterations=10, seed=11, vectorized=False)

    def test_preserves_in_edge_order_and_copies(self, graph):
        engine = self._engine(graph)
        # Pick a vertex with in-edges and move its master onto a node
        # that already hosts a replica: the copy count must then stay
        # constant (src is demoted in place to a replica seat).
        gid = max(range(graph.num_vertices),
                  key=lambda g: graph.in_degree(g))
        src = engine.master_node_of[gid]
        src_lg = engine.local_graphs[src]
        slot = src_lg.slot_of(gid)
        order_before = [(src_lg.slots[p].gid, w) for p, w in slot.in_edges]
        copies_before = 1 + len(slot.meta.replica_positions)
        mirrors_before = len(slot.meta.mirror_nodes)
        dst = min(slot.meta.replica_positions)

        move_master(engine, gid, dst)

        assert engine.master_node_of[gid] == dst
        dst_lg = engine.local_graphs[dst]
        moved = dst_lg.slot_of(gid)
        assert moved.is_master
        order_after = [(dst_lg.slots[p].gid, w) for p, w in moved.in_edges]
        assert order_after == order_before
        assert 1 + len(moved.meta.replica_positions) == copies_before
        assert len(moved.meta.mirror_nodes) == mirrors_before
        # The outgoing master was demoted in place, not deleted.
        assert not src_lg.slot_of(gid).is_master
        assert src in moved.meta.replica_positions

    def test_move_is_value_neutral(self, graph):
        baseline = run_job(graph, "pagerank", num_nodes=5, ft_level=1,
                           max_iterations=10, seed=11).values
        engine = self._engine(graph)
        for gid in range(0, graph.num_vertices, 17):
            src = engine.master_node_of[gid]
            dst = next(n for n in sorted(engine.local_graphs) if n != src)
            move_master(engine, gid, dst)
        # Drain the transfer-accounting traffic, as the membership
        # manager does after each barrier's batch of moves.
        for node in engine.local_graphs:
            engine.cluster.network.deliver(node)
        assert engine.run().values == baseline


# ---------------------------------------------------------------------------
# Elastic runs on the simulator
# ---------------------------------------------------------------------------


class TestElasticRuns:
    def test_join_drain_flap_bit_identical(self, graph):
        baseline = run_job(graph, "pagerank", num_nodes=6, ft_level=1,
                           max_iterations=12, seed=11)
        elastic = run_job(graph, "pagerank", num_nodes=6, ft_level=1,
                          max_iterations=12, seed=11,
                          membership=[(2, "join", None), (4, "flap", 2),
                                      (5, "drain", 1)])
        assert elastic.values == baseline.values
        assert elastic.membership["joins"] == 1
        assert elastic.membership["flaps"] == 1
        assert elastic.membership["epoch"] >= 2
        assert elastic.membership["moves"] > 0

    def test_drain_retires_node_and_removes_state(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=6, ft_level=1,
                             max_iterations=14, seed=11,
                             membership=[(1, "drain", 2)])
        result = engine.run()
        assert result.membership["drains"] == 1
        assert 2 not in engine.local_graphs
        assert not engine.cluster.read_eligible(2)
        assert all(node != 2 for node in engine.master_node_of)

    def test_membership_requires_replication(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4,
                             ft_mode="none", max_iterations=4, seed=1)
        with pytest.raises(ConfigError):
            engine.request_join()

    def test_adaptive_floor_rises_and_relaxes(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=6, ft_level=1,
                             ft_level_min=1, ft_level_max=3,
                             max_iterations=16, seed=11, num_standby=2)
        engine.schedule_failure(3, [2], "compute")
        result = engine.run()
        events = result.membership["floor_events"]
        kinds = [kind for _it, kind, _f in events]
        assert "failure" in kinds
        assert "relax" in kinds  # quiet tail relaxed the target
        rise = next(f for _it, kind, f in events if kind == "failure")
        assert rise == 2
        assert events[-1][2] == 1  # back at the resting floor
        assert result.values == run_job(
            graph, "pagerank", num_nodes=6, ft_level=1,
            max_iterations=16, seed=11).values

    def test_heartbeat_knobs_reach_detector(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4, ft_level=1,
                             max_iterations=4, seed=1,
                             heartbeat_interval_s=0.25,
                             heartbeat_misses=40)
        assert engine.cluster.detector.interval_s == 0.25
        assert engine.cluster.detector.misses == 40

    def test_suspicion_gauges_published(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4, ft_level=1,
                             max_iterations=4, seed=1)
        engine.run()
        for nid in range(4):
            assert engine.metrics.gauge(
                f"ft.suspicion.node.{nid}") is not None


# ---------------------------------------------------------------------------
# MembershipInvariant
# ---------------------------------------------------------------------------


class TestMembershipInvariant:
    def test_clean_engine_passes(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4, ft_level=1,
                             max_iterations=4, seed=1)
        MembershipInvariant().check_all(engine)

    def test_detects_copy_on_retired_node(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=5, ft_level=1,
                             max_iterations=14, seed=11,
                             membership=[(1, "drain", 1)])
        result = engine.run()
        assert result.membership["drains"] == 1
        # Corrupt: record a replica position on the retired node.
        lg = engine.local_graphs[engine.master_node_of[0]]
        lg.slot_of(0).meta.replica_positions[1] = 0
        with pytest.raises(InvariantViolation):
            MembershipInvariant().check_all(engine)


# ---------------------------------------------------------------------------
# Serve routing under membership changes
# ---------------------------------------------------------------------------


class TestServeRouting:
    def test_no_read_from_draining_or_joining_node(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=5, ft_level=1,
                             max_iterations=14, seed=11,
                             membership=[(2, "join", None),
                                         (4, "drain", 1)])
        workload = OpenLoopWorkload(graph.num_vertices, 500, qps=50.0,
                                    seed=7)
        server = ReadServer(engine, seed=5)
        pump = ServePump(server, WorkloadCursor(workload, 14))
        engine.attach_serve(pump)

        cluster = engine.cluster
        violations = []
        original = server.router.route

        def checked(gid, dead=frozenset(), force_degraded=False):
            node, degraded = original(gid, dead, force_degraded)
            ineligible = cluster._transitioning | cluster._retired
            if node >= 0 and node in ineligible:
                violations.append((gid, node))
            return node, degraded

        server.router.route = checked
        result = engine.run()
        pump.finish()
        assert violations == []
        assert server.stats.misses == 0
        assert result.membership["joins"] == 1

    def test_router_epoch_cache_invalidation(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4, ft_level=1,
                             max_iterations=4, seed=1)
        server = ReadServer(engine, seed=0)
        assert server.router.membership_ineligible() == frozenset()
        engine.cluster.begin_drain(1)
        assert 1 in server.router.membership_ineligible()
        engine.cluster.abort_transition(1)
        assert server.router.membership_ineligible() == frozenset()


# ---------------------------------------------------------------------------
# The issue's acceptance schedule, under the differential oracle
# ---------------------------------------------------------------------------


class TestAcceptanceSchedule:
    def test_chaos_with_leader_kill_matches_failure_free(self, graph):
        schedule = (FailureSchedule(seed=23)
                    .join(2, count=2)
                    .flap(4, target=2)
                    .drain(6, target="most-loaded")
                    .crash(8, phase="gather", target="random")
                    .crash(8, phase="recovery", target="leader"))
        report = run_differential(
            graph, "pagerank", schedule,
            num_nodes=6, ft_level=1, ft_level_min=1, ft_level_max=3,
            max_iterations=14, seed=11, num_standby=3)
        assert report.matches, report.summary()
        assert report.invariant_checks > 0
        membership = report.chaos_result.membership
        assert membership["joins"] == 2
        assert membership["flaps"] >= 1
        # The leader was killed mid-recovery and a new term started.
        assert membership["leader_term"] >= 2

    def test_cross_backend_membership_spec(self, graph):
        spec = BackendSpec(
            algorithm="pagerank", num_nodes=5, ft_level=1,
            ft_level_min=1, ft_level_max=3, max_iterations=12, seed=11,
            num_standby=2,
            membership=((2, "join", None), (4, "flap", 1),
                        (6, "drain", 2)),
            failures=((8, (0,), "after_commit"),))
        sim = SimulatorBackend().run(graph, spec)
        mp_backend = pytest.importorskip("repro.exec.mp")
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        with mp_backend.MultiprocessingBackend() as backend:
            mp = backend.run(graph, spec)
        assert mp.values == sim.values
        assert mp.extra["membership"]["joins"] == 1
        assert mp.extra["membership"]["drains"] == 1
        assert mp.extra["membership"]["leader_term"] >= 1
        assert sim.extra["membership"]["leader_term"] >= 1
