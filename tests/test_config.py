"""Configuration validation tests."""

from __future__ import annotations

import pytest

from repro.config import (
    ClusterConfig,
    EngineConfig,
    FaultToleranceConfig,
    FTMode,
    JobConfig,
    PartitionStrategy,
    RecoveryStrategy,
)
from repro.errors import ConfigError


class TestClusterConfig:
    def test_defaults_match_paper_testbed(self):
        cfg = ClusterConfig()
        assert cfg.num_nodes == 50
        assert cfg.cores_per_node == 4
        assert cfg.ram_bytes == 10 * 1024**3
        assert cfg.heartbeat_interval_s == 0.5

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=0)

    def test_rejects_negative_standby(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_standby=-1)

    def test_rejects_bad_heartbeat(self):
        with pytest.raises(ConfigError):
            ClusterConfig(heartbeat_interval_s=0.0)


class TestFaultToleranceConfig:
    def test_replication_needs_positive_level(self):
        with pytest.raises(ConfigError):
            FaultToleranceConfig(mode=FTMode.REPLICATION, ft_level=0)

    def test_none_mode_allows_zero_level(self):
        cfg = FaultToleranceConfig(mode=FTMode.NONE, ft_level=0)
        assert cfg.ft_level == 0

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigError):
            FaultToleranceConfig(checkpoint_interval=0)

    def test_rejects_negative_level(self):
        with pytest.raises(ConfigError):
            FaultToleranceConfig(ft_level=-1)


class TestEngineConfig:
    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            EngineConfig(max_iterations=0)

    def test_partition_kind_flags(self):
        assert PartitionStrategy.HASH_EDGE_CUT.is_edge_cut
        assert PartitionStrategy.FENNEL_EDGE_CUT.is_edge_cut
        assert PartitionStrategy.RANDOM_VERTEX_CUT.is_vertex_cut
        assert PartitionStrategy.GRID_VERTEX_CUT.is_vertex_cut
        assert PartitionStrategy.HYBRID_CUT.is_vertex_cut


class TestJobConfig:
    def test_cross_validation_ft_level_vs_nodes(self):
        job = JobConfig(cluster=ClusterConfig(num_nodes=2),
                        ft=FaultToleranceConfig(ft_level=2))
        with pytest.raises(ConfigError):
            job.validate()

    def test_valid_default_job(self):
        JobConfig().validate()

    def test_recovery_enum_roundtrip(self):
        assert RecoveryStrategy("rebirth") is RecoveryStrategy.REBIRTH
        assert RecoveryStrategy("migration") is RecoveryStrategy.MIGRATION
