"""Unit tests for the shared recovery machinery."""

from __future__ import annotations

import pytest

from repro.engine.local_graph import LocalGraph
from repro.engine.messages import RecoveredVertex
from repro.engine.state import MasterMeta, Role, VertexSlot
from repro.errors import UnrecoverableFailureError
from repro.ft._recovery_common import (
    place_recovered_vertex,
    relink_edge_cut_topology,
    surviving_recoverer,
)
from repro.ft.edge_ckpt import EdgeRecord, dedupe_edge_records


class TestSurvivingRecoverer:
    def test_lowest_id_surviving_mirror(self):
        meta = MasterMeta(mirror_nodes=[4, 7, 9])
        assert surviving_recoverer(meta, failed={0}) == 4
        assert surviving_recoverer(meta, failed={4}) == 7
        assert surviving_recoverer(meta, failed={4, 7}) == 9
        assert surviving_recoverer(meta, failed={4, 7, 9}) is None


class TestDedupeEdgeRecords:
    def test_last_wins_first_order(self):
        records = [EdgeRecord(0, 1, 1.0), EdgeRecord(2, 3, 1.0),
                   EdgeRecord(0, 1, 0.5), EdgeRecord(0, 1, 0.25)]
        deduped = dedupe_edge_records(records)
        assert deduped == [EdgeRecord(0, 1, 0.25), EdgeRecord(2, 3, 1.0)]

    def test_empty(self):
        assert dedupe_edge_records([]) == []


class TestPlaceRecoveredVertex:
    def make_rv(self, **kw):
        defaults = dict(gid=3, role="master", position=2, value=1.5,
                        active=True, last_activates=True, out_degree=1,
                        in_degree=2, master_node=0,
                        replica_positions={1: 0}, mirror_nodes=[1],
                        master_position=2, self_active=True,
                        known_active=True, last_update_iter=4)
        defaults.update(kw)
        return RecoveredVertex(**defaults)

    def test_positional_placement(self):
        lg = LocalGraph(0)
        slot = place_recovered_vertex(lg, self.make_rv(), last_commit=4)
        assert lg.position_of(3) == 2
        assert slot.role is Role.MASTER
        assert slot.value == 1.5
        assert slot.active
        assert slot.last_update_iter == 4  # shipped verbatim
        assert slot.meta.replica_positions == {1: 0}
        assert lg.active_masters == {3}

    def test_unstamped_when_never_updated(self):
        lg = LocalGraph(0)
        slot = place_recovered_vertex(
            lg, self.make_rv(last_activates=False, last_update_iter=-1),
            last_commit=4)
        assert slot.last_update_iter == -1

    def test_stamp_clamped_to_last_commit(self):
        # A snapshot can never legitimately claim an update from an
        # uncommitted iteration; the clamp keeps replay sound.
        lg = LocalGraph(0)
        slot = place_recovered_vertex(
            lg, self.make_rv(last_update_iter=9), last_commit=4)
        assert slot.last_update_iter == 4

    def test_mirror_fields(self):
        lg = LocalGraph(1)
        rv = self.make_rv(role="mirror", position=0, mirror_id=0)
        slot = place_recovered_vertex(lg, rv, last_commit=1)
        assert slot.is_mirror
        assert slot.mirror_self_active


class TestRelinkEdgeCut:
    def test_positions_must_match(self):
        lg = LocalGraph(0)
        master = VertexSlot(gid=0, role=Role.MASTER, meta=MasterMeta())
        master.full_edges = [(9, 1, 2.0)]  # expects gid 9 at position 1
        lg.add_slot(master, position=0)
        lg.add_slot(VertexSlot(gid=9, role=Role.REPLICA), position=1)
        linked = relink_edge_cut_topology(lg)
        assert linked == 1
        assert lg.slot_of(0).in_edges == [(1, 2.0)]
        assert lg.slot_of(9).out_edges == [0]

    def test_mismatched_position_raises(self):
        lg = LocalGraph(0)
        master = VertexSlot(gid=0, role=Role.MASTER, meta=MasterMeta())
        master.full_edges = [(9, 1, 2.0)]
        lg.add_slot(master, position=0)
        lg.add_slot(VertexSlot(gid=8, role=Role.REPLICA), position=1)
        with pytest.raises(UnrecoverableFailureError):
            relink_edge_cut_topology(lg)
