"""Unit tests for repro.utils: hashing, RNG streams, sizing."""

from __future__ import annotations

import pytest

from repro.utils.hashing import hash_to_node, stable_hash
from repro.utils.rng import SeededRng, derive_seed
from repro.utils.sizing import (
    BYTES_PER_EDGE,
    BYTES_PER_VALUE,
    BYTES_PER_VID,
    sizeof_value,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash(42, salt=1) == stable_hash(42, salt=1)

    def test_salt_changes_output(self):
        assert stable_hash(42) != stable_hash(42, salt=1)

    def test_distinct_inputs_differ(self):
        values = {stable_hash(i) for i in range(1000)}
        assert len(values) == 1000

    def test_64_bit_range(self):
        for i in (0, 1, 2**40, 2**63):
            assert 0 <= stable_hash(i) < 2**64

    def test_avalanche_spread(self):
        # Consecutive inputs should land in different nodes often.
        nodes = [hash_to_node(i, 10) for i in range(1000)]
        counts = [nodes.count(k) for k in range(10)]
        assert min(counts) > 50  # roughly uniform

    def test_hash_to_node_range(self):
        for i in range(100):
            assert 0 <= hash_to_node(i, 7) < 7

    def test_hash_to_node_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            hash_to_node(1, 0)


class TestSeededRng:
    def test_same_labels_same_stream(self):
        a = SeededRng(1, "x", 2)
        b = SeededRng(1, "x", 2)
        assert [a.randint(0, 100) for _ in range(5)] == \
            [b.randint(0, 100) for _ in range(5)]

    def test_different_labels_diverge(self):
        a = SeededRng(1, "x")
        b = SeededRng(1, "y")
        assert [a.randint(0, 10**9) for _ in range(3)] != \
            [b.randint(0, 10**9) for _ in range(3)]

    def test_child_stream_independent(self):
        root = SeededRng(1, "root")
        child = root.child("sub")
        assert child.seed != root.seed

    def test_derive_seed_mixed_labels(self):
        assert derive_seed(5, "a", 1) == derive_seed(5, "a", 1)
        assert derive_seed(5, "a", 1) != derive_seed(5, "a", 2)
        assert derive_seed(5, "a") != derive_seed(6, "a")

    def test_sample_and_choice(self):
        rng = SeededRng(3, "s")
        sample = rng.sample(list(range(20)), 5)
        assert len(set(sample)) == 5
        assert rng.choice([7]) == 7


class TestSizing:
    def test_scalar_value(self):
        assert sizeof_value(1.0) == BYTES_PER_VALUE
        assert sizeof_value(7) == BYTES_PER_VALUE

    def test_vector_value(self):
        assert sizeof_value((1.0, 2.0, 3.0)) == 3 * BYTES_PER_VALUE
        assert sizeof_value([1.0] * 5) == 5 * BYTES_PER_VALUE

    def test_empty_vector_counts_one_slot(self):
        assert sizeof_value(()) == BYTES_PER_VALUE

    def test_edge_record_layout(self):
        assert BYTES_PER_EDGE == 2 * BYTES_PER_VID + 8
