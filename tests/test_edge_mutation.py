"""Edge-state mutation tests (Section 4.3's rare-but-supported case).

A decaying-weight program exercises the full chain: BSP-consistent
commits, mirror edge synchronisation (edge-cut), incremental edge-ckpt
logging (vertex-cut), snapshot journaling (CKPT mode), and exact
recovery of mutated edge state on every path.
"""

from __future__ import annotations

import pytest

from repro.api import make_engine
from repro.engine.vertex_program import (
    VertexProgram,
    VertexView,
)
from repro.graph import generators


class DecayingDegree(VertexProgram):
    """Sums in-edge weights, then halves each gathered edge's weight.

    After iteration t, every (always-gathered) edge's weight is
    w0 * 0.5^(t+1) and each vertex's value is its weighted in-degree
    as seen with the *pre-decay* weights of that iteration.
    """

    name = "decaying-degree"
    history_free = True
    mutates_edges = True

    def initial_value(self, vid, ctx):
        return 0.0

    def gather_init(self):
        return 0.0

    def gather(self, acc, src: VertexView, weight, dst_vid):
        return acc + weight

    def gather_sum(self, a, b):
        return (a or 0.0) + (b or 0.0)

    def update_edge(self, src, dst_vid, weight, ctx):
        return weight * 0.5

    def apply(self, vid, old_value, acc, ctx):
        return acc or 0.0


def graph():
    return generators.power_law(120, alpha=2.0, seed=23, avg_degree=4.0)


def run(partition="hash_edge_cut", ft_mode="replication", failures=(),
        iterations=4, **kw):
    engine = make_engine(graph(), DecayingDegree(), num_nodes=4,
                         max_iterations=iterations, partition=partition,
                         ft_mode=ft_mode, num_standby=2, **kw)
    for failure in failures:
        engine.schedule_failure(*failure)
    return engine, engine.run()


class TestSemantics:
    def test_values_follow_decay(self):
        g = graph()
        _, result = run()
        in_weight = {v: sum(g.edge(int(e))[2] for e in g.in_edge_ids(v))
                     for v in range(g.num_vertices)}
        # Iteration 3 gathers weights already decayed three times.
        for v in range(g.num_vertices):
            assert result.values[v] == pytest.approx(
                in_weight[v] * 0.5 ** 3)

    def test_vertex_cut_matches_edge_cut(self):
        _, a = run(partition="hash_edge_cut")
        _, b = run(partition="hybrid_cut")
        for v in range(120):
            assert a.values[v] == pytest.approx(b.values[v], rel=1e-12)

    def test_mirror_edges_stay_fresh(self):
        engine, _ = run()
        for lg in engine.local_graphs.values():
            for slot in lg.iter_masters():
                for mnode in slot.meta.mirror_nodes:
                    mirror = engine.local_graphs[mnode].slot_of(slot.gid)
                    for (pos, w), (_, mpos, mw) in zip(
                            slot.in_edges, mirror.full_edges):
                        assert pos == mpos
                        assert w == pytest.approx(mw)

    def test_edge_ckpt_log_grows(self):
        engine, _ = run(partition="hybrid_cut")
        total = sum(len(engine.edge_ckpt.read_all(n)) for n in range(4))
        # Loading records + one update per gathered edge per iteration.
        assert total > engine.graph.num_edges


class TestRecoveryOfMutatedEdges:
    @pytest.mark.parametrize("partition", ["hash_edge_cut", "hybrid_cut"])
    @pytest.mark.parametrize("recovery", ["rebirth", "migration"])
    def test_replication_recovery_exact(self, partition, recovery):
        _, base = run(partition=partition)
        _, failed = run(partition=partition, recovery=recovery,
                        failures=[(2, [1])])
        for v in range(120):
            assert failed.values[v] == pytest.approx(base.values[v],
                                                     rel=1e-9)

    @pytest.mark.parametrize("partition", ["hash_edge_cut", "hybrid_cut"])
    def test_checkpoint_recovery_exact(self, partition):
        _, base = run(partition=partition, ft_mode="none")
        _, failed = run(partition=partition, ft_mode="checkpoint",
                        checkpoint_interval=2, failures=[(3, [1])])
        assert failed.recoveries
        for v in range(120):
            assert failed.values[v] == pytest.approx(base.values[v],
                                                     rel=1e-12)

    def test_ckpt_snapshots_carry_edge_journal(self):
        engine, _ = run(ft_mode="checkpoint", iterations=2)
        payload = engine.cluster.store.read("ckpt/data/node0/iter000000")
        assert payload["edges"], "edge journal missing from snapshot"
