"""Engine tests: plumbing, correctness vs references, halting, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import make_engine, run_job
from repro.errors import EngineError, UnrecoverableFailureError
from repro.graph import generators

ALL_PARTITIONS = ["hash_edge_cut", "fennel_edge_cut", "random_vertex_cut",
                  "grid_vertex_cut", "hybrid_cut"]


def numpy_pagerank(graph, iterations, damping=0.85):
    n = graph.num_vertices
    out_deg = graph.out_degrees().astype(float)
    rank = np.ones(n)
    for _ in range(iterations):
        contrib = np.zeros(n)
        mass = np.where(out_deg > 0, rank / np.maximum(out_deg, 1), 0.0)
        np.add.at(contrib, graph.targets, mass[graph.sources])
        rank = (1 - damping) + damping * contrib
    return rank


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(250, alpha=2.0, seed=41, avg_degree=5.0,
                                selfish_frac=0.1)


class TestDegreePlumbing:
    @pytest.mark.parametrize("partition", ALL_PARTITIONS)
    def test_degree_program_one_step(self, graph, partition):
        result = run_job(graph, "degree", num_nodes=4, max_iterations=3,
                         partition=partition)
        # DegreeCount deactivates everything after one superstep.
        assert result.num_iterations == 1
        for v in range(graph.num_vertices):
            expected = sum(w for _, _, w in
                           [graph.edge(int(e))
                            for e in graph.in_edge_ids(v)])
            assert result.values[v] == pytest.approx(expected)


class TestPageRankCorrectness:
    @pytest.mark.parametrize("partition", ALL_PARTITIONS)
    def test_matches_numpy(self, graph, partition):
        result = run_job(graph, "pagerank", num_nodes=4, max_iterations=4,
                         partition=partition)
        ref = numpy_pagerank(graph, 4)
        got = np.array([result.values[v] for v in range(graph.num_vertices)])
        assert np.allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_single_node_cluster(self, graph):
        result = run_job(graph, "pagerank", num_nodes=1, max_iterations=3,
                         ft_mode="none", num_standby=0)
        ref = numpy_pagerank(graph, 3)
        got = np.array([result.values[v] for v in range(graph.num_vertices)])
        assert np.allclose(got, ref)

    def test_node_count_does_not_change_values(self, graph):
        a = run_job(graph, "pagerank", num_nodes=2, max_iterations=3)
        b = run_job(graph, "pagerank", num_nodes=7, max_iterations=3)
        for v in range(graph.num_vertices):
            assert a.values[v] == pytest.approx(b.values[v], rel=1e-12)


class TestActivationAndHalting:
    def test_sssp_halts(self):
        g = generators.chain(20, weighted=True, seed=1)
        result = run_job(g, "sssp", num_nodes=3, max_iterations=100,
                         algorithm_kwargs={"source": 0})
        assert result.halted_early
        assert result.num_iterations < 30

    @pytest.mark.parametrize("partition", ["hash_edge_cut", "hybrid_cut"])
    def test_sssp_distances(self, partition):
        g = generators.chain(20, weighted=True, seed=1)
        result = run_job(g, "sssp", num_nodes=3, max_iterations=100,
                         partition=partition,
                         algorithm_kwargs={"source": 0})
        dist = 0.0
        assert result.values[0] == 0.0
        for i in range(19):
            dist += g.edge(i)[2]
            assert result.values[i + 1] == pytest.approx(dist)

    def test_unreachable_stays_infinite(self):
        g = generators.chain(5)
        result = run_job(g, "sssp", num_nodes=2, max_iterations=20,
                         algorithm_kwargs={"source": 2})
        assert result.values[0] == float("inf")
        assert result.values[4] == pytest.approx(2.0)

    def test_active_count_shrinks_for_sssp(self):
        g = generators.chain(30)
        result = run_job(g, "sssp", num_nodes=3, max_iterations=100,
                         algorithm_kwargs={"source": 0})
        actives = [s.active_masters for s in result.iteration_stats]
        assert max(actives) <= 3  # a travelling frontier of ~1 vertex

    def test_pagerank_never_halts(self, graph):
        result = run_job(graph, "pagerank", num_nodes=4, max_iterations=3)
        assert not result.halted_early
        assert result.num_iterations == 3


class TestStatsAndReports:
    def test_iteration_stats_shape(self, graph):
        result = run_job(graph, "pagerank", num_nodes=4, max_iterations=3)
        assert len(result.iteration_stats) == 3
        for stat in result.iteration_stats:
            assert stat.messages > 0
            assert stat.sim_time_s > 0
        assert result.total_sim_time_s >= \
            result.iteration_stats[-1].sim_clock_s

    def test_memory_report_positive(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4)
        memory = engine.memory_report()
        assert set(memory) == {0, 1, 2, 3}
        assert all(v > 0 for v in memory.values())

    def test_construction_report_attached(self, graph):
        result = run_job(graph, "pagerank", num_nodes=4, max_iterations=1)
        assert result.construction is not None
        assert result.construction.num_vertices == graph.num_vertices


class TestFailureScheduling:
    def test_invalid_phase_rejected(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4)
        with pytest.raises(EngineError):
            engine.schedule_failure(1, [0], phase="bogus")

    def test_invalid_node_rejected(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4)
        with pytest.raises(EngineError):
            engine.schedule_failure(1, [99])

    def test_base_mode_crash_is_fatal(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=4, ft_mode="none")
        engine.schedule_failure(1, [2])
        with pytest.raises(UnrecoverableFailureError):
            engine.run()


class TestExternalCrossValidation:
    def test_sssp_matches_scipy_dijkstra(self):
        """Full convergence cross-check against an independent solver."""
        scipy_sparse = pytest.importorskip("scipy.sparse")
        from scipy.sparse.csgraph import dijkstra
        g = generators.road_network(20, 20, seed=13)
        result = run_job(g, "sssp", num_nodes=6, max_iterations=200,
                         algorithm_kwargs={"source": 0})
        assert result.halted_early
        matrix = scipy_sparse.csr_matrix(
            (g.weights, (g.sources, g.targets)),
            shape=(g.num_vertices, g.num_vertices))
        ref = dijkstra(matrix, indices=0)
        got = np.array([result.values[v] for v in range(g.num_vertices)])
        assert np.allclose(got, ref)
