"""Rebirth recovery tests: equivalence (P4), position stability (P7),
phase accounting."""

from __future__ import annotations

import pytest

from repro.api import make_engine, run_job
from repro.engine.state import Role
from repro.graph import generators

PARTS = ["hash_edge_cut", "hybrid_cut"]


@pytest.fixture(scope="module")
def graph():
    return generators.power_law(250, alpha=2.0, seed=51, avg_degree=5.0,
                                selfish_frac=0.1)


@pytest.fixture(scope="module")
def baseline(graph):
    result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6)
    return {v: result.values[v] for v in range(graph.num_vertices)}


class TestEquivalence:
    @pytest.mark.parametrize("partition", PARTS)
    @pytest.mark.parametrize("phase", ["compute", "after_commit"])
    def test_pagerank_equivalent(self, graph, baseline, partition, phase):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         partition=partition, recovery="rebirth",
                         failures=[(3, [2], phase)])
        assert len(result.recoveries) == 1
        for v in range(graph.num_vertices):
            assert result.values[v] == pytest.approx(baseline[v],
                                                     rel=1e-12)

    def test_edge_cut_bitwise_equal(self, graph, baseline):
        """Edge-cut Rebirth preserves gather order: exact equality."""
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="rebirth", failures=[(3, [2])])
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]

    def test_failure_at_first_iteration(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="rebirth", failures=[(0, [1])])
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]

    def test_sssp_equivalent(self):
        g = generators.chain(30, weighted=True, seed=2)
        clean = run_job(g, "sssp", num_nodes=4, max_iterations=60,
                        algorithm_kwargs={"source": 0})
        failed = run_job(g, "sssp", num_nodes=4, max_iterations=60,
                         recovery="rebirth", algorithm_kwargs={"source": 0},
                         failures=[(10, [1])])
        for v in range(30):
            assert failed.values[v] == clean.values[v]

    def test_two_sequential_failures(self, graph, baseline):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="rebirth", num_standby=2,
                         failures=[(2, [1]), (4, [3])])
        assert len(result.recoveries) == 2
        for v in range(graph.num_vertices):
            assert result.values[v] == baseline[v]


class TestPositionStability:
    def test_rebuilt_array_identical(self, graph):
        """Invariant P7: the reborn node's vertex array matches the
        crashed node's layout slot by slot."""
        engine_a = make_engine(graph, "pagerank", num_nodes=5,
                               max_iterations=6)
        layout_before = [
            (s.gid, s.role, len(s.in_edges), len(s.out_edges))
            for s in engine_a.local_graphs[2].slots if s is not None]
        engine_a.schedule_failure(3, [2])
        engine_a.run()
        layout_after = [
            (s.gid, s.role, len(s.in_edges), len(s.out_edges))
            for s in engine_a.local_graphs[2].slots if s is not None]
        assert layout_before == layout_after

    def test_meta_positions_still_valid(self, graph):
        engine = make_engine(graph, "pagerank", num_nodes=5,
                             max_iterations=6)
        engine.schedule_failure(3, [2])
        engine.run()
        for node, lg in engine.local_graphs.items():
            for slot in lg.iter_masters():
                for rnode, pos in slot.meta.replica_positions.items():
                    replica = engine.local_graphs[rnode].slots[pos]
                    assert replica is not None and replica.gid == slot.gid


class TestStats:
    @pytest.mark.parametrize("partition", PARTS)
    def test_recovery_stats_populated(self, graph, partition):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         partition=partition, recovery="rebirth",
                         failures=[(3, [2])])
        stats = result.recoveries[0]
        assert stats.strategy == "rebirth"
        assert stats.failed_nodes == (2,)
        assert stats.newbie_nodes == (2,)
        assert stats.vertices_recovered > 0
        assert stats.recovery_messages > 0
        assert stats.recovery_bytes > 0
        assert stats.total_s > 0
        assert stats.detection_s == pytest.approx(7.0)

    def test_edge_cut_has_no_explicit_reconstruction(self, graph):
        """Fig. 9a: reconstruction folds into reloading for edge-cut."""
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         recovery="rebirth", failures=[(3, [2])])
        assert result.recoveries[0].reconstruct_s == 0.0

    def test_vertex_cut_reads_edge_ckpt(self, graph):
        result = run_job(graph, "pagerank", num_nodes=5, max_iterations=6,
                         partition="hybrid_cut", recovery="rebirth",
                         failures=[(3, [2])])
        stats = result.recoveries[0]
        assert stats.edges_recovered > 0
        assert stats.reconstruct_s > 0

    def test_mirror_leads_master_recovery(self, graph):
        """After rebirth the recovered masters' mirrors are intact."""
        engine = make_engine(graph, "pagerank", num_nodes=5,
                             max_iterations=6)
        engine.schedule_failure(3, [2])
        engine.run()
        lg = engine.local_graphs[2]
        for slot in lg.iter_masters():
            for mnode in slot.meta.mirror_nodes:
                mirror = engine.local_graphs[mnode].slot_of(slot.gid)
                assert mirror.role is Role.MIRROR
