#!/usr/bin/env python3
"""Recommendation workload: ALS matrix factorisation on a bipartite
rating graph (the paper's SYN-GL workload), with a mid-training crash
recovered by Migration — no standby machines needed.

The example mirrors a production concern the paper motivates: a long
iterative ML job should not restart from scratch (or from a slow HDFS
checkpoint) because one worker of fifty died.

Run with::

    python examples/recommendation_als.py
"""

from __future__ import annotations

from repro import make_engine
from repro.algorithms import AlternatingLeastSquares
from repro.graph import generators

NUM_USERS = 1_500
NUM_ITEMS = 400


def train(label: str, failures=()) -> None:
    graph = generators.bipartite(NUM_USERS, NUM_ITEMS, edges_per_user=12,
                                 seed=11, name="ratings")
    program = AlternatingLeastSquares(num_users=NUM_USERS, rank=4)
    engine = make_engine(graph, program, num_nodes=12, max_iterations=12,
                         recovery="migration", num_standby=0)
    for failure in failures:
        engine.schedule_failure(*failure)
    result = engine.run()
    rmse = program.rmse(graph, result.values)
    line = (f"{label}: {result.num_iterations} ALS half-sweeps, "
            f"RMSE {rmse:.4f}")
    if result.recoveries:
        stats = result.recoveries[0]
        line += (f"  [node {stats.failed_nodes[0]} crashed; migrated "
                 f"{stats.vertices_recovered} masters to survivors in "
                 f"{stats.total_s:.3f}s]")
    print(line)

    # Show a sample recommendation: the highest predicted unrated item
    # for user 0.
    user_vec = result.values[0]
    rated = set(int(i) for i in graph.out_neighbors(0))
    best_item, best_score = None, float("-inf")
    for item in range(NUM_USERS, NUM_USERS + NUM_ITEMS):
        if item in rated:
            continue
        score = sum(a * b for a, b in zip(user_vec, result.values[item]))
        if score > best_score:
            best_item, best_score = item, score
    print(f"  suggested item for user 0: item {best_item - NUM_USERS} "
          f"(predicted rating {best_score:.2f})")


def main() -> None:
    print(f"training ALS on {NUM_USERS} users x {NUM_ITEMS} items\n")
    train("failure-free")
    # Crash node 7 after the sixth half-sweep; Migration redistributes
    # its users/items across the surviving eleven machines.
    train("with crash   ", failures=[(6, [7])])


if __name__ == "__main__":
    main()
