#!/usr/bin/env python3
"""Online query serving: read the graph while it is still computing.

The K+1-way replication that makes recovery cheap also makes every
vertex readable from K+1 places.  This demo (DESIGN.md §13) runs
PageRank on a simulated cluster while a seeded open-loop workload —
Poisson arrivals, Zipf-skewed keys, a mix of point / neighborhood /
top-K queries — is served *concurrently* with the supersteps:

* every response is snapshot-isolated at the last committed superstep
  (tagged with it, bit-equal to the value committed there);
* reads are spread across master + replicas by a seeded round-robin
  router (per-replica load is part of the report);
* two nodes are chaos-killed mid-run: reads issued during the recovery
  window fall back to surviving replicas and are tagged
  ``degraded=True`` — and vertices whose only committed copy is
  momentarily unavailable answer with an explicit miss, never a stale
  value;
* a serving-free replay of the identical job then re-checks every
  response against the committed history.

Run with::

    python examples/query_serving.py
"""

from __future__ import annotations

from collections import Counter

from repro.exec.base import BackendSpec
from repro.exec.simulator import SimulatorBackend
from repro.graph import generators
from repro.serve import KIND_NAMES, check_responses, replay_committed_history

NUM_NODES = 5
ITERATIONS = 10
NUM_QUERIES = 20_000


def main() -> None:
    graph = generators.power_law(800, alpha=2.0, seed=5, avg_degree=5.0,
                                 name="serve-demo")
    spec = BackendSpec(
        algorithm="pagerank", num_nodes=NUM_NODES, ft_level=2,
        max_iterations=ITERATIONS, num_standby=3,
        failures=((3, (0, 1), "compute"),),
        serve=(("num_queries", NUM_QUERIES),
               ("qps", float(NUM_QUERIES)),       # whole run ~1 horizon
               ("seed", 11), ("zipf_s", 1.1),
               ("neighborhood_frac", 0.05), ("topk_frac", 0.02)))

    print(f"{NUM_NODES} nodes, |V|={graph.num_vertices}, ft_level=2, "
          f"{ITERATIONS} PageRank iterations")
    print(f"serving {NUM_QUERIES} queries concurrently; nodes 0 and 1 "
          f"are killed at superstep 3\n")

    result = SimulatorBackend().run(graph, spec)
    report = result.extra["serve"]
    responses = result.extra["serve_responses"]

    kinds = Counter(KIND_NAMES[r.kind] for r in responses)
    print("served:", dict(kinds))
    print(f"degraded reads : {report['degraded_reads']} "
          f"(recovery window / dead-copy fallback)")
    print(f"misses         : {report['misses']} "
          f"(no alive committed copy — explicit, never stale)")
    print(f"latency        : p50 {report['p50_us']:.1f}us, "
          f"p99 {report['p99_us']:.1f}us")
    print(f"per-replica load: {report['per_replica_load']}")

    sample = next(r for r in responses
                  if r.degraded and r.kind == 0 and r.value is not None)
    print(f"\na degraded read: vertex {sample.gid} -> {sample.value:.6f} "
          f"(superstep {sample.superstep}, served by node "
          f"{sample.replica_node})")

    print("\nreplaying the identical job without serving...")
    history = replay_committed_history(graph, spec)
    mismatches = check_responses(responses, history)
    assert mismatches == [], mismatches[:3]
    print(f"all {len(responses)} responses bit-equal to the committed "
          f"value at their tagged superstep — zero uncommitted reads.")


if __name__ == "__main__":
    main()
