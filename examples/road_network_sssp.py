#!/usr/bin/env python3
"""Routing workload: single-source shortest paths on a road network
(the paper's RoadCA workload), comparing fault-tolerance mechanisms
under a crash.

SSSP is the adversarial case for replication-based fault tolerance:
it is event-driven (tiny frontiers, so framework costs dominate) and
its update rule is history-dependent, so the selfish-vertex
optimisation must stay off (Section 4.4).  Imitator still recovers
exactly, and far faster than the checkpoint baseline.

Run with::

    python examples/road_network_sssp.py
"""

from __future__ import annotations

import math

from repro import run_job
from repro.graph import generators


def run(label: str, **options):
    graph = generators.road_network(60, 60, seed=9, name="road-grid")
    result = run_job(graph, "sssp", num_nodes=12, max_iterations=300,
                     algorithm_kwargs={"source": 0}, **options)
    reached = sum(1 for v in result.values.values() if v < math.inf)
    line = (f"{label:22s} iterations={result.num_iterations:3d} "
            f"reached={reached}/{graph.num_vertices}")
    if result.recoveries:
        stats = result.recoveries[0]
        extra = stats.replayed_iterations * result.avg_iteration_time_s()
        line += f"  recovery={stats.total_s + extra:6.3f}s ({stats.strategy})"
    print(line)
    return result


def main() -> None:
    crash = [(40, [5])]
    base = run("failure-free")
    reb = run("rebirth after crash", recovery="rebirth", failures=crash)
    mig = run("migration after crash", recovery="migration",
              num_standby=0, failures=crash)
    ckpt = run("checkpoint (interval 4)", ft_mode="checkpoint",
               checkpoint_interval=4, failures=crash)

    for label, result in (("rebirth", reb), ("migration", mig),
                          ("checkpoint", ckpt)):
        diffs = sum(1 for v in range(3600)
                    if result.values[v] != base.values[v])
        print(f"  {label}: {diffs} distance mismatches vs failure-free")
        assert diffs == 0

    far = max((d, v) for v, d in base.values.items() if d < math.inf)
    print(f"\nfarthest reachable junction: vertex {far[1]} at "
          f"weighted distance {far[0]:.2f}")


if __name__ == "__main__":
    main()
