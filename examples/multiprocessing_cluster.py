#!/usr/bin/env python3
"""Real-process demo: Imitator's replication protocol over OS processes.

The library's engine simulates a cluster deterministically in one
process (best for experiments). This example shows the same
master/replica message protocol running across *actual* worker
processes connected by pipes, to make the distributed structure
tangible:

* the graph is hash edge-cut partitioned across N worker processes;
* each worker owns its masters (with their full in-edge lists) and
  hosts replicas of remote in-neighbors;
* each PageRank superstep, every worker computes its masters locally
  and ships value syncs to the replicas' hosts, then all workers meet
  at a barrier;
* one worker is killed mid-run; the coordinator reconstructs its
  partition on a standby process from the replicas the *other* workers
  hold (the Rebirth idea: surviving state, not disk, feeds recovery),
  and the job finishes with exactly the same ranks as a clean run.

Run with::

    python examples/multiprocessing_cluster.py
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.graph import generators
from repro.partition import hash_edge_cut

NUM_WORKERS = 4
ITERATIONS = 8
KILL_AT_ITERATION = 4
KILLED_WORKER = 2
DAMPING = 0.85


def build_partitions(graph, num_workers):
    """Per-worker: masters, their in-edges, and replica routing."""
    part = hash_edge_cut(graph, num_workers)
    master_of = part.master_of
    out_deg = graph.out_degrees()
    partitions = []
    for w in range(num_workers):
        masters = np.flatnonzero(master_of == w)
        in_edges = {int(v): [int(u) for u in graph.in_neighbors(int(v))]
                    for v in masters}
        # Where do my masters' values need to go?  To every worker
        # hosting one of their out-edges — plus, for vertices without
        # any remote consumer, one *FT replica* on a buddy worker.
        # This is the paper's Section 4.1 extension: without it, a
        # replica-less vertex would be unrecoverable after a crash.
        routes: dict[int, set[int]] = {}
        for v in masters:
            targets = {int(master_of[t]) for t in
                       graph.out_neighbors(int(v))} - {w}
            if not targets:
                targets = {(w + 1) % num_workers}
            routes[int(v)] = targets
        partitions.append({
            "worker": w,
            "masters": [int(v) for v in masters],
            "in_edges": in_edges,
            "routes": {v: sorted(t) for v, t in routes.items()},
            "out_degree": {int(v): int(out_deg[v]) for v in
                           range(graph.num_vertices)},
        })
    return partitions


def worker_loop(spec, inbox, outboxes, coordinator):
    """One worker process: compute masters, sync replicas, barrier."""
    values = {v: 1.0 for v in spec["masters"]}
    replicas: dict[int, float] = {}
    for sources in spec["in_edges"].values():
        for u in sources:
            if u not in values:
                replicas[u] = 1.0
    # Peers' sync batches may race ahead of the coordinator's commands
    # on the shared inbox; buffer them until the step consumes them.
    early_syncs: list = []

    def recv_command():
        while True:
            msg = inbox.recv()
            if msg[0] == "sync":
                early_syncs.append(msg)
                continue
            return msg

    def recv_sync():
        if early_syncs:
            return early_syncs.pop(0)
        msg = inbox.recv()
        assert msg[0] == "sync"
        return msg

    while True:
        command = recv_command()
        if command[0] == "stop":
            coordinator.send(("state", spec["worker"], values))
            return
        if command[0] == "load":  # rebirth: adopt a recovered partition
            _, values, replicas = command
            coordinator.send(("loaded", spec["worker"]))
            continue
        assert command[0] == "step"
        new_values = {}
        for v in spec["masters"]:
            acc = 0.0
            for u in spec["in_edges"][v]:
                val = values.get(u, replicas.get(u, 1.0))
                deg = spec["out_degree"][u]
                if deg:
                    acc += val / deg
            new_values[v] = (1 - DAMPING) + DAMPING * acc
        # Sync phase: batched messages per destination worker.
        batches: dict[int, list] = {w: [] for w in range(len(outboxes))}
        for v, destinations in spec["routes"].items():
            for w in destinations:
                batches[w].append((v, new_values[v]))
        for w, batch in batches.items():
            if w != spec["worker"]:
                outboxes[w].send(("sync", spec["worker"], batch))
        values.update(new_values)
        # Receive one sync bundle from every peer, then barrier.
        expected = len(outboxes) - 1
        for _ in range(expected):
            _kind, _src, batch = recv_sync()
            for v, value in batch:
                replicas[v] = value
        coordinator.send(("barrier", spec["worker"],
                          dict(values), dict(replicas)))


def run_cluster(graph, kill=False):
    partitions = build_partitions(graph, NUM_WORKERS)
    ctx = mp.get_context("fork")
    to_worker = [ctx.Pipe() for _ in range(NUM_WORKERS)]
    to_coord = [ctx.Pipe() for _ in range(NUM_WORKERS)]
    workers = []
    for w, spec in enumerate(partitions):
        proc = ctx.Process(
            target=worker_loop,
            args=(spec, to_worker[w][1],
                  [to_worker[i][0] for i in range(NUM_WORKERS)],
                  to_coord[w][0]),
            daemon=True)
        proc.start()
        workers.append(proc)

    # Coordinator: replica snapshots double as the recovery source.
    last_replica_view: list[dict] = [{} for _ in range(NUM_WORKERS)]
    last_master_view: list[dict] = [{} for _ in range(NUM_WORKERS)]
    for iteration in range(ITERATIONS):
        if kill and iteration == KILL_AT_ITERATION:
            workers[KILLED_WORKER].terminate()
            workers[KILLED_WORKER].join()
            print(f"  !! worker {KILLED_WORKER} killed before "
                  f"iteration {iteration}")
            # Rebirth: rebuild the dead partition's masters from the
            # replicas held by the survivors, on a fresh process.
            spec = partitions[KILLED_WORKER]
            recovered = {}
            for w in range(NUM_WORKERS):
                if w == KILLED_WORKER:
                    continue
                for v, value in last_replica_view[w].items():
                    if v in spec["in_edges"]:
                        recovered[v] = value
            for v in spec["masters"]:
                recovered.setdefault(v, 1.0)
            replicas = {}
            for w in range(NUM_WORKERS):
                if w == KILLED_WORKER:
                    continue
                for v, value in last_master_view[w].items():
                    replicas[v] = value
            # The standby adopts the dead worker's *logical identity*:
            # it inherits the same pipes, so peers keep addressing it
            # unchanged (the paper's logical-id takeover).
            proc = ctx.Process(
                target=worker_loop,
                args=(spec, to_worker[KILLED_WORKER][1],
                      [to_worker[i][0] for i in range(NUM_WORKERS)],
                      to_coord[KILLED_WORKER][0]),
                daemon=True)
            proc.start()
            workers[KILLED_WORKER] = proc
            to_worker[KILLED_WORKER][0].send(("load", recovered, replicas))
            to_coord[KILLED_WORKER][1].recv()
            print(f"  -> reborn with {len(recovered)} master values "
                  f"recovered from surviving replicas")
        for w in range(NUM_WORKERS):
            to_worker[w][0].send(("step",))
        for w in range(NUM_WORKERS):
            kind, worker, masters, replicas_view = to_coord[w][1].recv()
            assert kind == "barrier"
            last_master_view[worker] = masters
            last_replica_view[worker] = replicas_view
    values = {}
    for w in range(NUM_WORKERS):
        to_worker[w][0].send(("stop",))
        _, _, masters = to_coord[w][1].recv()
        values.update(masters)
        workers[w].join()
    return values


def main() -> None:
    graph = generators.power_law(400, alpha=2.0, seed=5, avg_degree=5.0,
                                 name="mp-demo")
    print(f"{NUM_WORKERS} worker processes, |V|={graph.num_vertices}, "
          f"|E|={graph.num_edges}, {ITERATIONS} PageRank iterations")
    print("\nclean run:")
    clean = run_cluster(graph, kill=False)
    print("  done")
    print("\nrun with a killed worker:")
    recovered = run_cluster(graph, kill=True)
    worst = max(abs(clean[v] - recovered[v]) for v in clean)
    print(f"\nmax |rank difference| clean vs recovered: {worst:.2e}")
    assert worst < 1e-12
    print("identical results — replicas were a complete backup.")


if __name__ == "__main__":
    main()
