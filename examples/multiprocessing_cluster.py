#!/usr/bin/env python3
"""Real-process demo: Imitator's replication protocol over OS processes.

A thin wrapper over :class:`repro.exec.mp.MultiprocessingBackend` —
the same superstep protocol the deterministic simulator runs, executed
across *actual* worker processes connected by pipes:

* the graph is hash edge-cut partitioned across N worker processes,
  each forked with its partition (masters, replicas, mirrors);
* every PageRank superstep, workers compute their masters locally and
  ship columnar sync batches to the replicas' hosts, meeting at the
  coordinator's commit barrier;
* one worker is killed mid-run with a real ``SIGKILL``; the
  coordinator detects the death via its heartbeat/sentinel loop and
  rebirths the partition on a fresh process from the replicas the
  *surviving* workers hold (no disk involved), and the job finishes
  with exactly the same ranks as a clean run;
* a simulator run of the identical spec cross-checks the distributed
  execution value-for-value and message-for-message.

Run with::

    python examples/multiprocessing_cluster.py
"""

from __future__ import annotations

from repro.exec.base import BackendSpec
from repro.exec.mp import MultiprocessingBackend
from repro.exec.simulator import SimulatorBackend
from repro.graph import generators

NUM_WORKERS = 4
ITERATIONS = 8
KILL_AT_ITERATION = 4
KILLED_WORKER = 2


def main() -> None:
    graph = generators.power_law(400, alpha=2.0, seed=5, avg_degree=5.0,
                                 name="mp-demo")
    print(f"{NUM_WORKERS} worker processes, |V|={graph.num_vertices}, "
          f"|E|={graph.num_edges}, {ITERATIONS} PageRank iterations")
    spec = BackendSpec(algorithm="pagerank", num_nodes=NUM_WORKERS,
                       ft_level=1, max_iterations=ITERATIONS)

    print("\nclean run (multiprocessing backend):")
    with MultiprocessingBackend() as backend:
        clean = backend.run(graph, spec)
    print(f"  done — {clean.total_msgs} logical messages in "
          f"{clean.total_batches} batches across {clean.iterations} "
          f"supersteps")

    print("\nrun with a SIGKILLed worker:")
    kill_spec = BackendSpec(
        algorithm="pagerank", num_nodes=NUM_WORKERS, ft_level=1,
        max_iterations=ITERATIONS,
        failures=((KILL_AT_ITERATION, (KILLED_WORKER,), "compute"),))
    with MultiprocessingBackend() as backend:
        survived = backend.run(graph, kill_spec)
    print(f"  worker {KILLED_WORKER} killed at iteration "
          f"{KILL_AT_ITERATION}; {survived.failures_recovered} rebirth "
          f"recovered its partition from surviving replicas")

    worst = max(abs(clean.values[v] - survived.values[v])
                for v in clean.values)
    print(f"\nmax |rank difference| clean vs recovered: {worst:.2e}")
    assert worst == 0.0
    print("identical results — replicas were a complete backup.")

    print("\ncross-backend check (deterministic simulator, same spec):")
    sim = SimulatorBackend().run(graph, spec)
    assert sim.values == clean.values
    assert sim.total_msgs == clean.total_msgs
    assert sim.msgs_by_kind == clean.msgs_by_kind
    print(f"  simulator agrees bit-for-bit: {sim.total_msgs} logical "
          f"messages, identical values on all {len(sim.values)} vertices.")


if __name__ == "__main__":
    main()
