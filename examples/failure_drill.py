#!/usr/bin/env python3
"""Failure drill: stress every recovery path in one script.

Reproduces, at toy scale, the paper's case study (Fig. 12) plus the
multi-failure experiments: a 20-iteration PageRank job on a social
graph survives (a) a single crash under Rebirth, Migration and the
checkpoint baseline, and (b) a double simultaneous crash at FT level 2,
printing a timeline of simulated cluster time per iteration.

Run with::

    python examples/failure_drill.py
"""

from __future__ import annotations

from repro import run_job
from repro.graph import generators

GRAPH = generators.social_network(3_000, avg_degree=8.0, seed=3,
                                  reciprocity=0.4, name="social")
ITERS = 20


def drill(label: str, **options):
    result = run_job(GRAPH, "pagerank", num_nodes=16, max_iterations=ITERS,
                     **options)
    finish = result.iteration_stats[-1].sim_clock_s
    print(f"\n{label}")
    print(f"  finished {result.num_iterations} iterations at simulated "
          f"t={finish:.2f}s")
    for stats in result.recoveries:
        print(f"  - iteration {stats.at_iteration}: nodes "
              f"{list(stats.failed_nodes)} failed; {stats.strategy} "
              f"recovered {stats.vertices_recovered} vertices in "
              f"{stats.total_s:.3f}s (+{stats.detection_s:.1f}s detection)")
    return result


def main() -> None:
    base = drill("BASE (no failures)", ft_mode="none")
    reb = drill("Rebirth: crash at iteration 6",
                recovery="rebirth", failures=[(6, [2], "after_commit")])
    mig = drill("Migration: crash at iteration 6",
                recovery="migration", num_standby=0,
                failures=[(6, [2], "after_commit")])
    drill("CKPT/4: crash at iteration 6", ft_mode="checkpoint",
          checkpoint_interval=4, failures=[(6, [2], "after_commit")])
    dbl = drill("FT/2 Migration: double crash at iteration 9",
                ft_level=2, recovery="migration", num_standby=0,
                failures=[(9, [4, 11])])

    print("\nsanity: all strategies converge to the same ranks")
    for result in (reb, mig, dbl):
        worst = max(abs(result.values[v] - base.values[v])
                    for v in range(GRAPH.num_vertices))
        assert worst < 1e-9, worst
    print("  ok (max deviation < 1e-9)")


if __name__ == "__main__":
    main()
