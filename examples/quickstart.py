#!/usr/bin/env python3
"""Quickstart: run PageRank on a simulated 16-node cluster, crash a
machine mid-run, and watch Imitator recover it from replicas.

Run with::

    python examples/quickstart.py
    python examples/quickstart.py --trace   # also dump phase traces

``--trace`` writes ``quickstart.trace.jsonl`` (one event per line) and
``quickstart.trace.json`` (Chrome ``trace_event`` format — open in
chrome://tracing or https://ui.perfetto.dev) for the failure run.
"""

from __future__ import annotations

import sys

from repro import make_engine, run_job
from repro.graph import generators
from repro.obs import Tracer


def main(trace: bool = False) -> None:
    # A small power-law web graph; 10% of vertices are "selfish"
    # (no out-edges), the case Section 4.4 of the paper optimises.
    graph = generators.power_law(2_000, alpha=2.0, seed=7,
                                 avg_degree=6.0, selfish_frac=0.1,
                                 name="quickstart-web")
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}")

    # Failure-free baseline.
    base = run_job(graph, "pagerank", num_nodes=16, max_iterations=10)
    print(f"\nbaseline: {base.num_iterations} iterations, "
          f"{base.total_messages} messages, "
          f"{base.total_sim_time_s:.2f}s simulated")

    # Same job, but node 3 crashes during iteration 5.  Imitator
    # detects the failure at the global barrier, reconstructs node 3's
    # vertices on a standby machine (Rebirth) and the job continues.
    tracer = Tracer(enabled=trace)
    engine = make_engine(graph, "pagerank", num_nodes=16,
                         max_iterations=10, recovery="rebirth",
                         tracer=tracer)
    engine.schedule_failure(5, [3])
    recovered = engine.run()
    stats = recovered.recoveries[0]
    print(f"\nwith failure: recovered {stats.vertices_recovered} "
          f"vertices of node {stats.failed_nodes[0]} in "
          f"{stats.total_s:.3f}s simulated "
          f"(reload {stats.reload_s:.3f}s, replay {stats.replay_s:.3f}s)")

    if trace:
        tracer.write_jsonl("quickstart.trace.jsonl")
        tracer.write_chrome_trace("quickstart.trace.json")
        top = tracer.top_level_spans()
        tiled = sum(s["dur_sim_s"] for s in top)
        print(f"\ntrace: {len(tracer.events)} events, "
              f"{len(top)} top-level spans tiling "
              f"{tiled:.2f}s of {recovered.total_sim_time_s:.2f}s")
        print("wrote quickstart.trace.jsonl and quickstart.trace.json "
              "(load the latter in chrome://tracing)")

    # Recovery is exact: every final rank matches the baseline.
    worst = max(abs(recovered.values[v] - base.values[v])
                for v in range(graph.num_vertices))
    print(f"max |rank difference| vs failure-free run: {worst:.2e}")
    assert worst == 0.0, "edge-cut Rebirth recovery is bitwise exact"

    top = sorted(base.values.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop-5 ranked vertices:")
    for vid, rank in top:
        print(f"  vertex {vid:5d}  rank {rank:.3f}")


if __name__ == "__main__":
    main(trace="--trace" in sys.argv[1:])
