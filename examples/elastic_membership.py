#!/usr/bin/env python3
"""Elastic clusters: join, drain, flap — and an adaptive K — mid-job.

The seed system's worker set was fixed at load time; this demo
(DESIGN.md §14) changes it while PageRank runs, and lets the
replication floor follow the observed failure rate:

* iteration 2 — a **new node joins**: an incremental seeded Fennel
  restream sheds masters from over-capacity nodes onto it, a throttled
  budget of moves per commit barrier, in-edge order preserved so the
  float folds never drift;
* iteration 5 — node 2 **flaps**: it stalls below the heartbeat death
  budget, is never declared failed, and re-integrates via a delta sync
  at the next barrier (the adaptive floor still takes note);
* iteration 7 — node 1 **drains**: its masters stream off, its last
  copies are re-homed, and it retires from the cluster;
* iteration 10 — a node is **killed**: recovery runs under a seeded
  per-term elected leader, the adaptive floor rises, background repair
  tops coverage back up — and after enough quiet barriers the floor
  relaxes back down.

The punchline is the last line: the churned run's values are
**bit-identical** to an untouched static run of the same job.

Run with::

    python examples/elastic_membership.py
"""

from __future__ import annotations

from repro.api import run_job
from repro.graph import generators

NUM_NODES = 6
ITERATIONS = 20


def main() -> None:
    graph = generators.power_law(800, alpha=2.0, seed=5, avg_degree=5.0,
                                 name="elastic-demo")
    kwargs = dict(num_nodes=NUM_NODES, ft_level=1, max_iterations=ITERATIONS,
                  seed=11, num_standby=2)

    print(f"== static run: {graph.num_vertices} vertices, "
          f"{NUM_NODES} nodes, K=1 ==")
    static = run_job(graph, "pagerank", **kwargs)

    print("== elastic run: join @2, flap @5, drain @7, kill @10, "
          "adaptive K in [1, 3] ==")
    elastic = run_job(graph, "pagerank", **kwargs,
                      ft_level_min=1, ft_level_max=3,
                      membership=[(2, "join", None),
                                  (5, "flap", 2),
                                  (7, "drain", 1)],
                      failures=[(10, [3], "compute")])

    memb = elastic.membership
    print(f"membership epoch .......... {memb['epoch']}")
    print(f"joins / drains / flaps .... {memb['joins']} / "
          f"{memb['drains']} / {memb['flaps']}")
    print(f"masters moved ............. {memb['moves']} "
          f"({memb['bytes']:,} bytes, "
          f"{memb['transfer_sim_s']:.3f} simulated s)")
    print(f"recovery leader terms ..... {memb['leader_term']}")
    print("adaptive floor trajectory:")
    for iteration, kind, floor in memb["floor_events"]:
        print(f"  iteration {iteration:>2}: {kind:<8} -> K target {floor}")

    same = elastic.values == static.values
    print(f"\nbit-identical to the static run: {same}")
    if not same:
        raise SystemExit("value divergence — this is a bug")


if __name__ == "__main__":
    main()
