"""Configuration objects for the cluster, engine and fault tolerance.

The defaults reproduce the paper's experimental setup (Section 6.1):
a 50-node cluster with 4 cores per node, 1 GigE networking, and HDFS
with a replication factor of three as the persistent store.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Default heartbeat tuning for the *multiprocessing* backend, in
#: **wall-clock** seconds.  The simulator's defaults
#: (:attr:`ClusterConfig.heartbeat_interval_s` = 0.5 sim-seconds with
#: :attr:`ClusterConfig.heartbeat_misses` = 14, the paper's ~7 s
#: detection span) model the paper's testbed; real forked workers are
#: polled much faster but with a far larger miss budget, because a
#: worker busy inside a compute round legitimately goes silent for many
#: polls.  Both backends resolve their defaults from this one module —
#: there is no second hardcoded tuning surface (DESIGN.md §14).
MP_HEARTBEAT_INTERVAL_S = 0.2
MP_HEARTBEAT_MISSES = 150


class PartitionStrategy(enum.Enum):
    """Graph partitioning strategies implemented by :mod:`repro.partition`."""

    #: Hash-based (random) edge-cut — Cyclops/Hama default.
    HASH_EDGE_CUT = "hash_edge_cut"
    #: Fennel streaming heuristic edge-cut (Section 6.6).
    FENNEL_EDGE_CUT = "fennel_edge_cut"
    #: Random vertex-cut — PowerGraph default.
    RANDOM_VERTEX_CUT = "random_vertex_cut"
    #: 2-D grid-constrained vertex-cut (GraphBuilder).
    GRID_VERTEX_CUT = "grid_vertex_cut"
    #: PowerLyra hybrid-cut — vertex-cut default in the paper (Section 6.10).
    HYBRID_CUT = "hybrid_cut"

    @property
    def is_edge_cut(self) -> bool:
        return self in (PartitionStrategy.HASH_EDGE_CUT,
                        PartitionStrategy.FENNEL_EDGE_CUT)

    @property
    def is_vertex_cut(self) -> bool:
        return not self.is_edge_cut


class FTMode(enum.Enum):
    """Which fault-tolerance mechanism the engine runs with."""

    #: No fault tolerance (the paper's BASE configuration).
    NONE = "none"
    #: Replication-based fault tolerance (Imitator, the contribution).
    REPLICATION = "replication"
    #: Near-optimal distributed checkpointing (Imitator-CKPT baseline).
    CHECKPOINT = "checkpoint"


class RecoveryStrategy(enum.Enum):
    """How a REPLICATION-mode cluster recovers from a crash (Section 5)."""

    #: Reconstruct the crashed node's state on a standby node.
    REBIRTH = "rebirth"
    #: Scatter the crashed node's work across the surviving nodes.
    MIGRATION = "migration"


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster (Section 6.1)."""

    #: Number of worker nodes participating in computation.
    num_nodes: int = 50
    #: Standby nodes available for Rebirth recovery (hot spares).
    num_standby: int = 1
    #: CPU cores per node (bounds intra-node compute parallelism).
    cores_per_node: int = 4
    #: RAM per node in bytes (10 GB in the paper); memory accounting only.
    ram_bytes: int = 10 * 1024 ** 3
    #: Heartbeat interval for failure detection, in seconds (Section 3.2).
    heartbeat_interval_s: float = 0.5
    #: Heartbeats missed before a node is declared dead.  The default
    #: yields the ~7 s conservative detection span the paper's case
    #: study shows (Fig. 12).
    heartbeat_misses: int = 14
    #: Root seed for all derived randomness.
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.num_standby < 0:
            raise ConfigError("num_standby must be >= 0")
        if self.cores_per_node < 1:
            raise ConfigError("cores_per_node must be >= 1")
        if self.heartbeat_interval_s <= 0:
            raise ConfigError("heartbeat_interval_s must be positive")


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Fault-tolerance policy for one job."""

    mode: FTMode = FTMode.REPLICATION
    #: Number of simultaneous machine failures to tolerate (K in the paper).
    ft_level: int = 1
    #: Recovery strategy for REPLICATION mode.
    recovery: RecoveryStrategy = RecoveryStrategy.REBIRTH
    #: Skip synchronising selfish vertices during normal execution
    #: (Section 4.4).  Never changes results, only message counts.
    selfish_optimization: bool = True
    #: Checkpoint interval in iterations (CHECKPOINT mode; Section 6.1
    #: reports interval=1 as the default upper-bound configuration).
    checkpoint_interval: int = 1
    #: Store checkpoints in an in-memory HDFS instead of disk-backed
    #: (the "in-memory HDFS" variant of Fig. 7).
    checkpoint_in_memory: bool = False
    #: Candidate sample size for randomized FT-replica placement.
    placement_candidates: int = 3
    #: Safety-net checkpoint interval for REPLICATION mode (iterations
    #: between low-frequency full snapshots; 0 disables).  When enabled,
    #: the fallback ladder can recover from >K simultaneous failures by
    #: reloading the snapshot instead of aborting (DESIGN.md §9).
    safety_checkpoint_interval: int = 0
    #: Adaptive replication floor bounds (DESIGN.md §14).  When the
    #: bounds differ from ``ft_level`` an :class:`repro.membership.FtPolicy`
    #: raises/lowers the *effective* K inside ``[ft_level_min,
    #: ft_level_max]`` from observed failure statistics, driving a
    #: throttled background repair.  ``None`` pins both bounds to
    #: ``ft_level`` (static K — the paper's behaviour, and the default).
    ft_level_min: int | None = None
    ft_level_max: int | None = None

    @property
    def floor_min(self) -> int:
        """Lower bound of the effective replication floor."""
        return self.ft_level if self.ft_level_min is None else self.ft_level_min

    @property
    def floor_max(self) -> int:
        """Upper bound of the effective replication floor."""
        return self.ft_level if self.ft_level_max is None else self.ft_level_max

    @property
    def adaptive_ft(self) -> bool:
        """Whether the adaptive-floor policy is enabled."""
        return (self.mode is FTMode.REPLICATION
                and self.floor_min != self.floor_max)

    def __post_init__(self) -> None:
        if self.ft_level < 0:
            raise ConfigError(f"ft_level must be >= 0, got {self.ft_level}")
        if self.mode is FTMode.REPLICATION and self.ft_level < 1:
            raise ConfigError("REPLICATION mode requires ft_level >= 1")
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1")
        if self.placement_candidates < 1:
            raise ConfigError("placement_candidates must be >= 1")
        if self.safety_checkpoint_interval < 0:
            raise ConfigError("safety_checkpoint_interval must be >= 0")
        if (self.safety_checkpoint_interval
                and self.mode is not FTMode.REPLICATION):
            raise ConfigError(
                "safety_checkpoint_interval only applies to REPLICATION "
                "mode (CHECKPOINT mode already snapshots)")
        if self.ft_level_min is not None or self.ft_level_max is not None:
            if self.mode is not FTMode.REPLICATION:
                raise ConfigError(
                    "ft_level_min/ft_level_max only apply to REPLICATION "
                    "mode")
            if self.floor_min < 1:
                raise ConfigError("ft_level_min must be >= 1")
            if not self.floor_min <= self.ft_level <= self.floor_max:
                raise ConfigError(
                    f"ft_level {self.ft_level} must lie inside "
                    f"[ft_level_min={self.floor_min}, "
                    f"ft_level_max={self.floor_max}]")


@dataclass(frozen=True)
class EngineConfig:
    """Execution policy for one job."""

    partition: PartitionStrategy = PartitionStrategy.HASH_EDGE_CUT
    #: Maximum number of iterations (supersteps) to run.
    max_iterations: int = 20
    #: Stop early once no vertex is active.
    halt_on_inactive: bool = True
    #: Collect per-iteration metrics (message/byte counters).
    collect_metrics: bool = True
    #: Ship sync/gather/activate traffic as one columnar batch per
    #: (src, dst, kind) pair per superstep (DESIGN.md §10).  When off,
    #: each record travels as its own single-record batch — wire-byte
    #: equivalent to the historical per-record path; kept as the
    #: before-side of the perf benchmark and for differential tests.
    batch_syncs: bool = True
    #: Elide sync records for masters whose committed update is a
    #: non-activating no-op (value and flags unchanged).  Never changes
    #: results; collapses traffic in the convergence tail.
    sync_elision: bool = True
    #: Run the structure-of-arrays fast path when the vertex program
    #: declares an array kernel (DESIGN.md §11).  Bit-for-bit equal to
    #: the scalar loop (the differential suite is the oracle); programs
    #: without a kernel — and edge-mutating ones — always take the
    #: scalar path regardless.  Off = force the scalar loop for A/B.
    vectorized: bool = True
    #: Message combining (DESIGN.md §15).  When the program declares a
    #: commutative-associative ``combiner`` (sum/min/max), same-
    #: destination-gid gather contributions fold into one partial per
    #: (dst_node, gid) before ``Network.send`` — one combined record on
    #: the wire, with pre-combine counts tracked in ``net.combine.*``.
    #: Off = ship the raw per-edge contributions (``RawGatherBatch``)
    #: and fold them on the receiver: bit-identical values and
    #: identical *logical* traffic (the cost model is unchanged), but
    #: ~in-degree× more physical gather records — kept as the
    #: before-side of the message-reduction benchmark and for
    #: differential tests.  Programs with no combiner are unaffected.
    combining: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")


@dataclass
class JobConfig:
    """Bundle of the three configs describing one complete run."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    ft: FaultToleranceConfig = field(default_factory=FaultToleranceConfig)

    def validate(self) -> None:
        """Cross-field validation that single configs cannot express."""
        if self.ft.mode is FTMode.REPLICATION:
            if self.ft.ft_level >= self.cluster.num_nodes:
                raise ConfigError(
                    f"ft_level {self.ft.ft_level} needs at least "
                    f"{self.ft.ft_level + 1} nodes, cluster has "
                    f"{self.cluster.num_nodes}")
            if self.ft.floor_max >= self.cluster.num_nodes:
                raise ConfigError(
                    f"ft_level_max {self.ft.floor_max} needs at least "
                    f"{self.ft.floor_max + 1} nodes, cluster has "
                    f"{self.cluster.num_nodes}")
