"""High-level façade: configure and run one graph job in a line or two.

Example
-------
>>> from repro import api
>>> from repro.graph import generators
>>> graph = generators.ring(64)
>>> result = api.run_job(graph, "pagerank", num_nodes=8, max_iterations=5)
>>> len(result.values)
64
"""

from __future__ import annotations

from typing import Any

from repro.algorithms import ALGORITHMS, AlternatingLeastSquares
from repro.cluster.cluster import Cluster
from repro.config import (
    ClusterConfig,
    EngineConfig,
    FaultToleranceConfig,
    FTMode,
    JobConfig,
    PartitionStrategy,
    RecoveryStrategy,
)
from repro.engine.engine import Engine, RunResult
from repro.engine.vertex_program import VertexProgram
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.obs import Tracer


def make_program(algorithm: str | VertexProgram, graph: Graph,
                 **kwargs: Any) -> VertexProgram:
    """Instantiate a vertex program by name.

    ALS infers its user count from bipartite generator metadata unless
    ``num_users`` is passed explicitly.
    """
    if isinstance(algorithm, VertexProgram):
        return algorithm
    if algorithm not in ALGORITHMS:
        raise ConfigError(
            f"unknown algorithm {algorithm!r}; choices: {sorted(ALGORITHMS)}")
    cls = ALGORITHMS[algorithm]
    if cls is AlternatingLeastSquares and "num_users" not in kwargs:
        # Bipartite convention: users are the vertices with out-edges
        # to higher-numbered items; fall back to a half split.
        kwargs["num_users"] = graph.num_vertices // 2
    return cls(**kwargs)


def make_engine(graph: Graph, algorithm: str | VertexProgram,
                num_nodes: int = 50,
                ft_mode: FTMode | str = FTMode.REPLICATION,
                ft_level: int = 1,
                recovery: RecoveryStrategy | str = RecoveryStrategy.REBIRTH,
                partition: PartitionStrategy | str =
                PartitionStrategy.HASH_EDGE_CUT,
                max_iterations: int = 20,
                checkpoint_interval: int = 1,
                checkpoint_in_memory: bool = False,
                safety_checkpoint_interval: int = 0,
                selfish_optimization: bool = True,
                batch_syncs: bool = True,
                sync_elision: bool = True,
                vectorized: bool = True,
                combining: bool = True,
                num_standby: int = 1,
                seed: int = 2014,
                data_scale: float = 1.0,
                ft_level_min: int | None = None,
                ft_level_max: int | None = None,
                heartbeat_interval_s: float | None = None,
                heartbeat_misses: int | None = None,
                membership: Any = (),
                algorithm_kwargs: dict[str, Any] | None = None,
                cluster: Cluster | None = None,
                tracer: Tracer | None = None) -> Engine:
    """Build a fully wired :class:`Engine` from keyword-level options.

    ``safety_checkpoint_interval`` (replication modes only) adds
    opt-in safety-net checkpoints every N barriers so recovery can fall
    back to checkpoint reload when more than ``ft_level`` nodes fail at
    once; ``0`` (the default) disables them.

    ``data_scale`` projects data-proportional simulated costs to the
    original dataset's scale (see
    :attr:`repro.costmodel.CostModel.data_scale`); benchmarks pass the
    stand-in's downscale factor here.

    ``ft_level_min`` / ``ft_level_max`` (replication only) open an
    adaptive replication-floor band around ``ft_level`` (DESIGN.md
    §14); ``heartbeat_interval_s`` / ``heartbeat_misses`` override the
    failure detector's tuning, and ``membership`` schedules elastic
    events as ``(iteration, kind, target)`` or
    ``(iteration, kind, target, count)`` tuples with kind one of
    ``join`` / ``drain`` / ``flap``.
    """
    if isinstance(ft_mode, str):
        ft_mode = FTMode(ft_mode)
    if isinstance(recovery, str):
        recovery = RecoveryStrategy(recovery)
    if isinstance(partition, str):
        partition = PartitionStrategy(partition)
    cluster_kwargs: dict[str, Any] = {}
    if heartbeat_interval_s is not None:
        cluster_kwargs["heartbeat_interval_s"] = heartbeat_interval_s
    if heartbeat_misses is not None:
        cluster_kwargs["heartbeat_misses"] = heartbeat_misses
    replication = ft_mode is FTMode.REPLICATION
    job = JobConfig(
        cluster=ClusterConfig(num_nodes=num_nodes, num_standby=num_standby,
                              seed=seed, **cluster_kwargs),
        engine=EngineConfig(partition=partition,
                            max_iterations=max_iterations,
                            batch_syncs=batch_syncs,
                            sync_elision=sync_elision,
                            vectorized=vectorized,
                            combining=combining),
        ft=FaultToleranceConfig(
            mode=ft_mode,
            ft_level=ft_level if replication else 0,
            ft_level_min=ft_level_min if replication else None,
            ft_level_max=ft_level_max if replication else None,
            recovery=recovery,
            checkpoint_interval=checkpoint_interval,
            checkpoint_in_memory=checkpoint_in_memory,
            safety_checkpoint_interval=(
                safety_checkpoint_interval if replication else 0),
            selfish_optimization=selfish_optimization),
    )
    if cluster is None and data_scale != 1.0:
        from dataclasses import replace as _replace

        from repro.costmodel import DEFAULT_COST_MODEL
        model = _replace(DEFAULT_COST_MODEL, data_scale=data_scale)
        cluster = Cluster(job.cluster, cost_model=model,
                          store_in_memory=job.ft.checkpoint_in_memory)
    program = make_program(algorithm, graph, **(algorithm_kwargs or {}))
    engine = Engine(graph, program, job=job, cluster=cluster, tracer=tracer)
    for event in membership:
        iteration, kind, target = event[0], event[1], event[2]
        count = event[3] if len(event) > 3 else 1
        engine.schedule_membership(iteration, kind, target=target,
                                   count=count)
    return engine


def run_job(graph: Graph, algorithm: str | VertexProgram,
            **options: Any) -> RunResult:
    """One-call variant of :func:`make_engine` + :meth:`Engine.run`.

    Accepts the same keyword options as :func:`make_engine`, plus
    ``failures``: a list of ``(iteration, nodes)`` or
    ``(iteration, nodes, phase)`` crash injections.
    """
    failures = options.pop("failures", ())
    engine = make_engine(graph, algorithm, **options)
    for failure in failures:
        engine.schedule_failure(*failure)
    return engine.run()
