"""Run reports and comparison helpers used by the benchmark harness."""

from repro.metrics.report import (
    OverheadReport,
    compare_overhead,
    message_overhead,
    total_cluster_memory,
)

__all__ = [
    "OverheadReport",
    "compare_overhead",
    "message_overhead",
    "total_cluster_memory",
]
