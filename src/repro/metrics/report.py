"""Comparison reports backing the paper's overhead figures.

The central quantity is *runtime overhead over BASE* (Figs. 7, 10b,
11a, 13, 14b, 15a): the relative slowdown of a fault-tolerant
configuration against the same job without fault tolerance, measured on
simulated execution time excluding recovery events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.engine import RunResult


@dataclass(frozen=True)
class OverheadReport:
    """One FT configuration compared against its BASE run."""

    label: str
    base_time_s: float
    ft_time_s: float

    @property
    def overhead(self) -> float:
        """Relative slowdown, e.g. 0.02 = 2 percent."""
        if self.base_time_s == 0:
            return 0.0
        return self.ft_time_s / self.base_time_s - 1.0


def execution_time(result: RunResult) -> float:
    """Normal-execution simulated time (checkpoints included, recovery
    excluded): the quantity the overhead figures compare."""
    return sum(s.sim_time_s for s in result.iteration_stats)


def compare_overhead(label: str, base: RunResult,
                     ft: RunResult) -> OverheadReport:
    return OverheadReport(label=label,
                          base_time_s=execution_time(base),
                          ft_time_s=execution_time(ft))


def message_overhead(base: RunResult, ft: RunResult) -> float:
    """Extra messages of an FT run relative to BASE (Fig. 8b)."""
    if base.total_messages == 0:
        return 0.0
    return ft.total_messages / base.total_messages - 1.0


def total_cluster_memory(engine) -> int:
    """Sum of per-node resident graph bytes (Tables 3 and 7)."""
    return sum(engine.memory_report().values())
