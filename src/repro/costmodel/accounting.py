"""Timing helpers shared by the engine and the recovery paths.

Simulated time is tracked per node in a :class:`NodeClocks` vector.
Within one BSP superstep each node advances its own clock by its local
compute and communication time; the global barrier then raises every
clock to the maximum (plus barrier latency), which is exactly how a
synchronous engine's wall time composes (Section 2.1).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.costmodel.model import CostModel


class NodeClocks:
    """Per-node simulated clocks with a barrier max-reduce."""

    def __init__(self, num_nodes: int, start: float = 0.0):
        self._t = [start] * num_nodes

    def __len__(self) -> int:
        return len(self._t)

    def time_of(self, node: int) -> float:
        return self._t[node]

    def advance(self, node: int, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._t[node] += seconds

    def barrier(self, model: CostModel,
                participants: Iterable[int] | None = None) -> float:
        """Raise participating clocks to their max plus barrier latency.

        Returns the post-barrier time.  ``participants`` defaults to all
        nodes; crashed nodes are excluded by the caller.
        """
        ids = list(participants) if participants is not None \
            else range(len(self._t))
        ids = list(ids)
        if not ids:
            return max(self._t, default=0.0)
        peak = max(self._t[i] for i in ids) + model.barrier_latency_s
        for i in ids:
            self._t[i] = peak
        return peak

    def snapshot(self) -> list[float]:
        return list(self._t)

    def global_max(self) -> float:
        return max(self._t, default=0.0)

    def add_node(self, start: float) -> int:
        """Register a clock for a node joining late (a reborn standby)."""
        self._t.append(start)
        return len(self._t) - 1


def compute_time(model: CostModel, num_edges: int, num_vertices: int,
                 cores: int) -> float:
    """Simulated compute time for one node's local work in one superstep."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    work = (num_edges * model.per_edge_compute_s
            + num_vertices * model.per_vertex_compute_s)
    return work * model.data_scale / cores


def pairwise_comm_time(model: CostModel,
                       sent_bytes: Mapping[int, Mapping[int, int]],
                       sent_msgs: Mapping[int, Mapping[int, int]],
                       node: int) -> float:
    """Simulated communication time for ``node`` in one superstep.

    ``sent_bytes[src][dst]`` holds batched payload bytes for the step.
    A node's NIC serialises its outgoing batches and, concurrently, its
    incoming batches; BSP overlap makes the slower direction dominate.
    Per-message CPU is paid on both sides.
    """
    out_bytes = sum(sent_bytes.get(node, {}).values())
    out_msgs = sum(sent_msgs.get(node, {}).values())
    in_bytes = 0
    in_msgs = 0
    for src, by_dst in sent_bytes.items():
        if src == node:
            continue
        in_bytes += by_dst.get(node, 0)
    for src, by_dst in sent_msgs.items():
        if src == node:
            continue
        in_msgs += by_dst.get(node, 0)
    out_peers = sum(1 for b in sent_bytes.get(node, {}).values() if b > 0)
    wire = max(out_bytes, in_bytes) / model.network_bandwidth_bps
    cpu = (out_msgs + in_msgs) * model.per_message_cpu_s
    return (wire + cpu) * model.data_scale \
        + out_peers * model.network_latency_s


def storage_write_time(model: CostModel, nbytes: int, num_ops: int,
                       in_memory: bool) -> float:
    """Simulated time for one node to write ``nbytes`` to the DFS."""
    write_bps, _, op_latency = model.dfs_params(in_memory)
    return (nbytes * model.data_scale / write_bps
            + max(1, num_ops) * op_latency)


def storage_read_time(model: CostModel, nbytes: int, num_ops: int,
                      in_memory: bool) -> float:
    """Simulated time for one node to read ``nbytes`` from the DFS."""
    _, read_bps, op_latency = model.dfs_params(in_memory)
    return (nbytes * model.data_scale / read_bps
            + max(1, num_ops) * op_latency)


def barrier_max(times: Iterable[float], model: CostModel) -> float:
    """Free-standing barrier reduce used by recovery phase accounting."""
    ts = list(times)
    if not ts:
        return 0.0
    return max(ts) + model.barrier_latency_s
