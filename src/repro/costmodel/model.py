"""The linear cost model and its calibrated constants.

Calibration targets (from the paper, Section 6):

* one PageRank iteration on Wiki-scale data across 50 nodes takes a few
  seconds (Fig. 2a reference bars);
* one synchronous checkpoint to HDFS costs 1.08-3.17 s and is dominated
  by fixed per-operation cost, being "insensitive to the data size"
  (Section 6.2) — hence the large ``dfs_op_latency_s``;
* failure detection spans about 7 s in the case study (Fig. 12) with a
  conservative 500 ms heartbeat (Section 3.2);
* recovering ~1 M vertices takes 2-4 s (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Constants mapping counted work onto simulated seconds."""

    #: Point-to-point NIC bandwidth in bytes/second (1 GigE).
    network_bandwidth_bps: float = 125e6
    #: Fixed latency per batched point-to-point transfer.
    network_latency_s: float = 1e-4
    #: CPU cost to serialise/deserialise one logical message.
    per_message_cpu_s: float = 4e-7
    #: Compute cost per edge processed in gather/compute (per core).
    per_edge_compute_s: float = 9e-8
    #: Compute cost per vertex updated in apply/commit (per core).
    per_vertex_compute_s: float = 3e-7

    #: Effective per-node write throughput to disk-backed HDFS in
    #: bytes/second of *user* data (3x replication + disk already folded
    #: in).
    dfs_write_bps: float = 30e6
    #: Effective per-node read throughput from disk-backed HDFS.
    dfs_read_bps: float = 60e6
    #: Fixed cost per DFS operation (NameNode round trips, pipeline
    #: setup, sync) — the dominant term for small snapshots, which is
    #: why the paper finds checkpoints "insensitive to the data size"
    #: at 1.08-3.17 s each (Section 6.2).
    dfs_op_latency_s: float = 1.3

    #: Per-record CPU cost of serialising one vertex into a snapshot
    #: (Writable encoding + HDFS client overhead).  Calibrated from the
    #: paper's 1.08-3.17 s per-checkpoint spread across dataset sizes
    #: (Section 6.2).
    ckpt_per_record_s: float = 8e-6

    #: In-memory DFS variant (Fig. 7's "in-memory HDFS" bars): the 3x
    #: replication still crosses the network, so bandwidth is bounded by
    #: the NIC, not RAM.
    memdfs_write_bps: float = 90e6
    memdfs_read_bps: float = 180e6
    memdfs_op_latency_s: float = 0.12

    #: Cost of one global barrier (ZooKeeper round trips).
    barrier_latency_s: float = 0.03
    #: Fixed per-node framework cost of one superstep (scheduling,
    #: queue management, JVM bookkeeping in the Hama-based systems) —
    #: independent of the data size, so it dominates sparse supersteps
    #: like an SSSP frontier tail.
    superstep_overhead_s: float = 0.08
    #: Per-vertex cost of scanning local state during recovery reload.
    per_vertex_scan_s: float = 1.2e-7
    #: Per-vertex cost of placing a recovered vertex into the array
    #: (lock-free positional insert, Section 5.1.2).
    per_vertex_reconstruct_s: float = 2.5e-7
    #: Fixed cost of one cluster-wide recovery coordination round
    #: (scan + batched exchange + sync).  Rebirth needs one; Migration
    #: needs several (promotion, replica creation, location updates,
    #: FT restoration), which is why it trails Rebirth on small graphs
    #: (Section 6.4).
    recovery_round_s: float = 0.15

    #: Workload scale multiplier applied to every *data-proportional*
    #: cost term (bytes moved, edges processed, vertices scanned).  The
    #: stand-in datasets are 200-5000x smaller than the paper's; running
    #: a job with ``data_scale`` set to the dataset's scale factor
    #: projects simulated times back to paper scale while fixed
    #: latencies (barriers, DFS round trips, detection) stay physical.
    #: Ratios (overhead percentages) are unaffected by construction.
    data_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("network_bandwidth_bps", "dfs_write_bps",
                     "dfs_read_bps", "memdfs_write_bps", "memdfs_read_bps"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    # -- storage parameter views -------------------------------------

    def dfs_params(self, in_memory: bool) -> tuple[float, float, float]:
        """Return ``(write_bps, read_bps, op_latency_s)`` for a DFS kind."""
        if in_memory:
            return (self.memdfs_write_bps, self.memdfs_read_bps,
                    self.memdfs_op_latency_s)
        return (self.dfs_write_bps, self.dfs_read_bps, self.dfs_op_latency_s)


#: Shared default instance; all entry points accept an override.
DEFAULT_COST_MODEL = CostModel()
