"""Calibrated simulated-time accounting.

The reproduction runs on one machine, so wall-clock time says nothing
about a 50-node 1-GigE cluster.  Instead, every subsystem *counts* its
work (edges processed, messages and bytes exchanged, snapshot bytes
written) and this package converts counts into simulated seconds with a
simple, documented linear model.  Absolute constants are calibrated
against the paper's reported magnitudes; the benchmark contract is on
*shape* (orderings, factors, crossovers), not absolute numbers.
"""

from repro.costmodel.model import CostModel, DEFAULT_COST_MODEL
from repro.costmodel.accounting import (
    NodeClocks,
    barrier_max,
    compute_time,
    pairwise_comm_time,
    storage_read_time,
    storage_write_time,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "NodeClocks",
    "barrier_max",
    "compute_time",
    "pairwise_comm_time",
    "storage_read_time",
    "storage_write_time",
]
