"""Message payloads exchanged by the engine and recovery paths.

Sizes mirror the compact encodings of the real systems: a plain sync is
an id + value + flag byte; a mirror (full-state) sync adds the dynamic
full-state extras (Section 4.2); recovery messages carry whole vertices
and are batched per destination (Section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.sizing import BYTES_PER_EDGE, BYTES_PER_VID


@dataclass(frozen=True)
class SyncPayload:
    """Master -> replica value synchronisation."""

    gid: int
    value: Any
    #: Did this update request activation of out-neighbors?
    activates: bool

    def nbytes(self, value_nbytes: int) -> int:
        return BYTES_PER_VID + value_nbytes + 1


@dataclass(frozen=True)
class MirrorSyncPayload:
    """Master -> mirror full-state synchronisation.

    Beyond the plain sync, carries the dynamic full-state extras: the
    master's self-sustained activity for the next superstep (remote
    activations are replayed at recovery instead, Section 5.1.3) and —
    for edge-mutating algorithms under edge-cut — the superstep's edge
    updates, so the mirror's duplicated edge list stays fresh
    (Section 4.3: edges are "duplicated and synchronized to replicas
    upon updates").
    """

    gid: int
    value: Any
    activates: bool
    #: Master stays active next superstep by its own computation.
    self_active: bool
    #: ``(in-edge index, new weight)`` pairs; empty for the common
    #: immutable-edge algorithms.
    edge_updates: tuple[tuple[int, float], ...] = ()

    def nbytes(self, value_nbytes: int) -> int:
        return (BYTES_PER_VID + value_nbytes + 2
                + 12 * len(self.edge_updates))


@dataclass(frozen=True)
class GatherPayload:
    """Replica -> master partial accumulator (vertex-cut gather)."""

    gid: int
    acc: Any

    def nbytes(self, acc_nbytes: int) -> int:
        return BYTES_PER_VID + acc_nbytes


@dataclass(frozen=True)
class ActivatePayload:
    """Activation signal for a vertex's master (vertex-cut scatter)."""

    gid: int

    def nbytes(self) -> int:
        return BYTES_PER_VID


@dataclass(frozen=True)
class ActiveBroadcastPayload:
    """Master -> replicas: activity flag for the coming superstep."""

    gid: int
    active: bool

    def nbytes(self) -> int:
        return BYTES_PER_VID + 1


@dataclass
class RecoveredVertex:
    """One vertex shipped in a recovery message (Section 5.1).

    ``position`` is the array slot the vertex must occupy at the
    destination, enabling the lock-free positional reconstruction.
    ``full_edges`` travels only for masters under edge-cut.
    """

    gid: int
    role: str
    position: int
    value: Any
    active: bool
    last_activates: bool
    out_degree: int
    in_degree: int
    master_node: int
    ft_only: bool = False
    selfish: bool = False
    mirror_id: int = -1
    #: The master's committed self-sustained activity (what a live
    #: mirror's ``mirror_self_active`` holds) — distinct from ``active``,
    #: which includes remote activations / broadcast state.
    self_active: bool = False
    #: The activity flag the replicas collectively believe (vertex-cut
    #: broadcast state); restored into ``replicas_known_active``.
    known_active: bool = False
    #: Iteration of the vertex's last committed update, preserved so a
    #: later recovery replays exactly the activations that were lost.
    last_update_iter: int = -1
    #: (src_gid, src_position, weight) triples; None unless an
    #: edge-cut master/mirror is being recovered.
    full_edges: list[tuple[int, int, float]] | None = None
    #: Copy of the master metadata (masters and mirrors only).
    replica_positions: dict[int, int] | None = None
    mirror_nodes: list[int] | None = None
    master_position: int = -1

    def nbytes(self, value_nbytes: int) -> int:
        size = BYTES_PER_VID + 8 + value_nbytes + 4
        if self.full_edges is not None:
            size += len(self.full_edges) * BYTES_PER_EDGE
        if self.replica_positions is not None:
            size += len(self.replica_positions) * (BYTES_PER_VID + 4)
        if self.mirror_nodes is not None:
            size += len(self.mirror_nodes) * 4
        return size


@dataclass
class RecoveryBatch:
    """A batch of recovered vertices plus shared global state.

    All recovery messages are sent in a batched way to cut message
    overhead (Section 5.1.1); the batch also carries global state such
    as the iteration count the destination must resume from.
    """

    src_node: int
    vertices: list[RecoveredVertex] = field(default_factory=list)
    iteration: int = 0

    def nbytes(self, value_nbytes_of) -> int:
        return 16 + sum(v.nbytes(value_nbytes_of(v.value))
                        for v in self.vertices)
