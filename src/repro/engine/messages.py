"""Message payloads exchanged by the engine and recovery paths.

Sizes mirror the compact encodings of the real systems: a plain sync is
an id + value + flag byte; a mirror (full-state) sync adds the dynamic
full-state extras (Section 4.2); recovery messages carry whole vertices
and are batched per destination (Section 5.1.1).

Steady-state traffic is batched the same way (DESIGN.md §10): the
engine accumulates one *columnar* batch per ``(src, dst, kind)`` pair
per superstep and ships it as a single :class:`~repro.cluster.network.
Message`.  A batch holds parallel arrays (gids, values, packed flag
bits, per-record wire sizes), so the per-superstep object count is
O(node pairs), not O(vertices x replicas).  The per-record dataclasses
below remain the canonical definition of each record's wire size; the
batches replicate those sizes exactly, and the transport charges one
header per batch instead of one per record.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.utils.sizing import BYTES_PER_EDGE, BYTES_PER_VID


@dataclass(frozen=True)
class SyncPayload:
    """Master -> replica value synchronisation."""

    gid: int
    value: Any
    #: Did this update request activation of out-neighbors?
    activates: bool

    def nbytes(self, value_nbytes: int) -> int:
        return BYTES_PER_VID + value_nbytes + 1


@dataclass(frozen=True)
class MirrorSyncPayload:
    """Master -> mirror full-state synchronisation.

    Beyond the plain sync, carries the dynamic full-state extras: the
    master's self-sustained activity for the next superstep (remote
    activations are replayed at recovery instead, Section 5.1.3) and —
    for edge-mutating algorithms under edge-cut — the superstep's edge
    updates, so the mirror's duplicated edge list stays fresh
    (Section 4.3: edges are "duplicated and synchronized to replicas
    upon updates").
    """

    gid: int
    value: Any
    activates: bool
    #: Master stays active next superstep by its own computation.
    self_active: bool
    #: ``(in-edge index, new weight)`` pairs; empty for the common
    #: immutable-edge algorithms.
    edge_updates: tuple[tuple[int, float], ...] = ()

    def nbytes(self, value_nbytes: int) -> int:
        return (BYTES_PER_VID + value_nbytes + 2
                + 12 * len(self.edge_updates))


@dataclass(frozen=True)
class GatherPayload:
    """Replica -> master partial accumulator (vertex-cut gather)."""

    gid: int
    acc: Any

    def nbytes(self, acc_nbytes: int) -> int:
        return BYTES_PER_VID + acc_nbytes


@dataclass(frozen=True)
class ActivatePayload:
    """Activation signal for a vertex's master (vertex-cut scatter)."""

    gid: int

    def nbytes(self) -> int:
        return BYTES_PER_VID


@dataclass(frozen=True)
class ActiveBroadcastPayload:
    """Master -> replicas: activity flag for the coming superstep."""

    gid: int
    active: bool

    def nbytes(self) -> int:
        return BYTES_PER_VID + 1


class SyncBatch:
    """Columnar master -> replica sync batch (one per (src, dst, kind)).

    ``full_state=False`` batches plain :class:`SyncPayload` records
    (kind ``SYNC``); ``full_state=True`` batches
    :class:`MirrorSyncPayload` records (kind ``MIRROR_SYNC``), adding
    the self-active flag bit and per-record edge-update lists.

    ``sizes[i]`` is record *i*'s wire size, matching the per-record
    payload's ``nbytes`` exactly, so a batch's payload bytes are the
    sum of its records and chaos sub-batch splits stay byte-exact.
    """

    is_columnar = True

    FLAG_ACTIVATES = 0x1
    FLAG_SELF_ACTIVE = 0x2

    __slots__ = ("full_state", "gids", "values", "flags", "sizes",
                 "edge_updates")

    def __init__(self, full_state: bool = False):
        self.full_state = full_state
        self.gids: list[int] = []
        self.values: list[Any] = []
        #: Packed per-record bits: FLAG_ACTIVATES | FLAG_SELF_ACTIVE.
        self.flags: list[int] = []
        self.sizes: list[int] = []
        #: Per-record ``((edge index, new weight), ...)`` tuples;
        #: ``None`` for plain (non-full-state) batches.
        self.edge_updates: list[tuple] | None = [] if full_state else None

    def append(self, gid: int, value: Any, value_nbytes: int,
               activates: bool, self_active: bool = False,
               edge_updates: tuple = ()) -> None:
        self.gids.append(gid)
        self.values.append(value)
        flags = self.FLAG_ACTIVATES if activates else 0
        if self_active:
            flags |= self.FLAG_SELF_ACTIVE
        self.flags.append(flags)
        if self.full_state:
            self.edge_updates.append(tuple(edge_updates))
            self.sizes.append(BYTES_PER_VID + value_nbytes + 2
                              + 12 * len(edge_updates))
        else:
            self.sizes.append(BYTES_PER_VID + value_nbytes + 1)

    @classmethod
    def from_columns(cls, gids: list, values: list, flags: list,
                     sizes: list, full_state: bool = False,
                     edge_updates: list | None = None) -> "SyncBatch":
        """Adopt pre-built columns (vectorized path; no per-record calls).

        The columns are adopted as-is — callers hand over ownership.
        ``sizes`` must match what :meth:`append` would have computed so
        the byte accounting stays identical to the record-at-a-time
        build.
        """
        batch = cls(full_state)
        batch.gids = gids
        batch.values = values
        batch.flags = flags
        batch.sizes = sizes
        if full_state:
            batch.edge_updates = (edge_updates if edge_updates is not None
                                  else [()] * len(gids))
        return batch

    @property
    def record_count(self) -> int:
        return len(self.gids)

    def nbytes(self) -> int:
        return sum(self.sizes)

    def record_nbytes(self, index: int) -> int:
        return self.sizes[index]

    def activates(self, index: int) -> bool:
        return bool(self.flags[index] & self.FLAG_ACTIVATES)

    def self_active(self, index: int) -> bool:
        return bool(self.flags[index] & self.FLAG_SELF_ACTIVE)

    def select(self, indices: Iterable[int]) -> "SyncBatch":
        """New batch holding the given records (columnar slice)."""
        out = SyncBatch(self.full_state)
        for i in indices:
            out.gids.append(self.gids[i])
            out.values.append(self.values[i])
            out.flags.append(self.flags[i])
            out.sizes.append(self.sizes[i])
            if self.full_state:
                out.edge_updates.append(self.edge_updates[i])
        return out

    def clone(self) -> "SyncBatch":
        """Independent copy (payload-aware duplicate, no deepcopy)."""
        return self.select(range(len(self.gids)))


class GatherBatch:
    """Columnar replica -> master partial-accumulator batch.

    Each record is one *combined* partial per ``(dst_node, gid)`` —
    the sender has already folded all its same-gid contributions
    (DESIGN.md §15).  ``folded`` is an optional metadata column
    recording how many pre-combine contributions each partial absorbed
    (``max(1, contributions)`` — a record with no live contribution
    still ships the init accumulator).  It feeds the ``net.combine.*``
    accounting only: it costs no wire bytes and defaults to one per
    record for programs without a declared combiner.
    """

    is_columnar = True

    __slots__ = ("gids", "accs", "sizes", "folded")

    def __init__(self):
        self.gids: list[int] = []
        self.accs: list[Any] = []
        self.sizes: list[int] = []
        #: Pre-combine contribution count per record; None => all 1.
        self.folded: list[int] | None = None

    def append(self, gid: int, acc: Any, acc_nbytes: int,
               folded: int | None = None) -> None:
        self.gids.append(gid)
        self.accs.append(acc)
        self.sizes.append(BYTES_PER_VID + acc_nbytes)
        if folded is not None:
            if self.folded is None:
                self.folded = [1] * (len(self.gids) - 1)
            self.folded.append(folded)
        elif self.folded is not None:
            self.folded.append(1)

    @classmethod
    def from_columns(cls, gids: list, accs: list, sizes: list,
                     folded: list | None = None) -> "GatherBatch":
        """Adopt pre-built columns (vectorized path)."""
        batch = cls()
        batch.gids = gids
        batch.accs = accs
        batch.sizes = sizes
        batch.folded = folded
        return batch

    @property
    def record_count(self) -> int:
        return len(self.gids)

    @property
    def physical_record_count(self) -> int:
        """Records actually on the wire (== logical: already combined)."""
        return len(self.gids)

    @property
    def precombine_record_count(self) -> int:
        """Contributions that would have shipped uncombined."""
        if self.folded is None:
            return len(self.gids)
        return sum(self.folded)

    def nbytes(self) -> int:
        return sum(self.sizes)

    def physical_nbytes(self) -> int:
        return sum(self.sizes)

    def record_nbytes(self, index: int) -> int:
        return self.sizes[index]

    def record_folded(self, index: int) -> int:
        return 1 if self.folded is None else self.folded[index]

    def select(self, indices: Iterable[int]) -> "GatherBatch":
        out = GatherBatch()
        if self.folded is not None:
            out.folded = []
        for i in indices:
            out.gids.append(self.gids[i])
            out.accs.append(self.accs[i])
            out.sizes.append(self.sizes[i])
            if self.folded is not None:
                out.folded.append(self.folded[i])
        return out

    def clone(self) -> "GatherBatch":
        return self.select(range(len(self.gids)))


class RawGatherBatch:
    """Uncombined replica -> master gather batch (combining *off*).

    The differential baseline for the combining layer: instead of one
    folded partial per ``(dst_node, gid)``, every per-edge contribution
    travels and the receiver folds each record's group on arrival, in
    shipped order (DESIGN.md §15).

    The batch stays *logically* identical to its combined twin so the
    two-tier cost model is unchanged: ``record_count``, ``nbytes()``
    and ``record_nbytes`` all report the combined (logical) units —
    ``sizes[i]`` is the size the folded partial would occupy — while
    ``physical_record_count`` / ``physical_nbytes`` report what is
    really on the wire.  Record-level chaos therefore draws the same
    per-record verdict sequence in both modes, and dropping record *i*
    drops its whole contribution group — exactly the records that
    would have folded into the lost partial.
    """

    is_columnar = True

    __slots__ = ("gids", "counts", "contribs", "sizes", "phys_sizes")

    def __init__(self):
        self.gids: list[int] = []
        #: Contributions shipped for record i (0 => init-only record).
        self.counts: list[int] = []
        #: All contributions, flattened, grouped per record in order.
        self.contribs: list[Any] = []
        #: Logical (combined-equivalent) wire size per record.
        self.sizes: list[int] = []
        #: Physical wire size per record (gid + every contribution).
        self.phys_sizes: list[int] = []

    def append(self, gid: int, contributions: list, logical_nbytes: int,
               physical_nbytes: int) -> None:
        self.gids.append(gid)
        self.counts.append(len(contributions))
        self.contribs.extend(contributions)
        self.sizes.append(logical_nbytes)
        self.phys_sizes.append(physical_nbytes)

    @classmethod
    def from_columns(cls, gids: list, counts: list, contribs: list,
                     sizes: list, phys_sizes: list) -> "RawGatherBatch":
        batch = cls()
        batch.gids = gids
        batch.counts = counts
        batch.contribs = contribs
        batch.sizes = sizes
        batch.phys_sizes = phys_sizes
        return batch

    @property
    def record_count(self) -> int:
        """Logical records — same unit as the combined batch."""
        return len(self.gids)

    @property
    def physical_record_count(self) -> int:
        """Records on the wire: one per contribution, min one."""
        return sum(c if c else 1 for c in self.counts)

    @property
    def precombine_record_count(self) -> int:
        return self.physical_record_count

    def nbytes(self) -> int:
        """Logical (combined-equivalent) payload bytes — cost model."""
        return sum(self.sizes)

    def physical_nbytes(self) -> int:
        return sum(self.phys_sizes)

    def record_nbytes(self, index: int) -> int:
        return self.sizes[index]

    def record_folded(self, index: int) -> int:
        return self.counts[index] or 1

    def _offsets(self) -> list[int]:
        offsets = [0]
        for c in self.counts:
            offsets.append(offsets[-1] + c)
        return offsets

    def contributions_of(self, index: int) -> list:
        start = sum(self.counts[:index])
        return self.contribs[start:start + self.counts[index]]

    def select(self, indices: Iterable[int]) -> "RawGatherBatch":
        """Group-aware slice: a record keeps its whole contribution
        group, so chaos dup/delay sub-batches fold to the same
        partials as their combined twins."""
        offsets = self._offsets()
        out = RawGatherBatch()
        for i in indices:
            out.gids.append(self.gids[i])
            out.counts.append(self.counts[i])
            out.contribs.extend(self.contribs[offsets[i]:offsets[i + 1]])
            out.sizes.append(self.sizes[i])
            out.phys_sizes.append(self.phys_sizes[i])
        return out

    def clone(self) -> "RawGatherBatch":
        return self.select(range(len(self.gids)))


class ActivateBatch:
    """Columnar activation-signal batch (vertex-cut scatter)."""

    is_columnar = True

    __slots__ = ("gids",)

    def __init__(self, gids: Sequence[int] = ()):
        self.gids: list[int] = list(gids)

    def append(self, gid: int) -> None:
        self.gids.append(gid)

    @property
    def record_count(self) -> int:
        return len(self.gids)

    def nbytes(self) -> int:
        return BYTES_PER_VID * len(self.gids)

    def record_nbytes(self, index: int) -> int:
        return BYTES_PER_VID

    def select(self, indices: Iterable[int]) -> "ActivateBatch":
        return ActivateBatch([self.gids[i] for i in indices])

    def clone(self) -> "ActivateBatch":
        return ActivateBatch(self.gids)


class ActiveBroadcastBatch:
    """Columnar master -> replicas activity-flag broadcast batch."""

    is_columnar = True

    __slots__ = ("gids", "actives")

    def __init__(self):
        self.gids: list[int] = []
        self.actives: list[bool] = []

    def append(self, gid: int, active: bool) -> None:
        self.gids.append(gid)
        self.actives.append(active)

    @property
    def record_count(self) -> int:
        return len(self.gids)

    def nbytes(self) -> int:
        return (BYTES_PER_VID + 1) * len(self.gids)

    def record_nbytes(self, index: int) -> int:
        return BYTES_PER_VID + 1

    def select(self, indices: Iterable[int]) -> "ActiveBroadcastBatch":
        out = ActiveBroadcastBatch()
        for i in indices:
            out.gids.append(self.gids[i])
            out.actives.append(self.actives[i])
        return out

    def clone(self) -> "ActiveBroadcastBatch":
        return self.select(range(len(self.gids)))


@dataclass
class RecoveredVertex:
    """One vertex shipped in a recovery message (Section 5.1).

    ``position`` is the array slot the vertex must occupy at the
    destination, enabling the lock-free positional reconstruction.
    ``full_edges`` travels only for masters under edge-cut.
    """

    gid: int
    role: str
    position: int
    value: Any
    active: bool
    last_activates: bool
    out_degree: int
    in_degree: int
    master_node: int
    ft_only: bool = False
    selfish: bool = False
    mirror_id: int = -1
    #: The master's committed self-sustained activity (what a live
    #: mirror's ``mirror_self_active`` holds) — distinct from ``active``,
    #: which includes remote activations / broadcast state.
    self_active: bool = False
    #: The activity flag the replicas collectively believe (vertex-cut
    #: broadcast state); restored into ``replicas_known_active``.
    known_active: bool = False
    #: Iteration of the vertex's last committed update, preserved so a
    #: later recovery replays exactly the activations that were lost.
    last_update_iter: int = -1
    #: (src_gid, src_position, weight) triples; None unless an
    #: edge-cut master/mirror is being recovered.
    full_edges: list[tuple[int, int, float]] | None = None
    #: Copy of the master metadata (masters and mirrors only).
    replica_positions: dict[int, int] | None = None
    mirror_nodes: list[int] | None = None
    master_position: int = -1

    def nbytes(self, value_nbytes: int) -> int:
        size = BYTES_PER_VID + 8 + value_nbytes + 4
        if self.full_edges is not None:
            size += len(self.full_edges) * BYTES_PER_EDGE
        if self.replica_positions is not None:
            size += len(self.replica_positions) * (BYTES_PER_VID + 4)
        if self.mirror_nodes is not None:
            size += len(self.mirror_nodes) * 4
        return size


@dataclass
class RecoveryBatch:
    """A batch of recovered vertices plus shared global state.

    All recovery messages are sent in a batched way to cut message
    overhead (Section 5.1.1); the batch also carries global state such
    as the iteration count the destination must resume from.
    """

    src_node: int
    vertices: list[RecoveredVertex] = field(default_factory=list)
    iteration: int = 0

    def nbytes(self, value_nbytes_of) -> int:
        return 16 + sum(v.nbytes(value_nbytes_of(v.value))
                        for v in self.vertices)
