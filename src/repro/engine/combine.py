"""Commutative-associative combiners for the message-combining layer.

A :class:`~repro.engine.vertex_program.VertexProgram` (or
:class:`~repro.algorithms.kernels.ArrayKernel`) may declare a
``combiner`` — one of ``"sum"``, ``"min"``, ``"max"`` — meaning its
gather accumulation is a fold of per-edge *contributions* under that
operator.  The combining layer (DESIGN.md §15) uses the declaration in
two places:

* **Sender side** — all same-destination-gid contributions on a node
  fold into one partial per ``(dst_node, gid)`` before ``Network.send``
  (this is the default wire format; it is what the engine has always
  shipped, now made explicit and *counted*).
* **Receiver side** — with combining disabled the raw per-edge
  contributions travel instead
  (:class:`~repro.engine.messages.RawGatherBatch`) and the master's
  node folds each record's contribution group on receipt, in shipped
  order, with the exact same scalar arithmetic.

Determinism contract: every fold here is a sequential left-to-right
fold with the accumulator as the *first* operand — ``acc = op(acc,
contribution)`` — matching both the scalar ``program.gather`` loops and
the ``np.ufunc.at`` index-order accumulation on the vectorized path, so
combined and uncombined runs are bit-identical.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

#: Names a program/kernel may declare in its ``combiner`` attribute.
COMBINER_NAMES = ("sum", "min", "max")


def _sum(acc: Any, contribution: Any) -> Any:
    return acc + contribution


def _min(acc: Any, contribution: Any) -> Any:
    # Tie keeps the accumulator — identical to ``min(acc, c)`` and to
    # the scalar programs' ``c if c < acc else acc``.
    return contribution if contribution < acc else acc


def _max(acc: Any, contribution: Any) -> Any:
    return contribution if contribution > acc else acc


#: name -> (scalar op(acc, c), unbuffered numpy scatter-fold ufunc).
_COMBINERS: dict[str, tuple[Callable[[Any, Any], Any], np.ufunc]] = {
    "sum": (_sum, np.add),
    "min": (_min, np.minimum),
    "max": (_max, np.maximum),
}


def scalar_op(name: str) -> Callable[[Any, Any], Any]:
    """The scalar fold operator ``op(acc, contribution)`` for *name*."""
    return _COMBINERS[name][0]


def ufunc_of(name: str) -> np.ufunc:
    """The numpy ufunc whose ``.at`` form performs the same fold."""
    return _COMBINERS[name][1]


def combiner_of(program: Any) -> str | None:
    """The validated combiner declared by *program*, or ``None``.

    Accepts both scalar ``VertexProgram``s and ``ArrayKernel``s (the
    kernels call the attribute ``combine``).
    """
    name = getattr(program, "combiner", None)
    if name is None:
        name = getattr(program, "combine", None)
    if name is None:
        return None
    if name not in _COMBINERS:
        raise ValueError(
            f"unknown combiner {name!r}; expected one of {COMBINER_NAMES}")
    return name


def fold_contributions(name: str, init: Any,
                       contributions: Any) -> tuple[Any, int]:
    """Left-to-right fold of *contributions* under combiner *name*.

    Returns ``(acc, folded)`` where ``folded`` counts the non-``None``
    contributions absorbed.  ``None`` contributions are skipped (the
    scalar programs use ``None`` for "no contribution", e.g. a
    zero-out-degree PageRank source); a ``None`` *init* (CC) is
    replaced by the first contribution, exactly like the scalar gather
    loops.
    """
    op = _COMBINERS[name][0]
    acc = init
    folded = 0
    for c in contributions:
        if c is None:
            continue
        acc = c if acc is None else op(acc, c)
        folded += 1
    return acc, folded


def fold_raw_batch(batch: Any, program: Any) -> list[Any]:
    """Receiver-side fold: one accumulator per logical record.

    Folds each record's contribution group of a
    :class:`~repro.engine.messages.RawGatherBatch` in shipped order
    (the sender's in-edge order), starting from
    ``program.gather_init()`` — bit-identical to the partial the
    sender would have shipped combined.
    """
    name = combiner_of(program)
    if name is None:  # pragma: no cover - senders never build raw
        raise ValueError("raw gather batch for a program with no combiner")
    accs: list[Any] = []
    offset = 0
    for count in batch.counts:
        acc, _ = fold_contributions(
            name, program.gather_init(), batch.contribs[offset:offset + count])
        offset += count
        accs.append(acc)
    return accs
