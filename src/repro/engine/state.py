"""Per-node vertex state: the slot array and vertex roles.

Each node stores its local vertices in a *position-stable array*
(Section 5.1.2): topology is expressed as array indices, and because a
recovered vertex is placed back at its original position, rebuilding a
crashed node's graph is lock-free and embarrassingly parallel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.utils.sizing import BYTES_PER_EDGE, BYTES_PER_VID


class Role(enum.Enum):
    """What a local copy of a vertex is.

    ``MIRROR`` is a full-state replica (Section 4.2); an FT replica
    created purely for fault tolerance (Section 4.1) is always a
    mirror, marked with :attr:`VertexSlot.ft_only`.
    """

    MASTER = "master"
    MIRROR = "mirror"
    REPLICA = "replica"


@dataclass
class MasterMeta:
    """Full-state metadata held by a master (and copied to mirrors).

    ``replica_positions[node]`` records the local array position of the
    vertex's copy on ``node`` — the paper's "enhanced edge information"
    trick generalised: every copy's position is known up front, so any
    recovery message can be applied positionally without coordination.
    """

    #: node -> array position of this vertex's copy there (masters know
    #: where all their replicas live; Section 5).
    replica_positions: dict[int, int] = field(default_factory=dict)
    #: Nodes hosting full-state mirrors, in mirror-id order (the lowest
    #: surviving one leads recovery, Section 5.3.1).
    mirror_nodes: list[int] = field(default_factory=list)
    #: The master's own node and array position (mirrors use these to
    #: recover the master in place).
    master_node: int = -1
    master_position: int = -1
    #: Derived caches over ``replica_positions``/``mirror_nodes``; built
    #: lazily on first use, dropped by :meth:`invalidate_replica_cache`
    #: whenever a replica moves (migration/repair).  Not part of the
    #: replicated wire state.
    _mirror_set: frozenset[int] | None = field(
        default=None, init=False, repr=False, compare=False)
    _sync_targets: tuple[tuple[int, bool], ...] | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def mirror_set(self) -> frozenset[int]:
        """Cached ``frozenset(mirror_nodes)`` for O(1) membership."""
        if self._mirror_set is None:
            self._mirror_set = frozenset(self.mirror_nodes)
        return self._mirror_set

    def sync_targets(self) -> tuple[tuple[int, bool], ...]:
        """Cached ``(replica_node, is_mirror)`` pairs in position order.

        Built once per topology change instead of per vertex per
        superstep; the hot sync loop iterates this directly.
        """
        if self._sync_targets is None:
            mirrors = self.mirror_set
            self._sync_targets = tuple(
                (node, node in mirrors) for node in self.replica_positions)
        return self._sync_targets

    def invalidate_replica_cache(self) -> None:
        """Drop derived caches after mutating replica placement."""
        self._mirror_set = None
        self._sync_targets = None

    def nbytes(self) -> int:
        """Memory footprint of this metadata.

        Modeled after the compact encodings of the C++ systems: replica
        locations as a node bitmap (amortised ~1 byte per entry at 50
        nodes) plus a 4-byte array position per replica; mirror ids one
        byte each.
        """
        return (len(self.replica_positions) * 5
                + len(self.mirror_nodes) + BYTES_PER_VID + 4)


@dataclass
class VertexSlot:
    """One entry of a node's vertex array."""

    gid: int
    role: Role
    #: Current committed value (as of the last global barrier).
    value: Any = None
    #: Whether the vertex computes in the current superstep (masters
    #: authoritative; mirrors receive it with full-state sync).
    active: bool = False
    #: Activation accumulated during the current superstep, committed
    #: into ``active`` at the barrier.
    next_active: bool = False
    #: Whether this vertex's last committed update requested activation
    #: of its out-neighbors — the "activation information" masters
    #: replicate to mirrors so recovery can replay it (Section 5.1.3).
    last_activates: bool = False
    #: Iteration of the last committed update (-1 = never updated).
    #: Recovery replay only re-executes activations stamped with the
    #: last committed iteration; checkpointing uses it for incremental
    #: snapshots.
    last_update_iter: int = -1
    #: Static degrees of the vertex in the *global* graph (replicas
    #: need them for gather, e.g. PageRank's value/out_degree).
    out_degree: int = 0
    in_degree: int = 0
    #: Local in-edges: (local index of source slot, weight).  Complete
    #: for edge-cut masters; partial (local edges only) for vertex-cut.
    in_edges: list[tuple[int, float]] = field(default_factory=list)
    #: Local out-edges: local indices of target slots on this node.
    out_edges: list[int] = field(default_factory=list)
    #: Master metadata; present on masters and (as a synced copy) on
    #: mirrors.  Plain replicas carry only the master's node id.
    meta: MasterMeta | None = None
    #: Node hosting the master (replicas and mirrors).
    master_node: int = -1
    #: True for FT replicas created only for fault tolerance; they have
    #: no computation out-edges on this node.
    ft_only: bool = False
    #: True when the vertex is selfish (no out-edges globally) and the
    #: selfish optimisation suppresses its normal sync (Section 4.4).
    selfish: bool = False
    #: Mirror id of this copy (index into meta.mirror_nodes), -1 if not
    #: a mirror.
    mirror_id: int = -1
    #: Edge-cut mirrors only: a full copy of the master's in-edge list
    #: as ``(src_gid, src_position_on_master_node, weight)`` triples
    #: ("all edges are included into the full states of the masters and
    #: replicated to the mirrors", Section 4.3).  Positions allow the
    #: in-place re-linking of Rebirth; gids allow the re-resolution of
    #: Migration.
    full_edges: list[tuple[int, int, float]] | None = None
    #: Masters only: the activity flag replicas currently believe
    #: (vertex-cut gather scheduling); a change triggers a broadcast at
    #: the next superstep start.
    replicas_known_active: bool = True
    #: Mirrors only: the master's last synced *self-sustained* activity
    #: (remote activations are replayed at recovery, Section 5.1.3).
    mirror_self_active: bool = False
    #: Staged value for the barrier commit (masters: apply result;
    #: replicas: received sync).
    pending_value: Any = None
    has_pending: bool = False
    #: Staged activation flag accompanying pending_value.
    pending_activates: bool = False
    #: Vertex-cut: staged "active next superstep" flag from the master.
    pending_active: bool = False

    # -- memory accounting ------------------------------------------------

    def nbytes(self, value_nbytes: int) -> int:
        """Approximate in-memory footprint of this slot."""
        base = 64  # object header, flags, degrees
        edges = (len(self.in_edges) + len(self.out_edges)) * BYTES_PER_EDGE
        if self.full_edges is not None:
            edges += len(self.full_edges) * BYTES_PER_EDGE
        meta = self.meta.nbytes() if self.meta is not None else 0
        return base + value_nbytes + edges + meta

    @property
    def is_master(self) -> bool:
        return self.role is Role.MASTER

    @property
    def is_mirror(self) -> bool:
        return self.role is Role.MIRROR

    def clear_pending(self) -> None:
        self.pending_value = None
        self.has_pending = False
        self.pending_activates = False
        self.pending_active = False
        self.next_active = False
