"""Vectorized superstep executor: the structure-of-arrays fast path.

Runs one superstep array-at-a-time when the vertex program declares an
:class:`~repro.algorithms.kernels.ArrayKernel`, replacing the
per-vertex compute / sync-build / receive-staging / commit loops of
:class:`~repro.engine.engine.Engine` while keeping the per-vertex
:class:`~repro.engine.state.VertexSlot` array authoritative at every
barrier boundary.  The contract (DESIGN.md §11) is *bit-for-bit*
equality with the scalar loop: identical committed values, activity
sets, message/byte counters, elision counts and simulated time.

Lifecycle
---------
* Dynamic columns (values, activity flags) are read from the slots on
  first touch of a node (:meth:`_state`) and then *carried across
  supersteps*: the barrier commit dual-writes every slot update into
  the arrays, so at each barrier the columns equal the slots exactly.
* The cache is keyed by topology identity — any code path that rewrites
  slots outside the executor's own commit also invalidates the SoA
  topology (recovery's blanket :meth:`LocalGraph.invalidate_soa`,
  ``add_slot``/``remove_slot``), which makes :meth:`_state` rebuild the
  columns from the slots.  The one slot mutation that happens *without*
  a topology change is the vertex-cut phase-0 activity broadcast;
  :meth:`vertex_cut_compute` refreshes the two affected columns after
  it runs (only on supersteps where a broadcast was actually pending).
* Compute stages results into pending *arrays* (not slot fields);
  received sync batches stage into the same arrays.
* The barrier commit writes values/flags back to the slots (native
  Python scalars via ``tolist()``) *and* into the cached columns,
  resolves activations through the out-edge arrays, applies activity
  via :meth:`~repro.engine.local_graph.LocalGraph.set_active_bulk`,
  then clears the pending masks.
* A rollback drops the cached states entirely; the next superstep
  re-reads the (last-committed) slots.

Ordering notes: records within one batch are emitted in *position*
order here versus active-set iteration order in the scalar path.  That
is observationally equivalent — gids within a batch are distinct, the
byte accounting is order-independent, and the vertex-cut master fold
re-sorts partials by (position, sender) exactly as the scalar fold
sorts by sender per vertex.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import MessageKind
from repro.engine.messages import (
    ActivateBatch,
    GatherBatch,
    MirrorSyncPayload,
    RawGatherBatch,
    SyncBatch,
)
from repro.errors import EngineError
from repro.utils.sizing import BYTES_PER_VID

#: Sentinel returned by :meth:`VectorizedExecutor.committed_value` when
#: no valid cached column exists for the node — the caller falls back
#: to the (then-authoritative) slot value.  A sentinel rather than
#: ``None`` because ``None`` could be a legitimate vertex value.
NO_COLUMN = object()


class _NodeState:
    """Per-node dynamic columns + pending staging.

    Cached across supersteps keyed by topology identity; the commit
    keeps the columns equal to the slots at every barrier.
    """

    __slots__ = ("topo", "values", "active", "last_activates",
                 "mirror_self_active", "replicas_known_active",
                 "last_update", "unflushed",
                 "pend_mask", "pend_values", "pend_activates",
                 "pend_self_active", "next_active")

    def __init__(self, lg, dtype):
        topo = lg.topology()
        slots = lg.slots
        n = topo.n
        self.topo = topo
        self.values = np.array(
            [(0 if s is None else s.value) for s in slots], dtype=dtype)
        self.active = np.fromiter(
            (s is not None and s.active for s in slots), bool, count=n)
        self.last_activates = np.fromiter(
            (s is not None and s.last_activates for s in slots),
            bool, count=n)
        self.mirror_self_active = np.fromiter(
            (s is not None and s.mirror_self_active for s in slots),
            bool, count=n)
        self.replicas_known_active = np.fromiter(
            (s is not None and s.replicas_known_active for s in slots),
            bool, count=n)
        self.last_update = np.fromiter(
            (-1 if s is None else s.last_update_iter for s in slots),
            np.int64, count=n)
        #: Positions whose committed value/flag columns are newer than
        #: the slots (writeback is deferred to :meth:`flush`).
        self.unflushed = np.zeros(n, dtype=bool)
        self.pend_mask = np.zeros(n, dtype=bool)
        self.pend_values = np.zeros(n, dtype=dtype)
        self.pend_activates = np.zeros(n, dtype=bool)
        self.pend_self_active = np.zeros(n, dtype=bool)
        self.next_active = np.zeros(n, dtype=bool)

    def refresh_activity(self, lg) -> None:
        """Re-read the two columns the phase-0 broadcast can change.

        The broadcast flips ``active`` on receiver replicas and
        ``replicas_known_active`` on sender masters via plain slot
        writes (no topology change), so a cached state must re-read
        them afterwards.
        """
        slots = lg.slots
        n = self.topo.n
        self.active = np.fromiter(
            (s is not None and s.active for s in slots), bool, count=n)
        self.replicas_known_active = np.fromiter(
            (s is not None and s.replicas_known_active for s in slots),
            bool, count=n)


class VectorizedExecutor:
    """Array-at-a-time superstep execution for one engine."""

    def __init__(self, engine, kernel):
        self.engine = engine
        self.kernel = kernel
        #: node -> _NodeState, cached across supersteps; a state is
        #: valid while its topology object is still the graph's cached
        #: one (recovery / slot churn invalidates the topology, which
        #: makes :meth:`_state` rebuild the columns from the slots).
        self._states: dict[int, _NodeState] = {}
        #: Vertex-cut: node -> [(positions, sender_nodes, accs)].
        self._partials: dict[int, list] = {}
        #: Whole-column slot writebacks performed (:meth:`flush` calls
        #: that found deferred commits).  The read-path contract is that
        #: point reads never advance this counter.
        self.flush_count = 0

    # -- per-superstep state -------------------------------------------

    def begin_superstep(self) -> None:
        self._partials = {}

    def rollback(self) -> None:
        """Flush committed columns, then discard all cached state.

        Pending (uncommitted) staging lives only in the ``pend_*``
        arrays and is dropped with the states; the flush writes the
        *last-committed* values, which is exactly what recovery must
        see on survivors.
        """
        self.flush()
        self._states = {}
        self._partials = {}

    def flush(self) -> None:
        """Write deferred column commits back into the slots.

        Called before any code path that reads slot values directly:
        recovery entry, checkpoint saves, chaos-plugin hooks, and
        :meth:`Engine.values`.  A no-op (per node) when nothing is
        pending, so it is safe to call eagerly.
        """
        for node, st in self._states.items():
            pos = np.flatnonzero(st.unflushed)
            if not pos.size:
                continue
            self.flush_count += 1
            slots = self.engine.local_graphs[node].slots
            for p, v, a, sa, it in zip(
                    pos.tolist(), st.values[pos].tolist(),
                    st.last_activates[pos].tolist(),
                    st.mirror_self_active[pos].tolist(),
                    st.last_update[pos].tolist()):
                slot = slots[p]
                slot.value = v
                slot.last_activates = a
                slot.mirror_self_active = sa
                slot.last_update_iter = it
            st.unflushed[:] = False

    def committed_value(self, node: int, pos: int):
        """Flush-free committed read of one position's column value.

        The committed columns are authoritative between barriers — the
        barrier commit dual-writes them and defers the slot writeback —
        so a point read can take the value straight from the array
        without forcing :meth:`flush`.  Returns :data:`NO_COLUMN` when
        the node has no valid cached state (fresh engine, post-recovery
        invalidation): the slots are then authoritative and the caller
        reads them directly.
        """
        st = self._states.get(node)
        if st is None or st.topo is not self.engine.local_graphs[node].topology():
            return NO_COLUMN
        return st.values[pos].item()

    def committed_columns(self, node: int):
        """The node's committed value column + topology, flush-free.

        Returns ``(topo, values)`` for bulk committed reads (top-K) or
        :data:`NO_COLUMN` when no valid cached state exists.
        """
        st = self._states.get(node)
        if st is None or st.topo is not self.engine.local_graphs[node].topology():
            return NO_COLUMN
        return st.topo, st.values

    def _state(self, node: int) -> _NodeState:
        lg = self.engine.local_graphs[node]
        st = self._states.get(node)
        if st is None or st.topo is not lg.topology():
            st = _NodeState(lg, self.kernel.dtype)
            self._states[node] = st
        return st

    # -- compute -------------------------------------------------------

    def edge_cut_compute(self, alive: list[int]) -> None:
        engine = self.engine
        self.begin_superstep()
        ctx = engine._ctx()
        # Same mid-loop chaos placement as the scalar path: a crash
        # lands after a prefix of the nodes computed and flushed.
        mid = (len(alive) + 1) // 2 if len(alive) > 1 else 0
        for i, node in enumerate(alive):
            if i == mid:
                engine._chaos_point("gather")
            if not engine.cluster.node(node).is_alive:
                continue
            st = self._state(node)
            topo = st.topo
            sel = st.active & topo.is_master
            esel = np.flatnonzero(sel[topo.in_dst]) \
                if topo.in_dst.size else topo.in_dst
            acc, has = self.kernel.edge_fold(topo, st.values, esel)
            self._master_compute(node, st, sel, acc, has, ctx)
            engine._step_edges[node] += int(topo.in_counts[sel].sum())
            engine._step_vertices[node] += int(sel.sum())

    def vertex_cut_compute(self, alive: list[int]) -> None:
        engine = self.engine
        self.begin_superstep()
        ctx = engine._ctx()
        net = engine.cluster.network
        kernel = self.kernel

        # Phase 0: activity broadcast — shared with the scalar path.
        # States cached from earlier supersteps must re-read the two
        # columns it mutates (fresh states read post-broadcast slots
        # anyway); skip when nothing was pending — the common case for
        # always-active programs.
        had_pending = any(engine._broadcast_pending.get(n)
                          for n in alive)
        engine._vertex_cut_broadcast(alive, net)
        if had_pending:
            for node in alive:
                st = self._states.get(node)
                lg = engine.local_graphs[node]
                # A topology-stale state is rebuilt from the slots on
                # its next _state() touch, which reads the
                # post-broadcast flags anyway.
                if st is not None and st.topo is lg.topology():
                    st.refresh_activity(lg)

        # Phase 1: partial gathers over local in-edges flow to masters.
        # Every kernel declares a combiner, so the combined batches
        # carry their pre-combine contribution counts (``folded``), and
        # with combining off the raw per-edge contributions ship in a
        # RawGatherBatch instead (DESIGN.md §15).
        combining = engine._combining
        for node in alive:
            st = self._state(node)
            topo = st.topo
            sel = st.active & topo.has_in
            esel = np.flatnonzero(sel[topo.in_dst]) \
                if topo.in_dst.size else topo.in_dst
            seg, contrib = kernel.edge_contrib(topo, st.values, esel)
            acc = kernel.init_acc(topo.n)
            kernel.fold_into(acc, seg, contrib)
            cnt = np.bincount(seg, minlength=topo.n) if seg.size \
                else np.zeros(topo.n, dtype=np.int64)
            selpos = np.flatnonzero(sel)
            local = selpos[topo.master_node[selpos] == node]
            if local.size:
                self._partials.setdefault(node, []).append(
                    (local, np.full(local.size, node, dtype=np.int64),
                     acc[local]))
            remote = selpos[topo.master_node[selpos] != node]
            if remote.size:
                outbox: dict = {}
                dsts = topo.master_node[remote]
                order = np.argsort(dsts, kind="stable")
                remote, dsts = remote[order], dsts[order]
                bounds = np.flatnonzero(np.r_[True, dsts[1:] != dsts[:-1]])
                rec_size = BYTES_PER_VID + kernel.acc_nbytes
                folded_all = np.maximum(cnt[remote], 1)
                if not combining:
                    # Raw shipping: gather every contributing edge of a
                    # remote record, grouped per record in batch order
                    # with the CSR within-group order preserved (the
                    # stable sort by record index), so the receiver's
                    # group folds replay the sender's fold exactly.
                    rec_idx = np.full(topo.n, -1, dtype=np.int64)
                    rec_idx[remote] = np.arange(remote.size)
                    rows = np.flatnonzero(rec_idx[seg] >= 0) \
                        if seg.size else seg
                    rows = rows[np.argsort(rec_idx[seg[rows]],
                                           kind="stable")]
                    flat = contrib[rows]
                    counts_all = cnt[remote]
                    coff = np.concatenate(
                        ([0], np.cumsum(counts_all)))
                    phys_all = (BYTES_PER_VID
                                + folded_all * kernel.acc_nbytes)
                for b, e in zip(bounds, np.r_[bounds[1:], dsts.size]):
                    grp = remote[b:e]
                    key = (int(dsts[b]), MessageKind.GATHER)
                    if combining:
                        outbox[key] = GatherBatch.from_columns(
                            topo.gids[grp].tolist(), acc[grp].tolist(),
                            [rec_size] * grp.size,
                            folded_all[b:e].tolist())
                    else:
                        outbox[key] = RawGatherBatch.from_columns(
                            topo.gids[grp].tolist(),
                            counts_all[b:e].tolist(),
                            flat[coff[b]:coff[e]].tolist(),
                            [rec_size] * grp.size,
                            phys_all[b:e].tolist())
                engine._flush_batches(node, outbox)
            engine._step_edges[node] += int(topo.in_counts[sel].sum())
        engine._chaos_point("gather")
        alive = engine._filter_alive(alive)
        for node in alive:
            st = self._state(node)
            for msg in net.deliver(node):
                batch = msg.payload
                if isinstance(batch, RawGatherBatch):
                    accs = kernel.fold_groups(
                        np.asarray(batch.counts, dtype=np.int64),
                        batch.contribs)
                else:
                    accs = np.asarray(batch.accs, dtype=kernel.dtype)
                pos = st.topo.translate(
                    np.asarray(batch.gids, dtype=np.int64))
                self._partials.setdefault(node, []).append(
                    (pos, np.full(pos.size, msg.src, dtype=np.int64),
                     accs))

        # Phase 2: masters fold partials in (position, sender) order —
        # the vector image of the scalar per-vertex sort-by-sender fold.
        for node in alive:
            st = self._state(node)
            topo = st.topo
            sel = st.active & topo.is_master
            acc = kernel.init_acc(topo.n)
            has = np.zeros(topo.n, dtype=bool)
            plist = self._partials.get(node)
            if plist:
                pos = np.concatenate([p for p, _, _ in plist])
                src = np.concatenate([s for _, s, _ in plist])
                accs = np.concatenate([a for _, _, a in plist])
                keep = sel[pos]
                pos, src, accs = pos[keep], src[keep], accs[keep]
                order = np.lexsort((src, pos))
                kernel.fold_into(acc, pos[order], accs[order])
                has[pos] = True
            self._master_compute(node, st, sel, acc, has, ctx)
            engine._step_vertices[node] += int(sel.sum())

    def _master_compute(self, node: int, st: _NodeState,
                        sel: np.ndarray, acc: np.ndarray,
                        has: np.ndarray, ctx) -> None:
        """Apply + stage + build syncs for one node's computed masters."""
        engine = self.engine
        kernel = self.kernel
        topo = st.topo
        old = st.values
        new = kernel.apply(topo.gids, old, acc, has, ctx)
        act = kernel.activates(topo.gids, old, new, ctx)
        stay = kernel.stays_active(topo.gids, old, new, ctx)
        st.pend_mask |= sel
        st.pend_values[sel] = new[sel]
        st.pend_activates[sel] = act[sel]
        st.pend_self_active[sel] = stay[sel]
        outbox: dict = {}
        if engine._sync_elision:
            noop = ~act & ~st.last_activates & (new == old)
            mirror_elide = noop & (stay == st.mirror_self_active)
        else:
            noop = mirror_elide = None
        skip_selfish = engine.selfish_opt_active
        plain_size = BYTES_PER_VID + kernel.value_nbytes + 1
        mirror_size = BYTES_PER_VID + kernel.value_nbytes + 2
        for (dst, is_mirror), positions in topo.sync_plan.items():
            cand = positions[sel[positions]]
            if skip_selfish and cand.size:
                cand = cand[~topo.selfish[cand]]
            if noop is not None and cand.size:
                elide = mirror_elide if is_mirror else noop
                keep = cand[~elide[cand]]
                engine.syncs_elided += int(cand.size - keep.size)
            else:
                keep = cand
            if not keep.size:
                continue
            # Flag bits mirror the scalar append calls exactly: plain
            # syncs carry only the activates bit.
            if is_mirror:
                flags = (act[keep] + 2 * stay[keep]).tolist()
                batch = SyncBatch.from_columns(
                    topo.gids[keep].tolist(), new[keep].tolist(), flags,
                    [mirror_size] * keep.size, full_state=True)
                outbox[(dst, MessageKind.MIRROR_SYNC)] = batch
            else:
                flags = act[keep].astype(np.int64).tolist()
                batch = SyncBatch.from_columns(
                    topo.gids[keep].tolist(), new[keep].tolist(), flags,
                    [plain_size] * keep.size)
                outbox[(dst, MessageKind.SYNC)] = batch
        engine._flush_batches(node, outbox)

    # -- receive staging ----------------------------------------------

    def stage_sync_batch(self, node: int, batch: SyncBatch) -> None:
        st = self._state(node)
        pos = st.topo.translate(np.asarray(batch.gids, dtype=np.int64))
        st.pend_mask[pos] = True
        st.pend_values[pos] = np.asarray(batch.values,
                                         dtype=self.kernel.dtype)
        flags = np.asarray(batch.flags, dtype=np.int64)
        st.pend_activates[pos] = (flags & SyncBatch.FLAG_ACTIVATES) != 0
        if batch.full_state:
            st.pend_self_active[pos] = \
                (flags & SyncBatch.FLAG_SELF_ACTIVE) != 0
            if any(batch.edge_updates):
                lg = self.engine.local_graphs[node]
                for i, updates in enumerate(batch.edge_updates):
                    if not updates:
                        continue
                    slot = lg.slot_of(batch.gids[i])
                    if slot.full_edges is None:
                        continue
                    for idx, weight in updates:
                        gid0, epos, _old = slot.full_edges[idx]
                        slot.full_edges[idx] = (gid0, epos, weight)

    def stage_scalar(self, node: int, payload) -> None:
        """Stage one legacy per-record payload (recovery paths, tests)."""
        st = self._state(node)
        lg = self.engine.local_graphs[node]
        pos = lg.index_of[payload.gid]
        st.pend_mask[pos] = True
        st.pend_values[pos] = payload.value
        st.pend_activates[pos] = payload.activates
        if isinstance(payload, MirrorSyncPayload):
            st.pend_self_active[pos] = payload.self_active
            slot = lg.slots[pos]
            if payload.edge_updates and slot.full_edges is not None:
                for idx, weight in payload.edge_updates:
                    gid0, epos, _old = slot.full_edges[idx]
                    slot.full_edges[idx] = (gid0, epos, weight)

    # -- barrier commit ------------------------------------------------

    def commit_values(self, alive: list[int], net) -> int:
        """Array image of Engine._commit_values; same three stages."""
        engine = self.engine
        iteration = engine.iteration
        signals: list[tuple[int, np.ndarray, np.ndarray]] = []
        for node in alive:
            st = self._state(node)
            topo = st.topo
            pm = st.pend_mask
            # Stage 1a: activation scatter along local out-edges.
            sources = pm & st.pend_activates
            if sources.any() and topo.out_src.size:
                tgt = topo.out_dst[sources[topo.out_src]]
                if tgt.size:
                    m = topo.is_master[tgt]
                    st.next_active[tgt[m]] = True
                    rem = tgt[~m]
                    if rem.size:
                        signals.append((node, topo.master_node[rem],
                                        topo.gids[rem]))
            # Stage 1b: value/flag commit into the columns; the slot
            # writeback is deferred (marked ``unflushed``) and performed
            # by :meth:`flush` before anything reads the slots.
            pos = np.flatnonzero(pm)
            if pos.size:
                st.values[pos] = st.pend_values[pos]
                st.last_activates[pos] = st.pend_activates[pos]
                st.last_update[pos] = iteration
                st.unflushed[pos] = True

        # Stage 2: remote activation signals travel to the masters.
        if signals:
            per_src: dict[int, dict] = {}
            for src_node, dsts, gids in signals:
                # Unique + lexicographic (dst, gid) order reproduces the
                # scalar path's globally sorted signal set per source.
                pairs = np.unique(np.stack([dsts, gids], axis=1), axis=0)
                outbox = per_src.setdefault(src_node, {})
                dcol, gcol = pairs[:, 0], pairs[:, 1]
                bounds = np.flatnonzero(
                    np.r_[True, dcol[1:] != dcol[:-1]])
                for b, e in zip(bounds, np.r_[bounds[1:], dcol.size]):
                    outbox[(int(dcol[b]), MessageKind.ACTIVATE)] = \
                        ActivateBatch(gcol[b:e].tolist())
            for src_node in sorted(per_src):
                engine._flush_batches(src_node, per_src[src_node])
            for node in alive:
                st = self._state(node)
                for msg in net.deliver(node):
                    if msg.kind is not MessageKind.ACTIVATE:
                        raise EngineError(
                            f"unexpected {msg.kind.value} message from "
                            f"node {msg.src} in the activation exchange "
                            f"of iteration {iteration}")
                    pos = st.topo.translate(
                        np.asarray(msg.payload.gids, dtype=np.int64))
                    st.next_active[pos] = True

        # Stage 3: finalise activity, mirror shadows, broadcast queue.
        total = 0
        for node in alive:
            st = self._state(node)
            topo = st.topo
            lg = engine.local_graphs[node]
            pm = st.pend_mask
            touched = np.flatnonzero((pm | st.next_active)
                                     & topo.is_master)
            if touched.size:
                new_active = ((pm[touched] & st.pend_self_active[touched])
                              | st.next_active[touched])
                # Master/mirror self-activity shadows commit into the
                # columns; the slot write rides the deferred flush
                # (withp and mirrors are pend-masked, so stage 1b
                # already marked them unflushed).
                withp = touched[pm[touched]]
                st.mirror_self_active[withp] = st.pend_self_active[withp]
                # Only flip slots whose activity actually changed — the
                # column mirrors the slot flags, so the delta filter
                # leaves slot state and active sets exactly as the
                # full-write would (always-active programs skip the
                # whole per-slot loop).
                cmask = new_active != st.active[touched]
                if cmask.any():
                    lg.set_active_bulk(touched[cmask].tolist(),
                                       new_active[cmask].tolist())
                st.active[touched] = new_active
                if not engine.is_edge_cut:
                    stale = touched[
                        new_active != st.replicas_known_active[touched]]
                    if stale.size:
                        engine._broadcast_pending[node].update(
                            topo.gids[stale].tolist())
            mirrors = np.flatnonzero(pm & topo.is_mirror)
            st.mirror_self_active[mirrors] = st.pend_self_active[mirrors]
            # Reset the per-superstep staging; value/flag staging
            # arrays need no clearing — every read is pend_mask-gated.
            st.pend_mask[:] = False
            st.next_active[:] = False
            total += len(lg.active_masters)
        return total
