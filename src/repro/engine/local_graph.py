"""Per-node local graph: the position-stable vertex array.

Topology is expressed as array indices (a source's local position), so
recovering a crashed node is a matter of writing each received vertex
back into its recorded position — no name resolution, no locks
(Section 5.1.2).  Positions are never reused while a job runs; slots
vacated by Migration keep a tombstone ``None``.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.state import Role, VertexSlot
from repro.engine.vertex_program import VertexProgram, VertexView
from repro.errors import EngineError


class LocalGraph:
    """One node's vertex array plus gid index."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.slots: list[VertexSlot | None] = []
        self.index_of: dict[int, int] = {}
        #: gids of *master* slots whose ``active`` flag is set — the
        #: engine's compute loops iterate these instead of scanning the
        #: array, so sparse supersteps (SSSP tails) cost O(active), not
        #: O(all slots).  Maintained by :meth:`set_active`; never flip
        #: ``slot.active`` directly once a slot is registered.
        self.active_masters: set[int] = set()
        #: Same for non-master slots (vertex-cut replicas gather too).
        self.active_others: set[int] = set()
        # Tuple snapshots of the active sets, cached until the next
        # mutation — the compute loops iterate these instead of copying
        # the set per node per superstep.
        self._masters_snapshot: tuple[int, ...] | None = None
        self._others_snapshot: tuple[int, ...] | None = None
        #: Cached structure-of-arrays topology (DESIGN.md §11); built
        #: lazily by :meth:`topology`, dropped by :meth:`invalidate_soa`
        #: whenever the slot array or edge lists change shape.
        self._topology = None

    # -- construction -----------------------------------------------------

    def add_slot(self, slot: VertexSlot, position: int | None = None) -> int:
        """Append (or place at a fixed position) one vertex slot."""
        if slot.gid in self.index_of:
            raise EngineError(
                f"vertex {slot.gid} already present on node {self.node_id}")
        if position is None:
            position = len(self.slots)
            self.slots.append(slot)
        else:
            while len(self.slots) <= position:
                self.slots.append(None)
            if self.slots[position] is not None:
                raise EngineError(
                    f"position {position} on node {self.node_id} occupied")
            self.slots[position] = slot
        self.index_of[slot.gid] = position
        self._topology = None
        if slot.active:
            self.set_active(slot, True)
        return position

    def set_active(self, slot: VertexSlot, flag: bool) -> None:
        """Flip a slot's activity, keeping the active indexes in sync.

        Also call this after a role change (Migration promotion) so the
        gid moves to the matching set.
        """
        slot.active = flag
        self.active_masters.discard(slot.gid)
        self.active_others.discard(slot.gid)
        if flag:
            if slot.role is Role.MASTER:
                self.active_masters.add(slot.gid)
            else:
                self.active_others.add(slot.gid)
        self._masters_snapshot = None
        self._others_snapshot = None

    def remove_slot(self, gid: int) -> VertexSlot:
        """Tombstone a slot (Migration moves vertices between nodes)."""
        position = self.index_of.pop(gid, None)
        if position is None:
            raise EngineError(
                f"vertex {gid} not present on node {self.node_id}")
        slot = self.slots[position]
        self.slots[position] = None
        self.active_masters.discard(gid)
        self.active_others.discard(gid)
        self._masters_snapshot = None
        self._others_snapshot = None
        self._topology = None
        return slot

    def set_active_bulk(self, positions, flags) -> None:
        """Vectorized bulk form of :meth:`set_active`, by position.

        Used by the barrier commit of the vectorized path; must keep
        the same contract as per-slot writes — the active sets stay in
        sync and the iteration snapshots are invalidated (a stale
        snapshot here would feed the next superstep's compute loop the
        previous superstep's active set).
        """
        masters, others = self.active_masters, self.active_others
        slots = self.slots
        for pos, flag in zip(positions, flags):
            slot = slots[pos]
            slot.active = flag
            gid = slot.gid
            if flag:
                if slot.role is Role.MASTER:
                    masters.add(gid)
                else:
                    others.add(gid)
            else:
                masters.discard(gid)
                others.discard(gid)
        self._masters_snapshot = None
        self._others_snapshot = None

    def topology(self):
        """The cached SoA topology view (DESIGN.md §11)."""
        if self._topology is None:
            from repro.engine.soa import NodeTopology
            self._topology = NodeTopology.build(self)
        return self._topology

    def invalidate_soa(self) -> None:
        """Drop the SoA topology cache after in-place topology edits.

        ``add_slot``/``remove_slot`` invalidate automatically; recovery
        code that rewrites ``in_edges``/``out_edges``/``meta`` in place
        (Rebirth relink, Migration re-resolution, FT repair) is covered
        by the engine's blanket invalidation after every recovery.
        """
        self._topology = None

    def active_masters_snapshot(self) -> tuple[int, ...]:
        """Stable iteration snapshot of ``active_masters``.

        Cached until the set next mutates; lets a compute loop iterate
        while apply results flip activity, without copying the set per
        node per superstep.
        """
        if self._masters_snapshot is None:
            self._masters_snapshot = tuple(self.active_masters)
        return self._masters_snapshot

    def active_others_snapshot(self) -> tuple[int, ...]:
        """Stable iteration snapshot of ``active_others``."""
        if self._others_snapshot is None:
            self._others_snapshot = tuple(self.active_others)
        return self._others_snapshot

    # -- lookup ---------------------------------------------------------------

    def __contains__(self, gid: int) -> bool:
        return gid in self.index_of

    def slot_of(self, gid: int) -> VertexSlot:
        try:
            slot = self.slots[self.index_of[gid]]
        except KeyError:
            raise EngineError(
                f"vertex {gid} not on node {self.node_id}") from None
        assert slot is not None
        return slot

    def position_of(self, gid: int) -> int:
        return self.index_of[gid]

    def slot_at(self, position: int) -> VertexSlot | None:
        if position >= len(self.slots):
            return None
        return self.slots[position]

    def iter_slots(self) -> Iterator[VertexSlot]:
        for slot in self.slots:
            if slot is not None:
                yield slot

    def iter_masters(self) -> Iterator[VertexSlot]:
        for slot in self.iter_slots():
            if slot.role is Role.MASTER:
                yield slot

    def iter_mirrors(self) -> Iterator[VertexSlot]:
        for slot in self.iter_slots():
            if slot.role is Role.MIRROR:
                yield slot

    def view(self, position: int) -> VertexView:
        """Neighbor view for gather, by local position."""
        slot = self.slots[position]
        assert slot is not None
        return VertexView(vid=slot.gid, value=slot.value,
                          out_degree=slot.out_degree,
                          in_degree=slot.in_degree)

    # -- stats ------------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        masters = mirrors = replicas = ft = 0
        edges = 0
        for slot in self.iter_slots():
            if slot.role is Role.MASTER:
                masters += 1
            elif slot.role is Role.MIRROR:
                mirrors += 1
                if slot.ft_only:
                    ft += 1
            else:
                replicas += 1
            edges += len(slot.in_edges)
        return {"masters": masters, "mirrors": mirrors,
                "replicas": replicas, "ft_replicas": ft,
                "local_in_edges": edges,
                "total": masters + mirrors + replicas}

    def memory_nbytes(self, program: VertexProgram) -> int:
        """Approximate resident footprint of this node's graph state."""
        total = 0
        for slot in self.iter_slots():
            total += slot.nbytes(program.value_nbytes(slot.value))
        # The array itself and the gid index.
        total += len(self.slots) * 8 + len(self.index_of) * 24
        return total
