"""Graph-parallel engine: Cyclops-style edge-cut and PowerLyra-style
vertex-cut synchronous execution with replication-aware local graphs."""

from repro.engine.vertex_program import VertexProgram, VertexView, ApplyContext
from repro.engine.state import Role, VertexSlot
from repro.engine.local_graph import LocalGraph
from repro.engine.construction import build_local_graphs, ConstructionReport
from repro.engine.engine import Engine, IterationStats, RunResult
from repro.engine.pregel import (
    MessagePassingPageRank,
    PregelEngine,
    PregelProgram,
    PregelResult,
)

__all__ = [
    "PregelEngine",
    "PregelProgram",
    "PregelResult",
    "MessagePassingPageRank",
    "VertexProgram",
    "VertexView",
    "ApplyContext",
    "Role",
    "VertexSlot",
    "LocalGraph",
    "build_local_graphs",
    "ConstructionReport",
    "Engine",
    "IterationStats",
    "RunResult",
]
