"""A Pregel-style pure message-passing engine (the Hama baseline).

Cyclops (and hence Imitator) replaced Hama's message passing with
vertex replication; this module keeps the *original* Hama/Pregel
execution model so the paper's Section 2.3 comparison can be
reproduced: under message passing, a consistent checkpoint must persist
every in-flight message alongside the vertex values, which is why
Imitator-CKPT — snapshotting only vertex state and re-deriving messages
from replicas — runs "several times faster (up to 6.5x for the Wiki
dataset) than Hama's default checkpoint mechanism".

The engine supports edge-cut partitioning and the same fail-stop model;
recovery restores vertex values *and* the checkpointed message queues,
then resumes.  It intentionally offers only checkpoint-based fault
tolerance — replication-based recovery is precisely what it lacks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig
from repro.costmodel import (
    CostModel,
    DEFAULT_COST_MODEL,
    compute_time,
    pairwise_comm_time,
    storage_read_time,
    storage_write_time,
)
from repro.errors import EngineError, UnrecoverableFailureError
from repro.graph.graph import Graph
from repro.partition.hash_edge_cut import hash_edge_cut
from repro.utils.sizing import BYTES_PER_VALUE, BYTES_PER_VID


class PregelProgram:
    """Vertex program for the message-passing model.

    Subclasses implement ``compute`` which receives the messages sent
    to the vertex in the previous superstep and returns
    ``(new_value, outgoing_message or None, stays_active)``; outgoing
    messages go to every out-neighbor.
    """

    name = "pregel-program"

    def initial_value(self, vid: int) -> Any:
        raise NotImplementedError

    def is_initially_active(self, vid: int) -> bool:
        return True

    def compute(self, vid: int, value: Any, messages: list[Any],
                iteration: int, out_degree: int
                ) -> tuple[Any, Any, bool]:
        raise NotImplementedError

    def message_nbytes(self, message: Any) -> int:
        return BYTES_PER_VALUE

    def value_nbytes(self, value: Any) -> int:
        return BYTES_PER_VALUE


class MessagePassingPageRank(PregelProgram):
    """PageRank in its classic Pregel formulation."""

    name = "pagerank-mp"

    def __init__(self, damping: float = 0.85):
        self.damping = damping

    def initial_value(self, vid: int) -> float:
        return 1.0

    def compute(self, vid, value, messages, iteration, out_degree):
        if iteration == 0:
            new_value = value
        else:
            new_value = (1 - self.damping) + self.damping * sum(messages)
        outgoing = new_value / out_degree if out_degree else None
        return new_value, outgoing, True


@dataclass
class PregelIterationStats:
    iteration: int
    messages: int
    message_bytes: int
    sim_time_s: float
    checkpoint_s: float = 0.0


@dataclass
class PregelResult:
    values: dict[int, Any]
    num_iterations: int
    iteration_stats: list[PregelIterationStats] = field(
        default_factory=list)
    recovered: int = 0
    total_sim_time_s: float = 0.0


class PregelEngine:
    """Hama-style BSP engine with optional message-inclusive checkpoints.

    The checkpoint (``checkpoint_interval >= 1``) is Hama's default
    scheme: every vertex value *plus every in-flight message* (the
    delivered-but-unprocessed inboxes) is written to the persistent
    store inside the barrier.
    """

    def __init__(self, graph: Graph, program: PregelProgram,
                 num_nodes: int = 50, checkpoint_interval: int = 0,
                 cluster: Cluster | None = None, seed: int = 2014,
                 data_scale: float = 1.0):
        self.graph = graph
        self.program = program
        if cluster is None:
            from dataclasses import replace
            model = (DEFAULT_COST_MODEL if data_scale == 1.0 else
                     replace(DEFAULT_COST_MODEL, data_scale=data_scale))
            cluster = Cluster(ClusterConfig(num_nodes=num_nodes,
                                            num_standby=1, seed=seed),
                              cost_model=model)
        self.cluster = cluster
        self.model: CostModel = cluster.cost_model
        self.checkpoint_interval = checkpoint_interval
        part = hash_edge_cut(graph, cluster.num_workers, seed=seed)
        self.master_of = np.asarray(part.master_of)
        self.out_deg = graph.out_degrees()
        # node -> {vid: value}; node -> {vid: [incoming messages]}
        self.values: dict[int, dict[int, Any]] = defaultdict(dict)
        self.inbox: dict[int, dict[int, list[Any]]] = defaultdict(
            lambda: defaultdict(list))
        self.active: dict[int, set[int]] = defaultdict(set)
        for vid in range(graph.num_vertices):
            node = int(self.master_of[vid])
            self.values[node][vid] = program.initial_value(vid)
            if program.is_initially_active(vid):
                self.active[node].add(vid)
        #: vid -> (destination node, [target vids]) routing, precomputed.
        self._routes: dict[int, dict[int, list[int]]] = defaultdict(dict)
        for eid in range(graph.num_edges):
            src = int(graph.sources[eid])
            dst = int(graph.targets[eid])
            dst_node = int(self.master_of[dst])
            self._routes[src].setdefault(dst_node, []).append(dst)
        self.iteration = 0
        self._last_barrier = 0.0
        self.iteration_stats: list[PregelIterationStats] = []
        self.ckpt_stats_bytes = 0
        self._failures: list[tuple[int, int]] = []
        self._recovered = 0

    # -- failure injection ----------------------------------------------

    def schedule_failure(self, iteration: int, node: int) -> None:
        if node < 0 or node >= self.cluster.num_workers:
            raise EngineError(f"no such node {node}")
        self._failures.append((iteration, node))

    # -- execution ---------------------------------------------------------

    def run(self, max_iterations: int) -> PregelResult:
        while self.iteration < max_iterations:
            for it, node in list(self._failures):
                if it == self.iteration \
                        and self.cluster.node(node).is_alive:
                    self.cluster.crash(node)
                    self._failures.remove((it, node))
            failed = self.cluster.detector.newly_failed()
            if failed:
                self._recover(tuple(sorted(failed)))
                continue
            self._superstep()
            if not any(self.active.values()):
                break
        return PregelResult(
            values=self._all_values(),
            num_iterations=self.iteration,
            iteration_stats=self.iteration_stats,
            recovered=self._recovered,
            total_sim_time_s=self.cluster.clocks.global_max(),
        )

    def _alive(self) -> list[int]:
        return self.cluster.alive_workers()

    def _superstep(self) -> None:
        program = self.program
        alive = self._alive()
        outboxes: dict[tuple[int, int], list[tuple[int, Any]]] = \
            defaultdict(list)
        msg_count = 0
        msg_bytes_by_node: dict[int, dict[int, int]] = defaultdict(
            lambda: defaultdict(int))
        msg_num_by_node: dict[int, dict[int, int]] = defaultdict(
            lambda: defaultdict(int))
        compute_edges: dict[int, int] = defaultdict(int)
        # Messages checkpointed this superstep (Hama stores them all).
        produced: dict[int, list[tuple[int, Any]]] = defaultdict(list)

        for node in alive:
            for vid in sorted(self.active[node]):
                msgs = self.inbox[node].pop(vid, [])
                value = self.values[node][vid]
                new_value, outgoing, stays = program.compute(
                    vid, value, msgs, self.iteration,
                    int(self.out_deg[vid]))
                self.values[node][vid] = new_value
                compute_edges[node] += len(msgs)
                if not stays:
                    self.active[node].discard(vid)
                if outgoing is None:
                    continue
                nbytes = (program.message_nbytes(outgoing)
                          + BYTES_PER_VID)
                for dst_node, targets in self._routes[vid].items():
                    outboxes[(node, dst_node)].append(
                        (vid, outgoing))
                    for dst in targets:
                        produced[node].append((dst, outgoing))
                        msg_count += 1
                        msg_bytes_by_node[node][dst_node] += nbytes
                        msg_num_by_node[node][dst_node] += 1

        # Deliver (messages to crashed nodes would be dropped; in this
        # engine failures are detected before the superstep).
        for (src_node, dst_node), batch in outboxes.items():
            if not self.cluster.node(dst_node).is_alive:
                continue
            for vid, message in batch:
                for dst in self._routes[vid][dst_node]:
                    self.inbox[dst_node][dst].append(message)
                    self.active[dst_node].add(dst)

        # Simulated time: compute + comm + optional checkpoint + barrier.
        for node in alive:
            cores = self.cluster.node(node).cores
            self.cluster.clocks.advance(
                node, self.model.superstep_overhead_s)
            self.cluster.clocks.advance(node, compute_time(
                self.model, compute_edges[node],
                len(self.active[node]), cores))
            self.cluster.clocks.advance(node, pairwise_comm_time(
                self.model, msg_bytes_by_node, msg_num_by_node, node))
        ckpt_time = 0.0
        if self.checkpoint_interval \
                and (self.iteration + 1) % self.checkpoint_interval == 0:
            ckpt_time = self._checkpoint(alive, produced)
            for node in alive:
                self.cluster.clocks.advance(node, ckpt_time)
        post = self.cluster.clocks.barrier(self.model, alive)
        self.iteration_stats.append(PregelIterationStats(
            iteration=self.iteration,
            messages=msg_count,
            message_bytes=sum(sum(d.values())
                              for d in msg_bytes_by_node.values()),
            sim_time_s=post - self._last_barrier,
            checkpoint_s=ckpt_time))
        self._last_barrier = post
        self.iteration += 1

    # -- Hama-style checkpoint --------------------------------------------

    def _checkpoint(self, alive: list[int],
                    produced: dict[int, list[tuple[int, Any]]]) -> float:
        """Persist vertex values AND in-flight messages (Hama default).

        Returns the barrier time added (max over nodes).
        """
        program = self.program
        del produced  # in-flight state is exactly the delivered inboxes
        slowest = 0.0
        for node in alive:
            values = dict(self.values[node])
            # The consistent snapshot must carry every in-flight
            # message (the delivered-but-unprocessed inboxes) — the
            # cost Imitator-CKPT avoids by re-deriving messages from
            # vertex replicas (Section 2.3).
            pending = [(vid, m) for vid, lst in self.inbox[node].items()
                       for m in lst]
            nbytes = sum(BYTES_PER_VID + program.value_nbytes(v)
                         for v in values.values())
            nbytes += sum(BYTES_PER_VID + program.message_nbytes(m)
                          for _, m in pending)
            payload = {"values": values, "pending": pending,
                       "active": set(self.active[node]),
                       "iteration": self.iteration}
            self.cluster.store.write(
                f"hama-ckpt/node{node}/iter{self.iteration:06d}",
                payload, nbytes)
            records = len(values) + len(pending)
            serialise = (records * self.model.ckpt_per_record_s
                         * self.model.data_scale)
            slowest = max(slowest, serialise + storage_write_time(
                self.model, nbytes, 1, in_memory=False))
            self.ckpt_stats_bytes += nbytes
        return slowest

    # -- recovery ---------------------------------------------------------------

    def _recover(self, failed: tuple[int, ...]) -> None:
        if not self.checkpoint_interval:
            raise UnrecoverableFailureError(
                f"nodes {list(failed)} crashed without checkpointing")
        store = self.cluster.store
        detection = self.cluster.detector.detection_delay_s
        for node in failed:
            self.cluster.replace_node(node)
        alive = self._alive()
        # Find the last completed snapshot iteration.
        last = -1
        for it in range(self.iteration - 1, -1, -1):
            if store.exists(f"hama-ckpt/node0/iter{it:06d}"):
                last = it
                break
        if last < 0:
            # Restart the job from scratch (Section 5.3.2 semantics).
            self._reset_initial()
            self.iteration = 0
        slowest = 0.0
        if last >= 0:
            for node in alive:
                path = f"hama-ckpt/node{node}/iter{last:06d}"
                payload = store.read(path)
                nbytes = store.stat(path).nbytes
                self.values[node] = dict(payload["values"])
                self.active[node] = set(payload["active"])
                self.inbox[node] = defaultdict(list)
                for vid, message in payload["pending"]:
                    self.inbox[node][vid].append(message)
                slowest = max(slowest, storage_read_time(
                    self.model, nbytes, 1, in_memory=False))
            self.iteration = last + 1
        for node in alive:
            self.cluster.clocks.advance(node, detection + slowest)
        self.cluster.clocks.barrier(self.model, alive)
        self._recovered += 1

    def _reset_initial(self) -> None:
        program = self.program
        self.values = defaultdict(dict)
        self.inbox = defaultdict(lambda: defaultdict(list))
        self.active = defaultdict(set)
        for vid in range(self.graph.num_vertices):
            node = int(self.master_of[vid])
            if not self.cluster.node(node).is_alive:
                continue
            self.values[node][vid] = program.initial_value(vid)
            if program.is_initially_active(vid):
                self.active[node].add(vid)

    def _all_values(self) -> dict[int, Any]:
        out: dict[int, Any] = {}
        for node_values in self.values.values():
            out.update(node_values)
        return out
