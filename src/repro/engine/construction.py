"""Local-graph construction (the paper's extended loading phase).

Builds every node's position-stable vertex array from a partitioning
plus a :class:`~repro.ft.replication.ReplicationPlan`: masters, then
computation/FT replicas, then edge linkage, then mirror election
effects (full-state metadata and, under edge-cut, the duplicated edge
list).  All positions are recorded in the master metadata so recovery
messages can be applied positionally (Section 5.1.2).

Construction order is deterministic (vertex id order within each pass),
which the recovery-equivalence tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.local_graph import LocalGraph
from repro.engine.state import MasterMeta, Role, VertexSlot
from repro.errors import EngineError
from repro.ft.replication import ReplicationPlan
from repro.graph.graph import Graph
from repro.partition.base import EdgeCutPartitioning, VertexCutPartitioning


@dataclass(frozen=True)
class ConstructionReport:
    """Loading census backing Figs. 3 and 8a."""

    num_vertices: int
    num_edges: int
    #: Vertices with no computation replica, split by class (Fig. 3a).
    replica_less_selfish: int
    replica_less_normal: int
    #: Replica counts (Figs. 3b, 8a).
    computation_replicas: int
    ft_replicas: int

    @property
    def replica_less_fraction(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return ((self.replica_less_selfish + self.replica_less_normal)
                / self.num_vertices)

    @property
    def extra_replica_fraction(self) -> float:
        """FT replicas over all replicas (Fig. 8a)."""
        total = self.computation_replicas + self.ft_replicas
        if total == 0:
            return 0.0
        return self.ft_replicas / total


def build_local_graphs(graph: Graph, partitioning,
                       plan: ReplicationPlan
                       ) -> tuple[dict[int, LocalGraph],
                                  ConstructionReport]:
    """Materialise each node's local graph.

    Returns ``(local_graphs, report)`` where ``local_graphs`` maps node
    id to its :class:`LocalGraph`.
    """
    if isinstance(partitioning, EdgeCutPartitioning):
        return _build_edge_cut(graph, partitioning, plan)
    if isinstance(partitioning, VertexCutPartitioning):
        return _build_vertex_cut(graph, partitioning, plan)
    raise EngineError(
        f"unsupported partitioning: {type(partitioning).__name__}")


def _census(plan: ReplicationPlan) -> tuple[int, int, int, int]:
    """Common replica counting for the construction report."""
    selfish = plan.selfish
    replica_less_selfish = 0
    replica_less_normal = 0
    for v in range(plan.num_vertices):
        comp = len(plan.replica_nodes[v]) - len(plan.ft_nodes[v])
        if comp == 0:
            if bool(selfish[v]):
                replica_less_selfish += 1
            else:
                replica_less_normal += 1
    return (replica_less_selfish, replica_less_normal,
            plan.total_computation_replicas(), plan.total_ft_replicas())


def _make_slots(graph: Graph, plan: ReplicationPlan,
                num_nodes: int) -> dict[int, LocalGraph]:
    """Create all vertex slots (no edges yet) in deterministic order."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    locals_: dict[int, LocalGraph] = {
        node: LocalGraph(node) for node in range(num_nodes)}
    master_of = np.asarray(plan.master_of)

    # Pass 1: masters, vertex-id order.
    for v in range(graph.num_vertices):
        node = int(master_of[v])
        meta = MasterMeta(master_node=node)
        slot = VertexSlot(gid=v, role=Role.MASTER,
                          out_degree=int(out_deg[v]),
                          in_degree=int(in_deg[v]),
                          meta=meta, master_node=node,
                          selfish=bool(plan.selfish[v]))
        meta.master_position = locals_[node].add_slot(slot)

    # Pass 2: replicas (computation + FT), vertex-id order.
    for v in range(graph.num_vertices):
        master_node = int(master_of[v])
        master_slot = locals_[master_node].slot_of(v)
        meta = master_slot.meta
        ft_set = set(plan.ft_nodes[v])
        mirror_list = plan.mirror_nodes[v]
        for node in plan.replica_nodes[v]:
            is_mirror = node in mirror_list
            slot = VertexSlot(
                gid=v,
                role=Role.MIRROR if is_mirror else Role.REPLICA,
                out_degree=int(out_deg[v]),
                in_degree=int(in_deg[v]),
                master_node=master_node,
                ft_only=node in ft_set,
                selfish=bool(plan.selfish[v]),
                mirror_id=mirror_list.index(node) if is_mirror else -1,
            )
            position = locals_[node].add_slot(slot)
            meta.replica_positions[node] = position
        meta.mirror_nodes = list(mirror_list)

    # Pass 3: copy master metadata to mirrors (static full state,
    # replicated during graph loading; Section 4.2).
    for v in range(graph.num_vertices):
        master_node = int(master_of[v])
        meta = locals_[master_node].slot_of(v).meta
        for node in plan.mirror_nodes[v]:
            mirror_slot = locals_[node].slot_of(v)
            mirror_slot.meta = MasterMeta(
                replica_positions=dict(meta.replica_positions),
                mirror_nodes=list(meta.mirror_nodes),
                master_node=meta.master_node,
                master_position=meta.master_position,
            )
    return locals_


def _build_edge_cut(graph: Graph, partitioning: EdgeCutPartitioning,
                    plan: ReplicationPlan
                    ) -> tuple[dict[int, LocalGraph], ConstructionReport]:
    locals_ = _make_slots(graph, plan, partitioning.num_nodes)
    master_of = np.asarray(plan.master_of)

    # Edge linkage: the target's master owns the edge; the source's
    # local copy there supplies the value (Fig. 1's edge-cut half).
    src_arr, dst_arr, w_arr = graph.sources, graph.targets, graph.weights
    for eid in range(graph.num_edges):
        u, v = int(src_arr[eid]), int(dst_arr[eid])
        weight = float(w_arr[eid])
        node = int(master_of[v])
        lg = locals_[node]
        u_pos = lg.position_of(u)
        v_pos = lg.position_of(v)
        lg.slot_of(v).in_edges.append((u_pos, weight))
        lg.slots[u_pos].out_edges.append(v_pos)

    # Duplicate each master's full in-edge list onto its mirrors
    # (Section 4.3, edge-cut: edges ride with the masters' full state).
    for v in range(graph.num_vertices):
        if not plan.mirror_nodes[v]:
            continue
        master_node = int(master_of[v])
        lg = locals_[master_node]
        master_slot = lg.slot_of(v)
        full = [(lg.slots[pos].gid, pos, weight)
                for pos, weight in master_slot.in_edges]
        for node in plan.mirror_nodes[v]:
            locals_[node].slot_of(v).full_edges = list(full)

    census = _census(plan)
    report = ConstructionReport(graph.num_vertices, graph.num_edges, *census)
    return locals_, report


def _build_vertex_cut(graph: Graph, partitioning: VertexCutPartitioning,
                      plan: ReplicationPlan
                      ) -> tuple[dict[int, LocalGraph], ConstructionReport]:
    locals_ = _make_slots(graph, plan, partitioning.num_nodes)
    edge_node = np.asarray(partitioning.edge_node)

    # Edge linkage: each edge lives on its assigned node; both
    # endpoints have copies there by construction of the replica sets.
    src_arr, dst_arr, w_arr = graph.sources, graph.targets, graph.weights
    for eid in range(graph.num_edges):
        u, v = int(src_arr[eid]), int(dst_arr[eid])
        weight = float(w_arr[eid])
        node = int(edge_node[eid])
        lg = locals_[node]
        u_pos = lg.position_of(u)
        v_pos = lg.position_of(v)
        lg.slots[v_pos].in_edges.append((u_pos, weight))
        lg.slots[u_pos].out_edges.append(v_pos)

    census = _census(plan)
    report = ConstructionReport(graph.num_vertices, graph.num_edges, *census)
    return locals_, report
