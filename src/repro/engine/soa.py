"""Structure-of-arrays topology cache for one node's local graph.

The per-vertex :class:`~repro.engine.state.VertexSlot` array stays the
authoritative store (recovery writes it positionally, checkpoints read
it), but the vectorized compute path needs the *static* shape of a
node's graph as flat numpy arrays: role masks, degrees, the local
in-/out-edge lists in CSR-style per-edge arrays, and the master->replica
sync fan-out grouped by destination.  :class:`NodeTopology` is that
snapshot, built lazily from the slot array and cached on the
:class:`~repro.engine.local_graph.LocalGraph` until the topology
mutates (``add_slot``/``remove_slot``, or the blanket invalidation the
engine issues after any recovery, which may rewrite edge lists and
replica metadata in place on nodes that saw no local slot churn).

Dynamic state (values, activity flags) deliberately does NOT live
here — the executor caches those columns separately, dual-writes them
at every barrier commit, and rebuilds them whenever this topology
object is replaced, so recovery, checkpointing and chaos plugins keep
seeing exact state at every barrier.
"""

from __future__ import annotations

import numpy as np

from repro.engine.state import Role


class NodeTopology:
    """Immutable array view of one node's local graph topology."""

    __slots__ = (
        "n", "gids", "occupied", "is_master", "is_mirror", "selfish",
        "master_node", "out_deg_f", "in_counts", "has_in",
        "in_src", "in_w", "in_dst", "out_src", "out_dst",
        "gid_sorted", "pos_sorted", "sync_plan",
    )

    @classmethod
    def build(cls, lg) -> "NodeTopology":
        slots = lg.slots
        n = len(slots)
        topo = cls()
        topo.n = n
        gids = np.full(n, -1, dtype=np.int64)
        occupied = np.zeros(n, dtype=bool)
        is_master = np.zeros(n, dtype=bool)
        is_mirror = np.zeros(n, dtype=bool)
        selfish = np.zeros(n, dtype=bool)
        master_node = np.full(n, -1, dtype=np.int64)
        out_deg = np.zeros(n, dtype=np.float64)
        in_counts = np.zeros(n, dtype=np.int64)
        in_src: list[int] = []
        in_w: list[float] = []
        in_dst: list[int] = []
        out_src: list[int] = []
        out_dst: list[int] = []
        sync_plan: dict[tuple[int, bool], list[int]] = {}
        node_id = lg.node_id
        for pos, slot in enumerate(slots):
            if slot is None:
                continue
            occupied[pos] = True
            gids[pos] = slot.gid
            out_deg[pos] = slot.out_degree
            selfish[pos] = slot.selfish
            if slot.role is Role.MASTER:
                is_master[pos] = True
                master_node[pos] = node_id
                for replica_node, is_mir in slot.meta.sync_targets():
                    sync_plan.setdefault((replica_node, is_mir),
                                         []).append(pos)
            else:
                if slot.role is Role.MIRROR:
                    is_mirror[pos] = True
                master_node[pos] = slot.master_node
            edges = slot.in_edges
            if edges:
                in_counts[pos] = len(edges)
                srcs, ws = zip(*edges)
                in_src.extend(srcs)
                in_w.extend(ws)
                in_dst.extend([pos] * len(edges))
            # Tombstoned targets are dropped here, mirroring the
            # ``target is None: continue`` guard of the scalar commit.
            outs = [d for d in slot.out_edges if slots[d] is not None]
            if outs:
                out_src.extend([pos] * len(outs))
                out_dst.extend(outs)
        topo.gids = gids
        topo.occupied = occupied
        topo.is_master = is_master
        topo.is_mirror = is_mirror
        topo.selfish = selfish
        topo.master_node = master_node
        topo.out_deg_f = out_deg
        topo.in_counts = in_counts
        topo.has_in = in_counts > 0
        topo.in_src = np.asarray(in_src, dtype=np.int64)
        topo.in_w = np.asarray(in_w, dtype=np.float64)
        topo.in_dst = np.asarray(in_dst, dtype=np.int64)
        topo.out_src = np.asarray(out_src, dtype=np.int64)
        topo.out_dst = np.asarray(out_dst, dtype=np.int64)
        occ = np.flatnonzero(occupied)
        order = np.argsort(gids[occ], kind="stable")
        topo.pos_sorted = occ[order]
        topo.gid_sorted = gids[topo.pos_sorted]
        topo.sync_plan = {key: np.asarray(positions, dtype=np.int64)
                          for key, positions in sync_plan.items()}
        return topo

    def translate(self, gid_array: np.ndarray) -> np.ndarray:
        """Map an array of gids to local positions (all must be local)."""
        return self.pos_sorted[np.searchsorted(self.gid_sorted, gid_array)]
