"""The synchronous graph-parallel engine (Algorithm 1 of the paper).

One :class:`Engine` drives a whole job: loading (partitioning,
replication planning, local-graph construction, FT extensions),
iterative computation with per-iteration failure detection at the
global barrier, and recovery through the configured fault-tolerance
mechanism.

Execution modes
---------------
* **edge-cut** (Cyclops): masters gather over their complete local
  in-edge lists and push value syncs to replicas — one message
  direction per iteration;
* **vertex-cut** (PowerLyra GAS): every copy folds a partial gather
  over its local in-edges, partials flow to masters, masters apply and
  scatter new values back, activation signals flow master-ward.

Simulated time: every node advances its own clock by modeled compute
and communication costs; the global barrier max-reduces the clocks
(:mod:`repro.costmodel`).

Scheduling: compute loops iterate each node's *active sets* and the
barrier commit touches only *dirty* slots (those that computed or
received a message), so sparse supersteps cost O(work), not O(graph).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.cluster import Cluster
from repro.cluster.network import Message, MessageKind
from repro.config import (
    FTMode,
    JobConfig,
    RecoveryStrategy,
)
from repro.costmodel import (
    CostModel,
    compute_time,
    pairwise_comm_time,
)
from repro.engine.construction import ConstructionReport, build_local_graphs
from repro.engine.messages import ActivateBatch, RawGatherBatch, SyncBatch
from repro.engine.state import VertexSlot
from repro.engine.vectorized import NO_COLUMN, VectorizedExecutor
from repro.engine.vertex_program import ApplyContext, VertexProgram
from repro.errors import (
    EngineError,
    NoStandbyNodeError,
    UnrecoverableFailureError,
)
from repro.exec.protocol import NodeProtocol
from repro.ft.checkpoint import CheckpointManager
from repro.ft.edge_ckpt import EdgeCkptStore, EdgeRecord
from repro.ft.recovery import RecoveryOutcome, RecoveryStats
from repro.ft.replication import plan_replication
from repro.graph.graph import Graph
from repro.membership.election import elect_leader
from repro.membership.policy import FtPolicy
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.partition.base import make_partitioner


@dataclass
class IterationStats:
    """Per-superstep accounting."""

    iteration: int
    active_masters: int
    messages: int
    bytes: int
    compute_edges: int
    #: Simulated time of this superstep (post-barrier minus pre).
    sim_time_s: float
    #: Simulated time spent checkpointing inside this barrier.
    checkpoint_s: float = 0.0
    #: Wall-clock time at the end of this iteration's barrier.
    sim_clock_s: float = 0.0


@dataclass
class RunResult:
    """Everything a finished (or failed-and-recovered) run reports."""

    algorithm: str
    num_iterations: int
    values: dict[int, Any]
    iteration_stats: list[IterationStats] = field(default_factory=list)
    recoveries: list[RecoveryStats] = field(default_factory=list)
    construction: ConstructionReport | None = None
    total_sim_time_s: float = 0.0
    total_messages: int = 0
    total_bytes: int = 0
    #: Combining-layer surface (DESIGN.md §15): physical gather records
    #: saved by sender-side combining (pre-combine minus on-the-wire)
    #: and the corresponding pre/physical ratio (1.0 when nothing was
    #: combinable — edge-cut, no combiner, or combining off).
    combined_records: int = 0
    combine_ratio: float = 1.0
    halted_early: bool = False
    #: Degraded-mode surface (DESIGN.md §9): the minimum mirror count
    #: across masters at the end of the run, and whether that is below
    #: the configured ft_level (repair could not fully restore K+1).
    ft_level_current: int = 0
    ft_degraded: bool = False
    #: Fallback-ladder usage: rung name -> times it handled a failure
    #: the first-choice mechanism could not.
    fallbacks: dict[str, int] = field(default_factory=dict)
    #: Elastic-membership surface (DESIGN.md §14): joins/drains
    #: completed, masters moved, transfer bytes, adaptive-floor event
    #: log; empty for static runs.
    membership: dict[str, Any] = field(default_factory=dict)

    def avg_iteration_time_s(self) -> float:
        times = [s.sim_time_s - s.checkpoint_s for s in self.iteration_stats]
        return sum(times) / len(times) if times else 0.0


@dataclass(frozen=True)
class _ScheduledFailure:
    iteration: int
    nodes: tuple[int, ...]
    #: "compute" = crash during the superstep (detected at the barrier,
    #: iteration rolled back); "after_commit" = crash right after the
    #: barrier commit (detected leaving the barrier, no rollback).
    phase: str = "compute"


class Engine:
    """Synchronous graph-parallel engine with pluggable fault tolerance."""

    def __init__(self, graph: Graph, program: VertexProgram,
                 job: JobConfig | None = None,
                 cluster: Cluster | None = None,
                 partitioning=None, seed: int | None = None,
                 tracer: Tracer | None = None):
        self.job = job or JobConfig()
        self.job.validate()
        self.graph = graph
        self.program = program
        self.cluster = cluster or Cluster(
            self.job.cluster,
            store_in_memory=self.job.ft.checkpoint_in_memory)
        self.model: CostModel = self.cluster.cost_model
        self.seed = self.job.cluster.seed if seed is None else seed

        # -- observability (DESIGN.md §8) -----------------------------
        self.tracer = tracer or NULL_TRACER
        self.tracer.bind_sim_clock(self.cluster.clocks.global_max)
        self.metrics = MetricsRegistry()
        self.cluster.network.bind_metrics(self.metrics)

        # -- loading phase (Section 4) --------------------------------
        with self.tracer.span("load", cat="load",
                              algorithm=program.name):
            if partitioning is None:
                partitioner = make_partitioner(self.job.engine.partition)
                with self.tracer.span("load.partition", cat="load"):
                    partitioning = partitioner(graph,
                                               self.cluster.num_workers,
                                               seed=self.seed)
            partitioning.validate(graph)
            self.partitioning = partitioning
            plan_cfg = (self.job.ft
                        if self.job.ft.mode is FTMode.REPLICATION
                        else _zero_ft(self.job.ft))
            with self.tracer.span("load.replicate", cat="load"):
                self.plan = plan_replication(graph, partitioning, plan_cfg,
                                             seed=self.seed)
            with self.tracer.span("load.construct", cat="load"):
                self.local_graphs, self.construction = build_local_graphs(
                    graph, partitioning, self.plan)
            for node_id, lg in self.local_graphs.items():
                self.cluster.node(node_id).local = lg
            self.master_node_of: list[int] = [int(n)
                                              for n in self.plan.master_of]
            self.is_edge_cut = partitioning.kind == "edge-cut"
            #: Transport policy (DESIGN.md §10): columnar batching and
            #: no-op sync elision.
            self._batch_syncs = self.job.engine.batch_syncs
            self._sync_elision = self.job.engine.sync_elision
            self._combining = self.job.engine.combining
            #: Backend-agnostic per-node protocol (DESIGN.md §12): the
            #: scalar compute/sync/commit paths below delegate here, and
            #: the multiprocessing backend runs the same object inside
            #: worker processes.  ``selfish_opt`` is refreshed at every
            #: superstep from :attr:`selfish_opt_active`.
            self._protocol = NodeProtocol(
                program, self.is_edge_cut,
                sync_elision=self._sync_elision,
                selfish_opt=False,
                combining=self._combining)
            #: Vectorized SoA fast path (DESIGN.md §11): engaged when
            #: the config allows it AND the program declares an array
            #: kernel; edge-mutating programs always run scalar.
            kernel = (program.kernel()
                      if (self.job.engine.vectorized
                          and not program.mutates_edges) else None)
            self._vec = (VectorizedExecutor(self, kernel)
                         if kernel is not None else None)

            # -- fault-tolerance wiring --------------------------------
            self.ckpt: CheckpointManager | None = None
            self.edge_ckpt: EdgeCkptStore | None = None
            #: REPLICATION composed with low-frequency full snapshots —
            #: the checkpoint rung of the fallback ladder (DESIGN.md §9).
            self._safety_ckpt = (
                self.job.ft.mode is FTMode.REPLICATION
                and self.job.ft.safety_checkpoint_interval > 0)
            with self.tracer.span("load.ft_init", cat="load",
                                  ft_mode=self.job.ft.mode.value):
                if self.job.ft.mode is FTMode.CHECKPOINT:
                    self.ckpt = CheckpointManager(
                        self.cluster.store, self.model,
                        interval=self.job.ft.checkpoint_interval,
                        in_memory=self.job.ft.checkpoint_in_memory,
                        num_nodes=self.cluster.num_workers,
                        tracer=self.tracer)
                    self.ckpt.write_metadata(self.local_graphs)
                elif self._safety_ckpt:
                    self.ckpt = CheckpointManager(
                        self.cluster.store, self.model,
                        interval=self.job.ft.safety_checkpoint_interval,
                        in_memory=self.job.ft.checkpoint_in_memory,
                        num_nodes=self.cluster.num_workers,
                        tracer=self.tracer)
                    self.ckpt.write_metadata(self.local_graphs)
                if (self.job.ft.mode is FTMode.REPLICATION
                        and not self.is_edge_cut):
                    self.edge_ckpt = EdgeCkptStore(self.cluster.store,
                                                   self.cluster.num_workers)
                    self._write_edge_ckpt_files()

        # -- runtime state ------------------------------------------------
        self.iteration = 0
        #: Superstep of the last committed barrier (DESIGN.md §13):
        #: ``-1`` until the first commit (initial values), rewound by
        #: recovery to whatever superstep the restored state reflects.
        #: The read-serving layer tags every response with this.
        self.committed_iteration = -1
        #: True while :meth:`_recover` is running — the explicit
        #: degraded window the read router tags responses with.
        self.in_recovery = False
        #: Selfish masters recomputed by the *last* recovery: their
        #: slot holds the value the upcoming retry will commit (one
        #: gather+apply over committed neighbor state), and — because
        #: the selfish optimisation elides their replica syncs — no
        #: surviving copy holds the last-*committed* value.  The read
        #: router fences these gids to a degraded miss until the next
        #: commit barrier closes the window (DESIGN.md §13).
        self.selfish_read_fence: set[int] = set()
        self._failures: list[_ScheduledFailure] = []
        #: Chaos plugins (fault injectors, invariant checkers); each gets
        #: ``on_phase(engine, phase)`` at every hook point.
        self._chaos_plugins: list[Any] = []
        #: Serve hooks (read pumps, read-consistency checkers): called
        #: at every phase hook *before* any chaos-driven column flush,
        #: so point reads exercise the flush-free committed path.
        self._serve_hooks: list[Any] = []
        self.iteration_stats: list[IterationStats] = []
        self.recoveries: list[RecoveryStats] = []
        #: Sync records skipped as non-activating no-ops (DESIGN.md §10).
        self.syncs_elided = 0
        self._halted = False
        self._last_barrier_clock = 0.0
        #: CKPT mode: edge mutations since the last snapshot, per node.
        self._edge_journal: dict[int, list] = defaultdict(list)
        #: Slots touched this superstep, per node (committed or rolled
        #: back at the barrier).
        self._dirty: dict[int, dict[int, VertexSlot]] = {}
        #: Masters whose activity flag must be re-broadcast to replicas
        #: (vertex-cut scheduling).
        self._broadcast_pending: dict[int, set[int]] = defaultdict(set)
        #: Safety-net mode: cumulative position-independent edge-weight
        #: log, (src_gid, dst_gid) -> latest weight.  Survives arbitrary
        #: recoveries between snapshots (unlike the positional CKPT-mode
        #: journal, which assumes masters never move).
        self._safety_edge_log: dict[tuple[int, int], float] = {}
        #: Degraded-mode state (DESIGN.md §9), kept current by
        #: :meth:`_update_ft_gauges`.
        self._ft_level_current = 0
        self._ft_degraded = False
        # -- elastic membership + adaptive FT (DESIGN.md §14) ---------
        #: Created lazily on the first join/drain request; ``None`` for
        #: static clusters.
        self._membership = None
        #: Scheduled membership events: (iteration, kind, target, count).
        self._membership_schedule: list[tuple[int, str, Any, int]] = []
        #: Nodes that flapped since the last commit barrier; delta
        #: re-synced at the next ``post_commit`` (inboxes are empty
        #: there, so the resync cannot race in-flight superstep syncs).
        self._flapped_pending: list[int] = []
        #: Adaptive replication-floor controller, active only when the
        #: config declares a [ft_level_min, ft_level_max] band.
        self._ft_policy = (FtPolicy(self.job.ft)
                           if self.job.ft.adaptive_ft else None)
        #: Leader-elected recovery coordination: the current recovery
        #: leader and its term (bumped per election).
        self.recovery_leader = -1
        self.leader_term = 0
        self._init_values()
        self._update_ft_gauges()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def attach_chaos(self, plugin: Any) -> None:
        """Register a chaos plugin (:mod:`repro.chaos`).

        A plugin exposes ``on_phase(engine, phase)`` and is called at
        every engine phase hook: ``after_commit``, ``superstep_start``,
        ``gather``, ``sync``, ``barrier`` (crash-injection points, in
        intra-iteration order), plus ``post_commit``, ``recovery``,
        ``recovery_protocol`` (after a recovery protocol ran but before
        its result is considered final — a crash here restarts recovery
        with the enlarged failure set, Section 5.3.2) and
        ``post_recovery`` (observation / concurrent-failure points).
        Plugins run in attach order.
        """
        self._chaos_plugins.append(plugin)

    def attach_serve(self, hook: Any) -> None:
        """Register a read-serving hook (:mod:`repro.serve`).

        Like a chaos plugin, a serve hook exposes
        ``on_phase(engine, phase)`` and runs at every phase hook — but
        *before* the chaos plugins and before any vectorized-column
        flush, so the hook's point reads go through the flush-free
        committed-value path (DESIGN.md §13).
        """
        self._serve_hooks.append(hook)

    def schedule_failure(self, iteration: int, nodes, phase: str = "compute"
                         ) -> None:
        """Inject fail-stop crashes at a chosen point of the run."""
        if phase not in ("compute", "after_commit"):
            raise EngineError(f"unknown failure phase: {phase}")
        nodes = tuple(int(n) for n in
                      (nodes if hasattr(nodes, "__iter__") else (nodes,)))
        for n in nodes:
            # Elastically joined workers live above num_workers but are
            # legitimate crash targets once they host a local graph.
            if n < 0 or (n >= self.cluster.num_workers
                         and n not in self.local_graphs):
                raise EngineError(f"cannot schedule failure of node {n}")
        self._failures.append(_ScheduledFailure(iteration, nodes, phase))

    # -- elastic membership + adaptive FT (DESIGN.md §14) -------------

    @property
    def membership(self):
        """The :class:`MembershipManager`, or None for static runs."""
        return self._membership

    @property
    def effective_ft_floor(self) -> int:
        """The replication floor repair currently *targets*."""
        if self._ft_policy is not None:
            return self._ft_policy.floor_target
        return self.job.ft.ft_level

    @property
    def enforced_ft_floor(self) -> int:
        """The floor invariants and gauges hold the cluster to.

        With an adaptive policy this rises only as background repair
        actually completes (``min(target, achieved)``); otherwise it is
        the static configured K.
        """
        if self._ft_policy is not None:
            return self._ft_policy.floor_enforced
        return self.job.ft.ft_level

    def _require_membership(self):
        if self._membership is None:
            from repro.membership.manager import MembershipManager
            self._membership = MembershipManager(self)
        return self._membership

    def request_join(self, count: int = 1) -> list[int]:
        """Admit ``count`` fresh worker nodes (elastic scale-out).

        Must be called at a commit-barrier boundary (use
        :meth:`schedule_membership` from inside a run).  State transfer
        is throttled over the following barriers.
        """
        return self._require_membership().request_join(count)

    def request_drain(self, node: int) -> None:
        """Begin draining ``node``; it retires once emptied."""
        self._require_membership().request_drain(node)

    def schedule_membership(self, iteration: int, kind: str,
                            target: int | None = None,
                            count: int = 1) -> None:
        """Schedule an elastic-membership event for a running job.

        ``kind`` is ``"join"``, ``"drain"`` or ``"flap"``.  Joins and
        drains apply at the commit barrier *of* ``iteration``; a flap
        stalls its target for that iteration's superstep.
        """
        if kind not in ("join", "drain", "flap"):
            raise EngineError(f"unknown membership event kind: {kind}")
        if kind in ("drain", "flap") and target is None:
            raise EngineError(f"membership event {kind!r} needs a target")
        self._membership_schedule.append(
            (int(iteration), kind, target, int(count)))

    def flap_node(self, node: int) -> None:
        """Transient stall: the node misses heartbeats but returns
        below the death budget, so it is never declared failed.

        The stall is charged to the node's clock; the detector's flap
        statistics feed the adaptive floor policy; re-integration is a
        *delta sync* at the next commit barrier (no rebirth, no
        recovery protocol).
        """
        detector = self.cluster.detector
        beats = detector.record_flap(node)
        self.cluster.clocks.advance(node, beats * detector.interval_s)
        self._flapped_pending.append(node)
        if self._ft_policy is not None:
            self._ft_policy.on_flap(self.iteration)
        self.metrics.inc("membership.flaps")
        self.metrics.set_gauge(f"ft.suspicion.node.{node}",
                               detector.suspicion_level(node))
        self.tracer.instant("membership.flap", cat="membership",
                            node=node, stalled_beats=beats)

    def run(self, max_iterations: int | None = None) -> RunResult:
        """Execute the job to completion (Algorithm 1).

        Trace contract: the top-level ``superstep`` and ``recovery``
        spans emitted here tile the simulated timeline — their
        ``dur_sim_s`` sum to :attr:`RunResult.total_sim_time_s`.
        """
        limit = max_iterations or self.job.engine.max_iterations
        while self.iteration < limit:
            self._fire_membership_events("superstep_start")
            self._inject("compute")
            with self.tracer.span("superstep", cat="superstep",
                                  iteration=self.iteration) as sp:
                failed = self._run_superstep()
                if failed is None:
                    self._commit_barrier()
                else:
                    sp.annotate(rolled_back=True,
                                failed_nodes=list(failed))
            if failed is not None:
                # Failure detected entering the barrier: roll back and
                # recover, then retry the same iteration.
                with self.tracer.span("recovery", cat="recovery",
                                      iteration=self.iteration,
                                      failed_nodes=list(failed)):
                    self._rollback()
                    self._recover(failed)
                continue
            self._chaos_point("post_commit")
            self._membership_pump()
            self.iteration += 1
            if self._halted and self.job.engine.halt_on_inactive:
                self.tracer.instant("halt", cat="engine",
                                    iteration=self.iteration)
                break
            self._inject("after_commit")
            self._chaos_point("after_commit")
            failed = self._leave_barrier()
            if failed:
                with self.tracer.span("recovery", cat="recovery",
                                      iteration=self.iteration,
                                      failed_nodes=list(failed),
                                      after_commit=True):
                    self._recover(failed)
        return self._result()

    def values(self) -> dict[int, Any]:
        """Current committed value of every vertex (from its master)."""
        if self._vec is not None:
            self._vec.flush()
        out: dict[int, Any] = {}
        for v in range(self.graph.num_vertices):
            node = self.master_node_of[v]
            out[v] = self.local_graphs[node].slot_of(v).value
        return out

    def value_of(self, gid: int) -> Any:
        """Committed value of one vertex, read from its master.

        A point read (DESIGN.md §13): neither materializes the full
        :meth:`values` dict nor triggers a whole-column vectorized
        writeback — when a committed SoA column is cached the value is
        read straight from it, otherwise from the slot.
        """
        return self.committed_value_at(self.master_node_of[gid], gid)

    def committed_value_at(self, node: int, gid: int) -> Any:
        """Flush-free committed read of one vertex copy on one node.

        Valid for any copy — master, mirror or plain replica; between
        barriers every copy holds the value committed at
        :attr:`committed_iteration` (the replica value-agreement
        invariant), which is exactly what this returns.
        """
        lg = self.local_graphs[node]
        pos = lg.index_of[gid]
        if self._vec is not None:
            value = self._vec.committed_value(node, pos)
            if value is not NO_COLUMN:
                return value
        return lg.slots[pos].value

    def memory_report(self) -> dict[int, int]:
        """Per-node resident bytes of graph state (Tables 3 and 7)."""
        if self._vec is not None:
            self._vec.flush()
        return {node: lg.memory_nbytes(self.program)
                for node, lg in self.local_graphs.items()
                if self.cluster.node(node).is_alive}

    def initial_value_of(self, gid: int) -> Any:
        """Deterministic pre-run value (checkpoint recovery baseline)."""
        return self.program.initial_value(gid, self._ctx())

    # ------------------------------------------------------------------
    # loading helpers
    # ------------------------------------------------------------------

    def _init_values(self) -> None:
        ctx = self._ctx()
        init_cache: dict[int, Any] = {}
        for lg in self.local_graphs.values():
            for slot in lg.iter_slots():
                if slot.gid not in init_cache:
                    init_cache[slot.gid] = self.program.initial_value(
                        slot.gid, ctx)
                slot.value = init_cache[slot.gid]
                lg.set_active(slot,
                              self.program.is_initially_active(slot.gid))
                slot.last_activates = False
                slot.last_update_iter = -1
                if slot.is_master:
                    slot.replicas_known_active = slot.active
                    # Masters mirror their own committed self-activity so
                    # recovery snapshots of mirror state stay truthful.
                    slot.mirror_self_active = slot.active
                if slot.is_mirror:
                    slot.mirror_self_active = slot.active

    def _write_edge_ckpt_files(self) -> None:
        """Persist per-node edge files for vertex-cut FT (Section 4.3).

        An edge's receiver file is keyed by a node hosting the master
        or a mirror of its *target* vertex (excluding the owner), so
        Migration reloads land edges next to a surviving copy.
        """
        assert self.edge_ckpt is not None
        for node, lg in self.local_graphs.items():
            by_receiver: dict[int, list[EdgeRecord]] = defaultdict(list)
            for slot in lg.iter_slots():
                if not slot.in_edges:
                    continue
                receiver = self._edge_receiver(slot.gid, node)
                for src_pos, weight in slot.in_edges:
                    src_slot = lg.slots[src_pos]
                    by_receiver[receiver].append(
                        EdgeRecord(src_slot.gid, slot.gid, weight))
            self.edge_ckpt.write_node_edges(node, dict(by_receiver))

    def _edge_receiver(self, target_gid: int, owner_node: int) -> int:
        """Pick the surviving node that would reload this edge."""
        master = self.master_node_of[target_gid]
        if master != owner_node:
            return master
        master_slot = self.local_graphs[master].slot_of(target_gid)
        for node in master_slot.meta.mirror_nodes:
            if node != owner_node:
                return node
        # No mirror off the owner (ft_level 0): fall back to the next
        # node round-robin; recovery of this edge then needs the
        # checkpoint path anyway.
        return (owner_node + 1) % self.cluster.num_workers

    # ------------------------------------------------------------------
    # superstep phases
    # ------------------------------------------------------------------

    @property
    def selfish_opt_active(self) -> bool:
        """Whether the selfish-vertex optimisation applies (Section 4.4).

        Requires a history-free program (so recovery can recompute the
        dynamic state from neighbors) with immutable edges (so the
        mirrors' edge copies never go stale without sync).
        """
        return (self.job.ft.selfish_optimization
                and self.program.history_free
                and not self.program.mutates_edges)

    def _ctx(self) -> ApplyContext:
        return ApplyContext(iteration=self.iteration,
                            num_vertices=self.graph.num_vertices,
                            num_edges=self.graph.num_edges)

    def _alive(self) -> list[int]:
        return self.cluster.alive_workers()

    def _chaos_point(self, phase: str) -> None:
        """Invoke serve hooks, then every chaos plugin, at a phase hook."""
        # Serve hooks first, before any flush: their reads must take
        # the flush-free committed-column path (DESIGN.md §13).
        for hook in self._serve_hooks:
            hook.on_phase(self, phase)
        if not self._chaos_plugins:
            return
        # Plugins inspect slot state directly; surface any deferred
        # vectorized column commits first.
        if self._vec is not None:
            self._vec.flush()
        for plugin in self._chaos_plugins:
            plugin.on_phase(self, phase)

    def _filter_alive(self, nodes: list[int]) -> list[int]:
        """Drop nodes a chaos plugin crashed since the list was taken."""
        return [n for n in nodes if self.cluster.node(n).is_alive]

    def _run_superstep(self) -> tuple[int, ...] | None:
        """Compute + communicate; returns failed nodes or None."""
        net = self.cluster.network
        net.begin_step()
        alive = self._alive()
        self._dirty = {node: {} for node in alive}
        self._step_edges: dict[int, int] = defaultdict(int)
        self._step_vertices: dict[int, int] = defaultdict(int)
        #: Staged edge mutations: node -> [(slot, [(idx, new_w)])].
        self._edge_updates: dict[int, list] = defaultdict(list)
        #: Traffic totals at superstep start; the barrier commit closes
        #: the window so IterationStats covers the whole superstep,
        #: activation/control traffic of the commit included.
        self._step_start = (net.totals.total_msgs, net.totals.total_bytes)

        self._chaos_point("superstep_start")
        alive = self._filter_alive(alive)
        with self.tracer.span("compute", iteration=self.iteration,
                              mode=("edge-cut" if self.is_edge_cut
                                    else "vertex-cut")) as sp:
            if self.is_edge_cut:
                if self._vec is not None:
                    self._vec.edge_cut_compute(alive)
                else:
                    self._edge_cut_compute(alive)
            elif self._vec is not None:
                self._vec.vertex_cut_compute(alive)
            else:
                self._vertex_cut_compute(alive)
            # Advance per-node clocks: framework overhead + compute.
            for node in alive:
                cores = self.cluster.node(node).cores
                self.cluster.clocks.advance(
                    node, self.model.superstep_overhead_s)
                self.cluster.clocks.advance(node, compute_time(
                    self.model, self._step_edges[node],
                    self._step_vertices[node], cores))
            sp.annotate(edges=sum(self._step_edges.values()),
                        vertices=sum(self._step_vertices.values()))
        # Compute done, all syncs sent but not yet delivered: a crash
        # here models in-flight message loss during the sync exchange.
        self._chaos_point("sync")
        alive = self._filter_alive(alive)

        # Batched communication: the slower direction per node pair.
        with self.tracer.span("sync", iteration=self.iteration) as sp:
            for node in alive:
                self.cluster.clocks.advance(node, pairwise_comm_time(
                    self.model, net.step_bytes, net.step_msgs, node))
            sp.annotate(
                msgs=net.totals.total_msgs - self._step_start[0],
                bytes=net.totals.total_bytes - self._step_start[1])

        # enter_barrier: detect failures (Algorithm 1, line 7).
        with self.tracer.span("detect", iteration=self.iteration) as sp:
            self._chaos_point("barrier")
            failed = tuple(sorted(self.cluster.detector.newly_failed()))
            if failed:
                sp.annotate(failed_nodes=list(failed))
        return failed if failed else None

    # -- edge-cut ---------------------------------------------------------

    def _edge_cut_compute(self, alive: list[int]) -> None:
        ctx = self._ctx()
        proto = self._protocol
        proto.selfish_opt = self.selfish_opt_active
        mutation_log = (self._edge_updates
                        if self.program.mutates_edges else None)
        # Chaos hook fires mid-loop so a crash lands after a prefix of
        # the nodes computed and sent their syncs (partial-batch loss).
        mid = (len(alive) + 1) // 2 if len(alive) > 1 else 0
        for i, node in enumerate(alive):
            if i == mid:
                self._chaos_point("gather")
            if not self.cluster.node(node).is_alive:
                continue
            lg = self.local_graphs[node]
            outbox: dict = {}
            edges, vertices, elided = proto.edge_cut_compute_node(
                lg, ctx, outbox, self._dirty[node], mutation_log)
            self.syncs_elided += elided
            # Flushed per node, so a mid-compute crash still loses the
            # not-yet-computed nodes' syncs (partial-batch semantics).
            self._flush_batches(node, outbox)
            self._step_edges[node] += edges
            self._step_vertices[node] += vertices

    def _flush_batches(self, node: int, outbox: dict) -> None:
        """Ship a node's accumulated batches, one message per pair.

        With ``batch_syncs`` disabled each record travels as its own
        single-record batch — wire-byte equivalent to the historical
        per-record transport (the perf benchmark's before-side).
        """
        net = self.cluster.network
        if self._batch_syncs:
            for (dst, kind), batch in outbox.items():
                net.send(Message(kind, node, dst, batch, batch.nbytes()))
        else:
            for (dst, kind), batch in outbox.items():
                for i in range(batch.record_count):
                    sub = batch.select((i,))
                    net.send(Message(kind, node, dst, sub, sub.nbytes()))
        outbox.clear()

    # -- vertex-cut -----------------------------------------------------------

    def _vertex_cut_broadcast(self, alive: list[int], net) -> None:
        """Phase 0: masters whose activity changed since replicas last
        heard broadcast the flag (cheap; zero for always-active runs).
        Shared by the scalar and vectorized paths."""
        proto = self._protocol
        for node in alive:
            lg = self.local_graphs[node]
            pending = self._broadcast_pending.get(node)
            if not pending:
                continue
            outbox = proto.broadcast_build(lg, pending)
            pending.clear()
            self._flush_batches(node, outbox)
        for node in alive:
            lg = self.local_graphs[node]
            for msg in net.deliver(node):
                proto.broadcast_apply(lg, msg.payload)

    def _vertex_cut_compute(self, alive: list[int]) -> None:
        ctx = self._ctx()
        proto = self._protocol
        proto.selfish_opt = self.selfish_opt_active
        net = self.cluster.network
        mutation_log = (self._edge_updates
                        if self.program.mutates_edges else None)

        self._vertex_cut_broadcast(alive, net)

        # Phase 1: local partial gathers flow to masters.
        partials: dict[int, dict[int, list[tuple[int, Any]]]] = {
            node: defaultdict(list) for node in alive}
        for node in alive:
            lg = self.local_graphs[node]
            outbox: dict = {}
            local: list[tuple[int, Any]] = []
            edges = proto.vertex_gather(lg, ctx, outbox, local,
                                        mutation_log)
            bucket = partials[node]
            for gid, acc in local:
                bucket[gid].append((node, acc))
            self._flush_batches(node, outbox)
            self._step_edges[node] += edges
        # Partial gathers are in flight toward the masters: a crash here
        # loses both the crashed node's partials and its inbox.
        self._chaos_point("gather")
        alive = self._filter_alive(alive)
        for node in alive:
            for msg in net.deliver(node):
                batch = msg.payload
                bucket = partials[node]
                if isinstance(batch, RawGatherBatch):
                    # Combining off: fold each record's raw contribution
                    # group on receipt (DESIGN.md §15) — the partial the
                    # sender would have shipped combined.
                    accs = proto.fold_raw_gather(batch)
                else:
                    accs = batch.accs
                for gid, acc in zip(batch.gids, accs):
                    bucket[gid].append((msg.src, acc))

        # Phase 2: masters fold partials (node-id order for
        # determinism), apply, and scatter.
        for node in alive:
            lg = self.local_graphs[node]
            outbox = {}
            vertices, elided = proto.master_fold_apply(
                lg, partials[node], ctx, outbox, self._dirty[node])
            self.syncs_elided += elided
            self._flush_batches(node, outbox)
            self._step_vertices[node] += vertices

    # ------------------------------------------------------------------
    # barrier commit
    # ------------------------------------------------------------------

    def _commit_barrier(self) -> None:
        """Commit pending state inside the global barrier (lines 14-15)."""
        alive = self._alive()
        net = self.cluster.network
        with self.tracer.span("barrier", iteration=self.iteration) as sp:
            ckpt_time = self._commit_barrier_inner(alive, net, sp)
        self._finish_iteration_stats(alive, net, ckpt_time)
        # The barrier committed: reads served from here on reflect this
        # superstep (the vectorized columns already hold it, flushed or
        # not — the read path never needs the slot writeback).  Any
        # recovery-recomputed selfish values are now the committed
        # values, so the read fence closes.
        self.committed_iteration = self.iteration
        if self.selfish_read_fence:
            self.selfish_read_fence.clear()

    def _commit_barrier_inner(self, alive: list[int], net, span) -> float:
        # Apply received syncs to replicas/mirrors.
        with self.tracer.span("barrier.apply_syncs",
                              iteration=self.iteration):
            self._apply_received_syncs(alive, net)

        # Commit staged edge mutations (Section 4.3).  Under vertex-cut
        # every update is incrementally logged to the owner's edge-ckpt
        # file, overlapped with execution (bytes counted, no time).
        self._commit_edge_mutations()

        # Commit values and resolve activations.
        with self.tracer.span("barrier.commit", iteration=self.iteration):
            total_active = self._commit_values(alive, net)
        self._halted = total_active == 0
        span.annotate(active_masters=total_active)

        # Checkpoint inside the barrier (Section 2.2); in REPLICATION
        # mode this is the opt-in low-frequency safety net instead.
        ckpt_time = 0.0
        if self.ckpt is not None and self.ckpt.due(self.iteration):
            # Checkpoints read the slots; surface deferred commits.
            if self._vec is not None:
                self._vec.flush()
            if self._safety_ckpt:
                ckpt_time = self.ckpt.safety_checkpoint(
                    self.iteration, self.local_graphs, self.program,
                    alive, self._safety_edge_log)
            else:
                ckpt_time = self.ckpt.checkpoint(self.iteration,
                                                 self.local_graphs,
                                                 self.program, alive,
                                                 self._edge_journal)
                self._edge_journal = defaultdict(list)
            for node in alive:
                self.cluster.clocks.advance(node, ckpt_time)
        return ckpt_time

    def _apply_received_syncs(self, alive: list[int], net) -> None:
        proto = self._protocol
        for node in alive:
            lg = self.local_graphs[node]
            for msg in net.deliver(node):
                payload = msg.payload
                if isinstance(payload, SyncBatch):
                    if self._vec is not None:
                        self._vec.stage_sync_batch(node, payload)
                    else:
                        proto.apply_sync_batch(lg, payload,
                                               self._dirty[node])
                    continue
                # Legacy scalar payloads (recovery paths, tests).
                if self._vec is not None:
                    self._vec.stage_scalar(node, payload)
                    continue
                proto.apply_scalar_sync(lg, payload, self._dirty[node])

    def _commit_edge_mutations(self) -> None:
        if self._edge_updates:
            for node, items in self._edge_updates.items():
                lg = self.local_graphs[node]
                for slot, updates in items:
                    for idx, weight in updates:
                        src_pos, _old = slot.in_edges[idx]
                        slot.in_edges[idx] = (src_pos, weight)
                        if self.edge_ckpt is not None:
                            receiver = self._edge_receiver(slot.gid, node)
                            self.edge_ckpt.log_edge_update(
                                node, receiver,
                                EdgeRecord(lg.slots[src_pos].gid, slot.gid,
                                           weight))
                        if self.ckpt is not None:
                            if self._safety_ckpt:
                                self._safety_edge_log[
                                    (lg.slots[src_pos].gid, slot.gid)] = \
                                    weight
                            else:
                                self._edge_journal[node].append(
                                    (slot.gid, idx, weight))
            self._edge_updates = defaultdict(list)

    def _commit_values(self, alive: list[int], net) -> int:
        """Commit pending values, resolve activations; returns the
        number of active masters after the superstep."""
        if self._vec is not None:
            return self._vec.commit_values(alive, net)
        proto = self._protocol
        activation_signals: set[tuple[int, int, int]] = set()
        for node in alive:
            lg = self.local_graphs[node]
            for dst_node, gid in proto.commit_stage1(
                    lg, self._dirty[node], self.iteration):
                activation_signals.add((node, dst_node, gid))

        # Vertex-cut: remote activation signals travel to masters.
        if activation_signals:
            outboxes: dict[int, dict] = defaultdict(dict)
            for src_node, dst_node, gid in sorted(activation_signals):
                outbox = outboxes[src_node]
                key = (dst_node, MessageKind.ACTIVATE)
                batch = outbox.get(key)
                if batch is None:
                    batch = outbox[key] = ActivateBatch()
                batch.append(gid)
            for src_node in sorted(outboxes):
                self._flush_batches(src_node, outboxes[src_node])
            for node in alive:
                lg = self.local_graphs[node]
                for msg in net.deliver(node):
                    # The activation exchange must only ever see the
                    # ACTIVATE batch just sent above; blindly treating
                    # every inbox message as an activation would flip
                    # ``next_active`` from stray payloads lacking the
                    # semantics (and hide a sequencing bug upstream).
                    if msg.kind is not MessageKind.ACTIVATE:
                        raise EngineError(
                            f"unexpected {msg.kind.value} message from "
                            f"node {msg.src} in the activation exchange "
                            f"of iteration {self.iteration}")
                    proto.apply_activations(lg, msg.payload.gids,
                                            self._dirty[node])

        # Finalise active flags for the touched slots.
        for node in alive:
            lg = self.local_graphs[node]
            stale = proto.finalize_commit(lg, self._dirty[node],
                                          self.iteration)
            if stale:
                self._broadcast_pending[node].update(stale)
        return sum(len(self.local_graphs[n].active_masters)
                   for n in alive)

    def _finish_iteration_stats(self, alive: list[int], net,
                                ckpt_time: float) -> None:
        """Close the superstep: barrier clocks, stats, metrics snapshot."""
        post = self.cluster.clocks.barrier(self.model, alive)
        msgs = net.totals.total_msgs - self._step_start[0]
        nbytes = net.totals.total_bytes - self._step_start[1]
        total_active = sum(len(self.local_graphs[n].active_masters)
                           for n in alive)
        self.iteration_stats.append(IterationStats(
            iteration=self.iteration,
            active_masters=total_active,
            messages=msgs, bytes=nbytes,
            compute_edges=sum(self._step_edges.values()),
            sim_time_s=post - self._last_barrier_clock,
            checkpoint_s=ckpt_time,
            sim_clock_s=post))
        self._last_barrier_clock = post
        self.metrics.inc("engine.supersteps")
        self.metrics.set_gauge("engine.syncs_elided", self.syncs_elided)
        self.metrics.set_gauge("engine.active_masters", total_active)
        self.metrics.set_gauge("engine.iteration", self.iteration)
        # Per-node suspicion levels (flap-tolerant detection surface):
        # 0.0 for a healthy node, rising with consecutive missed beats,
        # 1.0 for a confirmed crash.
        detector = self.cluster.detector
        for nid in sorted(self.cluster.coordination.members):
            self.metrics.set_gauge(f"ft.suspicion.node.{nid}",
                                   detector.suspicion_level(nid))
        self.metrics.snapshot(iteration=self.iteration, sim_clock_s=post)

    def _leave_barrier(self) -> tuple[int, ...]:
        """Post-commit failure check (Algorithm 1, line 16)."""
        return tuple(sorted(self.cluster.detector.newly_failed()))

    # ------------------------------------------------------------------
    # elastic membership + adaptive FT pumps (DESIGN.md §14)
    # ------------------------------------------------------------------

    def _fire_membership_events(self, phase: str) -> None:
        """Fire scheduled membership events due at this phase."""
        if not self._membership_schedule:
            return
        due_phase = {"flap": "superstep_start", "join": "post_commit",
                     "drain": "post_commit"}
        rest: list[tuple[int, str, Any, int]] = []
        for item in self._membership_schedule:
            it, kind, target, count = item
            if it != self.iteration or due_phase[kind] != phase:
                rest.append(item)
                continue
            if kind == "join":
                self.request_join(count)
            elif target is not None \
                    and self.cluster.node(target).is_alive:
                if kind == "flap":
                    self.flap_node(target)
                else:
                    self.request_drain(target)
        self._membership_schedule = rest

    def _membership_pump(self) -> None:
        """Post-commit membership work, in dependency order: scheduled
        joins/drains fire, flapped nodes delta-resync, the transfer
        pump advances, then the adaptive-floor policy runs its
        throttled repair against the settled layout."""
        self._fire_membership_events("post_commit")
        if self._flapped_pending:
            self._flap_resync()
        if self._membership is not None and self._membership.active:
            with self.tracer.span("membership.pump", cat="membership",
                                  iteration=self.iteration):
                self._membership.pump()
        if self._ft_policy is not None:
            self._policy_pump()

    def _flap_resync(self) -> None:
        """Delta re-integration of flapped nodes (DESIGN.md §14).

        Runs at the commit barrier after the flap, when inboxes are
        empty: every master elsewhere whose value committed this
        superstep re-pushes it to the copies the flapped node hosts.
        The sync also travelled the normal path — the flap never lost
        it — so the rewrite is value-neutral and results stay
        bit-identical to a flap-free run; only traffic and simulated
        time move.  Active *flags* are deliberately left alone: a
        replica holds the flag its master last broadcast, which the
        master may have elided, and overwriting it would diverge from
        the flap-free run.
        """
        flapped = sorted({n for n in self._flapped_pending
                          if self.cluster.node(n).is_alive})
        self._flapped_pending = []
        if not flapped:
            return
        if self._vec is not None:
            self._vec.flush()
        net = self.cluster.network
        net.begin_step()
        alive = self._alive()
        flap_set = set(flapped)
        records = 0
        for node in alive:
            if node in flap_set:
                continue
            lg = self.local_graphs[node]
            outbox: dict = {}
            for slot in lg.iter_masters():
                if slot.last_update_iter < self.committed_iteration:
                    continue
                for target in flap_set:
                    if target not in slot.meta.replica_positions:
                        continue
                    key = (target, MessageKind.RECOVERY)
                    batch = outbox.get(key)
                    if batch is None:
                        batch = outbox[key] = SyncBatch(full_state=True)
                    batch.append(slot.gid, slot.value,
                                 self.program.value_nbytes(slot.value),
                                 slot.last_activates,
                                 slot.mirror_self_active)
                    records += 1
            self._flush_batches(node, outbox)
        for target in flapped:
            lg = self.local_graphs[target]
            for msg in net.deliver(target):
                batch = msg.payload
                for i, gid in enumerate(batch.gids):
                    slot = lg.slot_of(gid)
                    slot.value = batch.values[i]
                    slot.last_activates = batch.activates(i)
                    if slot.is_mirror:
                        slot.mirror_self_active = batch.self_active(i)
        for node in alive:
            self.cluster.clocks.advance(node, pairwise_comm_time(
                self.model, net.step_bytes, net.step_msgs, node))
        post = self.cluster.clocks.barrier(self.model, alive)
        self._last_barrier_clock = post
        self.metrics.inc("membership.flap_resync_records", records)
        self.tracer.instant("membership.flap_resync", cat="membership",
                            nodes=flapped, records=records)

    def _policy_pump(self) -> None:
        """Adaptive-floor control loop, once per commit barrier.

        Ticks the policy's quiet clock, scans for masters below the
        target floor, repairs up to the policy's throttled allowance
        and reports progress back (which drives the backoff ladder and
        circuit breaker).
        """
        policy = self._ft_policy
        assert policy is not None
        policy.on_barrier(self.iteration)
        alive = self._alive()
        if not alive:
            return
        target = policy.floor_target
        deficit: list[int] = []
        for node in alive:
            for slot in self.local_graphs[node].iter_masters():
                meta = slot.meta
                if min(len(meta.mirror_nodes),
                       len(meta.replica_positions)) < target:
                    deficit.append(slot.gid)
        if deficit:
            allowance = policy.repair_allowance()
            if allowance > 0:
                self._policy_repair(policy, sorted(deficit)[:allowance],
                                    target, alive)
        # Re-derive the achieved floor from what masters actually have.
        achieved = target
        for node in alive:
            for slot in self.local_graphs[node].iter_masters():
                meta = slot.meta
                achieved = min(achieved, len(meta.mirror_nodes),
                               len(meta.replica_positions))
            if achieved <= 0:
                break
        policy.floor_achieved = achieved
        self._update_ft_gauges()

    def _policy_repair(self, policy, batch: list[int], target: int,
                       alive: list[int]) -> None:
        """One throttled background-repair round toward ``target``."""
        from repro.ft import _recovery_common as common
        if self._vec is not None:
            # Write deferred column commits back and drop the caches:
            # repair snapshots master slots and adds new copies
            # underneath them (same contract as MembershipManager.pump).
            self._vec.rollback()
        net = self.cluster.network
        net.begin_step()
        created, bytes_sent = common.restore_ft_level(
            self, batch, "adaptive-repair", k=target)
        still = 0
        for gid in batch:
            meta = self.local_graphs[
                self.master_node_of[gid]].slot_of(gid).meta
            if min(len(meta.mirror_nodes),
                   len(meta.replica_positions)) < target:
                still += 1
        policy.repair_result(len(batch), len(batch) - still)
        if created:
            scale = self.model.data_scale
            repair_s = (created * self.model.per_vertex_reconstruct_s
                        * scale / max(1, len(alive))
                        + self.model.recovery_round_s)
            for node in alive:
                self.cluster.clocks.advance(node, pairwise_comm_time(
                    self.model, net.step_bytes, net.step_msgs, node))
                self.cluster.clocks.advance(node, repair_s)
            post = self.cluster.clocks.barrier(self.model, alive)
            self._last_barrier_clock = post
            for lg in self.local_graphs.values():
                lg.invalidate_soa()
        self.metrics.inc("ft.policy.repair_rounds")
        self.metrics.inc("ft.policy.repair_replicas", created)
        self.metrics.inc("ft.policy.repair_bytes", bytes_sent)
        self.tracer.instant("ft.policy.repair", cat="recovery",
                            batch=len(batch), created=created,
                            unrepaired=still, target=target)

    def _elect_recovery_leader(self) -> None:
        """Elect the coordinator for this recovery term (DESIGN.md §14).

        Deterministic and seeded, so every backend elects the same
        node from the same live set without exchanging votes; one
        coordination round is charged to every participant.  The leader
        is pure coordination — recovery's data flow stays decentralised
        per the paper — but restart ordering is leader-first, and a
        chaos schedule can target ``"leader"`` to kill it mid-recovery
        (which simply forces a re-election with a bumped term).
        """
        alive = self._alive()
        if not alive:
            return
        self.leader_term += 1
        self.recovery_leader = elect_leader(alive, self.seed,
                                            self.leader_term)
        for node in alive:
            self.cluster.clocks.advance(node, self.model.recovery_round_s)
        self.metrics.set_gauge("ft.leader", self.recovery_leader)
        self.metrics.set_gauge("ft.leader_term", self.leader_term)
        self.tracer.instant("recovery.leader", cat="recovery",
                            leader=self.recovery_leader,
                            term=self.leader_term)

    def _leader_alive(self) -> bool:
        node = self.cluster.nodes.get(self.recovery_leader)
        return node is not None and node.is_alive

    # ------------------------------------------------------------------
    # failures and recovery
    # ------------------------------------------------------------------

    def _inject(self, phase: str) -> None:
        for scheduled in self._failures:
            if scheduled.iteration == self.iteration \
                    and scheduled.phase == phase:
                for node in scheduled.nodes:
                    if self.cluster.node(node).is_alive:
                        self.cluster.crash(node)
        self._failures = [f for f in self._failures
                          if not (f.iteration == self.iteration
                                  and f.phase == phase)]

    def _rollback(self) -> None:
        """Discard the failed superstep (Algorithm 1, line 9)."""
        net = self.cluster.network
        for node in self._alive():
            net.deliver(node)  # drain and drop
            for slot in self._dirty.get(node, {}).values():
                slot.clear_pending()
        self._dirty = {}
        if self._vec is not None:
            self._vec.rollback()

    def _recover(self, failed: tuple[int, ...]) -> None:
        # The explicit degraded window: reads served between here and
        # the end of recovery fall back to surviving replicas and are
        # tagged ``degraded=True`` by the router (DESIGN.md §13).
        self.in_recovery = True
        # Recovery reads survivor slots throughout, and every protocol
        # may rewrite slot arrays / edge lists / replica metadata in
        # place — flush the vectorized executor's deferred commits and
        # drop its cached columns up front (recovery only runs at
        # barrier boundaries, where no pending staging exists).
        if self._vec is not None:
            self._vec.rollback()
        # Elect the coordinator for this recovery term before the
        # chaos hook, so a schedule targeting "leader" can kill it
        # mid-recovery (DESIGN.md §14).
        self._elect_recovery_leader()
        # A crash while recovery is in progress is detected before the
        # protocol commits and handled as one larger simultaneous
        # failure (Section 5.3.2: failures during recovery restart
        # recovery).
        self._chaos_point("recovery")
        extra = self.cluster.detector.newly_failed()
        if extra:
            failed = tuple(sorted(set(failed) | set(extra)))
            if not self._leader_alive():
                self._elect_recovery_leader()
        self.cluster.detector.record_failure_event(self.iteration,
                                                   len(failed))
        if self._ft_policy is not None:
            self._ft_policy.on_failure(self.iteration, len(failed))
        mode = self.job.ft.mode
        detection = self.cluster.detector.detection_delay_s
        alive = self._alive()
        for node in alive:
            self.cluster.clocks.advance(node, detection)
        self.cluster.clocks.barrier(self.model, alive)
        self.tracer.record("recovery.detection", detection,
                           cat="recovery", failed_nodes=list(failed))

        if mode is FTMode.NONE:
            raise UnrecoverableFailureError(
                f"nodes {list(failed)} crashed and fault tolerance is "
                f"disabled (BASE configuration)",
                surviving_nodes=tuple(alive))
        # A crash landing *mid-protocol* must not be deferred to the
        # next barrier: re-poll the detector after each protocol pass
        # and restart recovery for the enlarged failure set
        # (Section 5.3.2).  The loop terminates because the detector is
        # edge-triggered — each restart needs a *fresh* crash, and only
        # finitely many machines can crash between two barriers.
        first = True
        while True:
            self._recover_once(failed, detection if first else 0.0)
            first = False
            self._chaos_point("recovery_protocol")
            extra = self.cluster.detector.newly_failed()
            if not extra:
                break
            # Each ladder pass commits atomically, so nodes already
            # recovered are healthy again; the restarted protocol must
            # target only the nodes that are *still* down (a recovery
            # pass aimed at a live node would wrongly evict its state).
            failed = tuple(sorted(
                set(extra) | {n for n in failed
                              if self.cluster.node(n).is_crashed}))
            # A dead leader cannot coordinate the restarted protocol:
            # re-elect under a fresh term before the next ladder pass.
            if not self._leader_alive():
                self._elect_recovery_leader()
            self.metrics.inc("recovery.restarts")
            self.tracer.instant("recovery.restart", cat="recovery",
                                failed_nodes=list(failed))
        # Post-recovery FT repair and degraded-mode assessment run
        # before the ``post_recovery`` hook, so chaos invariants observe
        # the repaired replication level (DESIGN.md §9).
        self._repair_ft_level()
        self._refresh_broadcast_state()
        # Recovery protocols rewrite slot arrays, edge lists and replica
        # metadata in place — including on survivors that saw no local
        # add/remove — so every SoA topology cache is stale now (the
        # executor's dynamic columns were already dropped on entry).
        for lg in self.local_graphs.values():
            lg.invalidate_soa()
        post = self.cluster.clocks.barrier(self.model, self._alive())
        self._last_barrier_clock = post
        # Whatever rung recovered — in-memory replicas (state of the
        # last commit before ``self.iteration``) or a checkpoint rewind
        # (which lowered ``self.iteration`` to the resume point) — the
        # restored state is the commit of the superstep before the one
        # about to (re)run.
        self.committed_iteration = self.iteration - 1
        self.in_recovery = False
        self._chaos_point("post_recovery")

    def _recover_once(self, failed: tuple[int, ...],
                      detection: float) -> None:
        """Run one pass of the fallback ladder and commit its result."""
        at_iteration = self.iteration
        with self.tracer.span("recovery.protocol", cat="recovery",
                              failed_nodes=list(failed)) as sp:
            outcome, rung = self._recovery_ladder(failed)
            # Protocol phase times are cost-model aggregates, not lived
            # through the clock; clocks advance below, after the span.
            sp.set_sim(outcome.stats.total_s)
            sp.annotate(strategy=outcome.stats.strategy, rung=rung,
                        vertices=outcome.stats.vertices_recovered,
                        recovery_bytes=outcome.stats.recovery_bytes)
        outcome.stats.detection_s = detection
        outcome.stats.at_iteration = at_iteration
        for gid, node in outcome.master_of_updates.items():
            self.master_node_of[gid] = node
        self.recoveries.append(outcome.stats)
        self.metrics.inc("recovery.count")
        self.metrics.inc(f"recovery.by_strategy.{outcome.stats.strategy}")
        self.metrics.inc("recovery.failed_nodes", len(failed))
        self.metrics.inc("recovery.sim_s", outcome.stats.total_s)
        self.metrics.inc("recovery.bytes", outcome.stats.recovery_bytes)
        first_choice = ("checkpoint"
                        if self.job.ft.mode is FTMode.CHECKPOINT
                        else self.job.ft.recovery.value)
        if rung != first_choice:
            self.metrics.inc(f"recovery.fallback.by_rung.{rung}")
            self.tracer.instant("recovery.fallback", cat="recovery",
                                rung=rung, first_choice=first_choice)
        # Recovery time advances every participant's clock.
        for node in self._alive():
            self.cluster.clocks.advance(node, outcome.stats.total_s)

    def _recovery_ladder(self, failed: tuple[int, ...]
                         ) -> tuple[RecoveryOutcome, str]:
        """Try the recovery rungs in order; return (outcome, rung used).

        REPLICATION-mode ladder (DESIGN.md §9):

        1. the configured strategy — Rebirth only when enough *live*
           standbys exist (the pre-check keeps a doomed Rebirth from
           consuming spares and emptying local graphs);
        2. Migration across the survivors when standbys are exhausted;
        3. the opt-in safety-net checkpoint when replication itself is
           exhausted (some vertex lost every copy) or the in-memory
           rungs failed.

        Only when every applicable rung fails does
        :class:`UnrecoverableFailureError` propagate, carrying the
        rungs attempted, the lost-vertex count and the survivors.
        """
        from repro.ft import _recovery_common as common
        from repro.ft.migration import MigrationRecovery
        from repro.ft.rebirth import RebirthRecovery
        if self.job.ft.mode is FTMode.CHECKPOINT:
            return self._checkpoint_recover(failed), "checkpoint"
        failed_set = set(failed)
        survivors = [n for n in self._alive() if n not in failed_set]
        attempted: list[str] = []
        first_error: UnrecoverableFailureError | None = None
        lost = common.find_lost_vertices(self, failed_set)
        if not lost:
            if self.job.ft.recovery is RecoveryStrategy.REBIRTH:
                still_crashed = [n for n in failed
                                 if self.cluster.node(n).is_crashed]
                spares = self.cluster.live_standby_nodes()
                if len(spares) >= len(still_crashed):
                    attempted.append("rebirth")
                    try:
                        return (RebirthRecovery(self).recover(failed),
                                "rebirth")
                    except NoStandbyNodeError:  # raced the pre-check
                        attempted[-1] = "rebirth:standby-exhausted"
                    except UnrecoverableFailureError as err:
                        first_error = err
                else:
                    attempted.append("rebirth:standby-exhausted")
                    self.tracer.instant(
                        "recovery.standby_exhausted", cat="recovery",
                        spares=len(spares), needed=len(still_crashed))
            if survivors:
                attempted.append("migration")
                try:
                    return (MigrationRecovery(self).recover(failed),
                            "migration")
                except UnrecoverableFailureError as err:
                    first_error = first_error or err
            else:
                attempted.append("migration:no-survivors")
        else:
            attempted.append("replication:exhausted")
        if self._safety_ckpt:
            attempted.append("checkpoint")
            return self._safety_checkpoint_recover(failed), "checkpoint"
        lost_count = len(lost) or (first_error.lost_vertices
                                   if first_error else 0)
        raise UnrecoverableFailureError(
            f"no recovery rung could handle the failure of nodes "
            f"{sorted(failed_set)} (attempted: "
            f"{', '.join(attempted) or 'none'}; {lost_count} vertices "
            f"lost every copy)",
            lost_vertices=lost_count,
            rungs_attempted=tuple(attempted),
            surviving_nodes=tuple(survivors))

    def _repair_ft_level(self) -> None:
        """Post-recovery FT repair (DESIGN.md §9).

        After any successful recovery — whatever the rung — scan the
        survivors' masters for vertices whose replication level dropped
        below K+1 and re-create FT replicas/mirrors with the loading-
        time placement heuristics (Section 4.1), so a second failure a
        few supersteps later finds full coverage again.  Charged to the
        cost model and traced as ``recovery.repair``; what repair
        *cannot* restore (too few survivors) becomes explicit degraded
        state instead of silent under-protection.
        """
        from repro.ft import _recovery_common as common
        k = self.effective_ft_floor
        if self.job.ft.mode is not FTMode.REPLICATION or k <= 0:
            self._update_ft_gauges()
            return
        alive = self._alive()
        with self.tracer.span("recovery.repair", cat="recovery") as sp:
            deficit: list[int] = []
            scan_cost: dict[int, int] = defaultdict(int)
            for node in alive:
                lg = self.local_graphs[node]
                for slot in lg.iter_masters():
                    scan_cost[node] += 1
                    meta = slot.meta
                    if (len(meta.mirror_nodes) < k
                            or len(meta.replica_positions) < k):
                        deficit.append(slot.gid)
            created, bytes_sent = 0, 0
            if deficit:
                created, bytes_sent = common.restore_ft_level(
                    self, sorted(deficit), "recovery-repair", k=k)
            # Cost: parallel per-node master scan, plus replica state
            # transfer and one coordination round when work was done.
            scale = self.model.data_scale
            repair_s = (max(scan_cost.values(), default=0)
                        * self.model.per_vertex_scan_s * scale)
            if created:
                repair_s += (created * self.model.per_vertex_reconstruct_s
                             * scale / max(1, len(alive))
                             + self.model.recovery_round_s)
            sp.set_sim(repair_s)
            sp.annotate(vertices=len(deficit), replicas_created=created,
                        repair_bytes=bytes_sent)
            for node in alive:
                self.cluster.clocks.advance(node, repair_s)
        if self.recoveries:
            stats = self.recoveries[-1]
            stats.repair_s += repair_s
            stats.repaired_vertices += len(deficit)
            stats.repair_replicas_created += created
            stats.repair_bytes += bytes_sent
        self.metrics.inc("recovery.repair.sim_s", repair_s)
        self.metrics.inc("recovery.repair.replicas", created)
        self.metrics.inc("recovery.repair.bytes", bytes_sent)
        self._update_ft_gauges()

    def _update_ft_gauges(self) -> None:
        """Publish the degraded-mode surface (DESIGN.md §9).

        With an adaptive policy the yardstick is the *enforced* floor
        (``min(target, achieved)``) — degradation is measured against
        what the control plane currently promises, not the static K.
        """
        if self._ft_policy is not None:
            self.metrics.set_gauge("ft.policy.floor_target",
                                   self._ft_policy.floor_target)
            self.metrics.set_gauge("ft.policy.floor_enforced",
                                   self._ft_policy.floor_enforced)
            self.metrics.set_gauge("ft.policy.breaker_open",
                                   self._ft_policy.breaker_open)
        k = self.enforced_ft_floor
        if self.job.ft.mode is not FTMode.REPLICATION or k <= 0:
            self._ft_level_current = 0
            self._ft_degraded = False
            # The gauges must track the fields even on this early
            # return: a metrics snapshot taken after an FT-mode/level
            # transition (or in a non-replication run) would otherwise
            # carry whatever was published last — stale exactly when
            # the degraded-mode surface changes.
            self.metrics.set_gauge("ft.level_current", 0)
            self.metrics.set_gauge("ft.degraded", False)
            return
        level = k
        for node in self._alive():
            for slot in self.local_graphs[node].iter_masters():
                level = min(level, len(slot.meta.mirror_nodes))
            if level == 0:
                break
        self._ft_level_current = level
        self._ft_degraded = level < k
        self.metrics.set_gauge("ft.level_current", level)
        self.metrics.set_gauge("ft.degraded", self._ft_degraded)
        if self._ft_degraded:
            self.tracer.instant("ft.degraded", cat="recovery",
                                level=level, configured=k)

    def _refresh_broadcast_state(self) -> None:
        """Re-derive the vertex-cut activity-broadcast queue.

        Recovery may leave masters whose replicas hold stale activity
        flags; a single post-recovery scan re-queues them (rare path).
        """
        if self.is_edge_cut:
            return
        self._broadcast_pending = defaultdict(set)
        for node in self._alive():
            lg = self.local_graphs[node]
            for slot in lg.iter_masters():
                if slot.active != slot.replicas_known_active:
                    self._broadcast_pending[node].add(slot.gid)

    def _checkpoint_recover(self, failed: tuple[int, ...]
                            ) -> RecoveryOutcome:
        """Reload-everything recovery of the CKPT baseline (Section 2.3.2).

        Every node rolls back to the last snapshot; standby nodes take
        over the crashed logical ids and rebuild their local graph from
        the (deterministic) metadata snapshot; the engine then replays
        the lost iterations.
        """
        assert self.ckpt is not None
        # A checkpoint rewind restores committed snapshots everywhere,
        # including selfish masters a prior ladder pass recomputed.
        self.selfish_read_fence.clear()
        for node in failed:
            self.cluster.replace_node(node)
        alive = self._alive()
        if self.program.mutates_edges:
            # Edge state diverged from the loading-time topology on
            # every node; rebuild all local graphs to pristine weights
            # and let the snapshot journal re-apply the updates.
            rebuild = set(alive)
        else:
            rebuild = set(failed)
        rebuilt_all, _ = build_local_graphs(self.graph, self.partitioning,
                                            self.plan) \
            if rebuild else ({}, None)
        ctx = self._ctx()
        for node in sorted(rebuild):
            fresh = rebuilt_all[node]
            for slot in fresh.iter_slots():
                slot.value = self.program.initial_value(slot.gid, ctx)
                fresh.set_active(
                    slot, self.program.is_initially_active(slot.gid))
            self.local_graphs[node] = fresh
            self.cluster.node(node).local = fresh
        self._edge_journal = defaultdict(list)
        stats = self.ckpt.recover(self.local_graphs, self.program, alive,
                                  self.initial_value_of)
        reconstruct_s = self._full_resync(alive)
        self.tracer.record("checkpoint.reconstruct", reconstruct_s,
                           cat="recovery")
        lost = self.iteration - stats.resume_iteration
        self.iteration = stats.resume_iteration
        recovery = RecoveryStats(
            strategy="checkpoint",
            failed_nodes=failed,
            newbie_nodes=failed,
            reload_s=stats.reload_s,
            reconstruct_s=reconstruct_s,
            replay_s=0.0,  # replay happens as re-executed iterations
            vertices_recovered=stats.vertices_restored,
            recovery_bytes=stats.bytes_read,
            replayed_iterations=max(0, lost),
        )
        return RecoveryOutcome(stats=recovery, joined_nodes=failed)

    def _safety_checkpoint_recover(self, failed: tuple[int, ...]
                                   ) -> RecoveryOutcome:
        """Checkpoint rung of the fallback ladder (DESIGN.md §9).

        Reached when replication is exhausted (some vertex lost every
        copy) or the in-memory rungs failed; rebuilds the *whole*
        cluster state from the latest safety snapshot.  Earlier
        recoveries may have migrated masters anywhere, so every local
        graph is rebuilt pristine from the deterministic loading inputs
        and the globally-merged snapshot is applied on top.  With no
        snapshot written yet the run restarts from iteration 0.
        """
        assert self.ckpt is not None
        # The rewind restores committed snapshots everywhere, including
        # selfish masters a prior ladder pass recomputed.
        self.selfish_read_fence.clear()
        # Re-provision each still-crashed id: a live spare if one
        # exists, else a rebooted machine — snapshot recovery needs no
        # surviving memory, so a fresh node can always take the slot.
        for node in failed:
            if not self.cluster.node(node).is_crashed:
                continue  # replaced by a partially-run earlier rung
            if self.cluster.live_standby_nodes():
                self.cluster.replace_node(node)
            else:
                self.cluster.restart_node(node)
        alive = self._alive()
        rebuilt_all, _ = build_local_graphs(self.graph, self.partitioning,
                                            self.plan)
        for node in sorted(rebuilt_all):
            self.local_graphs[node] = rebuilt_all[node]
            self.cluster.node(node).local = rebuilt_all[node]
        self.master_node_of = [int(n) for n in self.plan.master_of]
        self._init_values()
        self._edge_journal = defaultdict(list)
        stats = self.ckpt.recover_safety(self.local_graphs, self.program,
                                         alive, self.initial_value_of)
        reconstruct_s = self._full_resync(alive)
        self.tracer.record("checkpoint.reconstruct", reconstruct_s,
                           cat="recovery")
        if self.edge_ckpt is not None:
            self._rewrite_edge_ckpt_files()
        lost = self.iteration - stats.resume_iteration
        self.iteration = stats.resume_iteration
        recovery = RecoveryStats(
            strategy="safety-checkpoint",
            failed_nodes=failed,
            newbie_nodes=failed,
            reload_s=stats.reload_s,
            reconstruct_s=reconstruct_s,
            replay_s=0.0,  # replay happens as re-executed iterations
            vertices_recovered=stats.vertices_restored,
            recovery_bytes=stats.bytes_read,
            replayed_iterations=max(0, lost),
        )
        return RecoveryOutcome(stats=recovery, joined_nodes=failed)

    def _rewrite_edge_ckpt_files(self) -> None:
        """Re-derive the vertex-cut edge files after a global restore.

        The pristine rebuild invalidated every existing file: stray
        receivers and update records appended by recoveries after the
        snapshot would otherwise duplicate edges in a later Migration.
        """
        assert self.edge_ckpt is not None
        for node in range(self.cluster.num_workers):
            self.edge_ckpt.clear_node(node)
        self._write_edge_ckpt_files()

    def _full_resync(self, alive: list[int]) -> float:
        """Masters re-push full state to every replica (reconstruction).

        Returns the simulated communication time (max over nodes).
        """
        net = self.cluster.network
        net.begin_step()
        for node in alive:
            lg = self.local_graphs[node]
            outbox: dict = {}
            for slot in lg.iter_masters():
                value_nbytes = self.program.value_nbytes(slot.value)
                for replica_node, _is_mirror in slot.meta.sync_targets():
                    if not self.cluster.node(replica_node).is_alive:
                        continue
                    key = (replica_node, MessageKind.RECOVERY)
                    batch = outbox.get(key)
                    if batch is None:
                        batch = outbox[key] = SyncBatch(full_state=True)
                    batch.append(slot.gid, slot.value, value_nbytes,
                                 slot.last_activates, slot.active)
            self._flush_batches(node, outbox)
        slowest = 0.0
        for node in alive:
            slowest = max(slowest, pairwise_comm_time(
                self.model, net.step_bytes, net.step_msgs, node))
            lg = self.local_graphs[node]
            for msg in net.deliver(node):
                batch = msg.payload
                for i, gid in enumerate(batch.gids):
                    slot = lg.slot_of(gid)
                    slot.value = batch.values[i]
                    slot.last_activates = batch.activates(i)
                    lg.set_active(slot, batch.self_active(i))
                    if slot.is_mirror:
                        slot.mirror_self_active = batch.self_active(i)
        for node in alive:
            for slot in self.local_graphs[node].iter_masters():
                slot.replicas_known_active = slot.active
        return slowest

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _result(self) -> RunResult:
        totals = self.cluster.network.totals
        membership: dict[str, Any] = {}
        if self._membership is not None or self._ft_policy is not None:
            mm = self._membership
            detector = self.cluster.detector
            membership = {
                "epoch": self.cluster.membership_epoch,
                "moves": mm.moves_total if mm else 0,
                "bytes": mm.bytes_total if mm else 0,
                "transfer_sim_s": mm.transfer_sim_s if mm else 0.0,
                "joins": (sum(1 for op in mm.completed
                              if op.kind == "join") if mm else 0),
                "drains": (sum(1 for op in mm.completed
                               if op.kind == "drain") if mm else 0),
                "flaps": sum(detector.stats()["flaps"].values()),
                "leader_term": self.leader_term,
                "floor_events": (list(self._ft_policy.events)
                                 if self._ft_policy else []),
            }
        net = self.cluster.network
        return RunResult(
            membership=membership,
            algorithm=self.program.name,
            num_iterations=self.iteration,
            values=self.values(),
            iteration_stats=self.iteration_stats,
            recoveries=self.recoveries,
            construction=self.construction,
            total_sim_time_s=self.cluster.clocks.global_max(),
            total_messages=totals.total_msgs,
            total_bytes=totals.total_bytes,
            combined_records=net.combine_pre - net.combine_phys,
            combine_ratio=(net.combine_pre / net.combine_phys
                           if net.combine_phys else 1.0),
            halted_early=self._halted,
            ft_level_current=self._ft_level_current,
            ft_degraded=self._ft_degraded,
            fallbacks={
                key[len("recovery.fallback.by_rung."):]: int(value)
                for key, value in self.metrics.counters(
                    "recovery.fallback.by_rung.").items()},
        )


def _zero_ft(ft_config):
    """FT config clone with replication disabled (BASE/CKPT planning)."""
    from dataclasses import replace
    return replace(ft_config, mode=FTMode.NONE, ft_level=0)
