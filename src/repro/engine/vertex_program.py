"""The vertex-program abstraction ("think as a vertex", Section 1).

One program definition runs unchanged on both engine modes, mirroring
the paper's claim that fault-tolerance support needs *no source changes
to graph algorithms* (Section 6):

* **edge-cut** (Cyclops): the master holds all in-edges, so gather
  runs entirely locally and ``apply`` commits the new value;
* **vertex-cut** (PowerLyra/GAS): every node folds a *partial* gather
  over its local in-edges, partials travel to the master, and the
  master applies.

The gather fold must therefore be commutative and associative over
:meth:`VertexProgram.gather_sum`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro.utils.sizing import BYTES_PER_VALUE


@dataclass(frozen=True)
class VertexView:
    """Read-only view of a neighboring vertex offered to ``gather``.

    Replicas carry the same static degree information as masters, so
    this view is constructible anywhere the edge lives.
    """

    vid: int
    value: Any
    out_degree: int
    in_degree: int


@dataclass(frozen=True)
class ApplyContext:
    """Per-superstep context handed to ``apply``."""

    iteration: int
    num_vertices: int
    num_edges: int


class VertexProgram(abc.ABC):
    """Base class for graph algorithms.

    Subclasses override the gather/apply/activation hooks; everything
    has a sensible default for always-active, scalar-valued programs.
    """

    #: Human-readable algorithm name (used in reports).
    name: str = "vertex-program"

    #: True when ``apply`` depends only on gathered neighbor state, not
    #: on the vertex's own previous value.  Gates the selfish-vertex
    #: optimisation (Section 4.4): a selfish vertex's dynamic state can
    #: be *recomputed* from neighbors during recovery only for
    #: history-free programs.
    history_free: bool = False

    #: True when the program mutates edge state during computation
    #: (rare; Section 4.3).  Triggers incremental edge-ckpt logging
    #: under vertex-cut.
    mutates_edges: bool = False

    # -- initialisation -------------------------------------------------

    @abc.abstractmethod
    def initial_value(self, vid: int, ctx: ApplyContext) -> Any:
        """Initial vertex value before the first superstep."""

    def is_initially_active(self, vid: int) -> bool:
        """Whether the vertex computes in the first superstep."""
        return True

    # -- gather ------------------------------------------------------------

    #: Name of the commutative-associative combiner the gather fold
    #: decomposes into — ``"sum"``, ``"min"`` or ``"max"`` — or ``None``
    #: when the fold is opaque.  Declaring a combiner states that
    #: ``gather(acc, src, w, dst) == op(acc, contribution(src, w, dst))``
    #: *exactly* (including tie behaviour), which lets the combining
    #: layer (DESIGN.md §15) fold same-destination records before
    #: ``Network.send`` and, with combining off, ship the raw per-edge
    #: contributions instead and fold them on the receiver — both
    #: bit-identical to the plain gather loop.
    combiner: str | None = None

    def gather_init(self) -> Any:
        """Identity element of the gather fold."""
        return None

    @abc.abstractmethod
    def gather(self, acc: Any, src: VertexView, weight: float,
               dst_vid: int) -> Any:
        """Fold one in-edge ``(src -> dst_vid, weight)`` into ``acc``."""

    def contribution(self, src: VertexView, weight: float,
                     dst_vid: int) -> Any:
        """One in-edge's contribution to the gather fold.

        Only consulted when :attr:`combiner` is declared.  Return
        ``None`` for "no contribution" (e.g. a zero-out-degree PageRank
        source); ``None`` contributions are skipped by the fold and
        never shipped raw.
        """
        raise NotImplementedError(
            f"{self.name}: combiner declared without contribution()")

    def update_edge(self, src: VertexView, dst_vid: int, weight: float,
                    ctx: ApplyContext) -> float | None:
        """Optionally mutate one in-edge's state (weight) per superstep.

        Called while the edge is gathered (the gather itself sees the
        *old* weight; updates commit at the barrier, preserving BSP
        semantics).  Return the new weight, or ``None`` to leave the
        edge unchanged.  Only consulted when :attr:`mutates_edges` is
        True; under vertex-cut the update is incrementally logged to
        the edge-ckpt files (Section 4.3), under edge-cut it rides the
        mirror synchronisation.
        """
        return None

    def gather_sum(self, a: Any, b: Any) -> Any:
        """Combine two partial accumulators (vertex-cut only).

        The default covers the common cases: ``None`` identities and
        numeric partials.
        """
        if a is None:
            return b
        if b is None:
            return a
        return a + b

    def acc_nbytes(self, acc: Any) -> int:
        """Wire size of a partial accumulator (GATHER messages)."""
        if acc is None:
            return 1
        if isinstance(acc, (tuple, list)):
            return max(1, len(acc)) * BYTES_PER_VALUE
        return BYTES_PER_VALUE

    # -- apply / scatter -----------------------------------------------------

    @abc.abstractmethod
    def apply(self, vid: int, old_value: Any, acc: Any,
              ctx: ApplyContext) -> Any:
        """Produce the vertex's new value from the gathered accumulator."""

    def kernel(self):
        """Vectorized array kernel for this program, or ``None``.

        A program that can express its gather/apply/activation hooks
        array-at-a-time returns an :class:`repro.algorithms.kernels.
        ArrayKernel` here; the engine then runs the vectorized fast
        path (``EngineConfig.vectorized``).  The default ``None`` keeps
        the per-vertex scalar loop — custom programs need no changes.
        The kernel must be bit-for-bit equivalent to the scalar hooks;
        ``tests/test_vectorized_differential.py`` is the oracle.
        """
        return None

    def participates(self, vid: int, ctx: ApplyContext) -> bool:
        """Whether an active vertex actually computes this superstep.

        ALS uses this to alternate sides; everything else returns True.
        """
        return True

    def activates_neighbors(self, vid: int, old_value: Any, new_value: Any,
                            ctx: ApplyContext) -> bool:
        """Whether this update schedules the out-neighbors next superstep."""
        return True

    def stays_active(self, vid: int, old_value: Any, new_value: Any,
                     ctx: ApplyContext) -> bool:
        """Whether the vertex re-activates itself (PageRank-style loops)."""
        return True

    # -- convergence ----------------------------------------------------------

    def value_nbytes(self, value: Any) -> int:
        """Wire size of one vertex value (SYNC messages)."""
        if isinstance(value, (tuple, list)):
            return max(1, len(value)) * BYTES_PER_VALUE
        return BYTES_PER_VALUE
