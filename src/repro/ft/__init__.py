"""Fault tolerance: the paper's contribution (replication) plus the
checkpoint baseline, the two recovery strategies, and Young's-model
efficiency analysis."""

from repro.ft.replication import ReplicationPlan, plan_replication
from repro.ft.checkpoint import CheckpointManager, CheckpointRecoveryStats
from repro.ft.edge_ckpt import EdgeCkptStore
from repro.ft.rebirth import RebirthRecovery
from repro.ft.migration import MigrationRecovery
from repro.ft.recovery import RecoveryStats, RecoveryOutcome
from repro.ft.young import optimal_interval, efficiency

__all__ = [
    "ReplicationPlan",
    "plan_replication",
    "CheckpointManager",
    "CheckpointRecoveryStats",
    "EdgeCkptStore",
    "RebirthRecovery",
    "MigrationRecovery",
    "RecoveryStats",
    "RecoveryOutcome",
    "optimal_interval",
    "efficiency",
]
