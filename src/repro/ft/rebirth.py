"""Rebirth-based recovery (Section 5.1).

A standby machine takes over each crashed node's logical identity and
its graph state is reconstructed from the surviving replicas:

* every surviving **master** checks its replica locations and re-sends
  any copies that lived on crashed nodes;
* every surviving **mirror** whose master crashed re-sends the master's
  full state (value, in-edge list under edge-cut, replica locations,
  array position) — only the lowest-id surviving mirror acts
  (Section 5.3.1), and it also re-sends replicas lost on *other*
  crashed nodes on the dead master's behalf;
* under vertex-cut the newbie reloads the crashed node's edge-ckpt
  files from persistent storage, overlapped with the vertex transfer
  (Section 5.2.1 discusses the same overlap for Migration).

Reconstruction is positional and lock-free; under edge-cut it happens
while messages arrive, so the phase reports zero explicit time
(Fig. 9a shows no reconstruction bar for Rebirth).  Replay re-executes
activation operations on the new node only.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.cluster.network import Message, MessageKind
from repro.costmodel import storage_read_time
from repro.engine.local_graph import LocalGraph
from repro.engine.messages import RecoveryBatch
from repro.errors import UnrecoverableFailureError
from repro.ft import _recovery_common as common
from repro.ft.recovery import RecoveryOutcome, RecoveryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine


class RebirthRecovery:
    """Recover crashed nodes onto standby machines."""

    def __init__(self, engine: "Engine"):
        self.engine = engine

    def recover(self, failed: tuple[int, ...]) -> RecoveryOutcome:
        engine = self.engine
        model = engine.model
        failed_set = set(failed)
        stats = RecoveryStats(strategy="rebirth", failed_nodes=failed,
                              newbie_nodes=failed)

        # The newbies join the barrier group under the crashed ids.
        for node in failed:
            engine.cluster.replace_node(node)
            fresh = LocalGraph(node)
            engine.local_graphs[node] = fresh
            engine.cluster.node(node).local = fresh

        survivors = [n for n in engine._alive() if n not in failed_set]

        # ---------------- Reloading ----------------
        batches: dict[tuple[int, int], RecoveryBatch] = {}

        def batch(src: int, dst: int) -> RecoveryBatch:
            key = (src, dst)
            if key not in batches:
                batches[key] = RecoveryBatch(
                    src_node=src, iteration=engine.iteration)
            return batches[key]

        scan_cost: dict[int, int] = defaultdict(int)
        recovered_masters: list[int] = []
        selfish_recovered: list[int] = []
        selfish_opt = engine.selfish_opt_active
        for node in survivors:
            lg = engine.local_graphs[node]
            for slot in lg.iter_slots():
                scan_cost[node] += 1
                if slot.is_master:
                    meta = slot.meta
                    for replica_node, position in sorted(
                            meta.replica_positions.items()):
                        if replica_node in failed_set:
                            rv = common.snapshot_replica_state(
                                lg, slot, replica_node, position,
                                engine.is_edge_cut)
                            batch(node, replica_node).vertices.append(rv)
                elif slot.is_mirror and slot.master_node in failed_set:
                    meta = slot.meta
                    if common.surviving_recoverer(meta, failed_set) != node:
                        continue  # a lower-id mirror leads this vertex
                    rv = common.snapshot_master_full_state(
                        lg, slot, meta.master_position, engine.is_edge_cut)
                    batch(node, slot.master_node).vertices.append(rv)
                    recovered_masters.append(slot.gid)
                    if slot.selfish and selfish_opt:
                        selfish_recovered.append(slot.gid)
                    # Recover replicas lost on *other* crashed nodes on
                    # the dead master's behalf.
                    for replica_node, position in sorted(
                            meta.replica_positions.items()):
                        if replica_node in failed_set \
                                and replica_node != node:
                            rv = common.snapshot_replica_state(
                                lg, slot, replica_node, position,
                                engine.is_edge_cut, from_mirror=True)
                            batch(node, replica_node).vertices.append(rv)

        # Detect unrecoverable vertices: masters on crashed nodes whose
        # mirrors all crashed too.
        self._check_recoverable(failed_set, recovered_masters)

        # Ship the batches (counted as RECOVERY traffic).
        net = engine.cluster.network
        net.begin_step()
        value_nbytes = engine.program.value_nbytes
        for (src, dst), payload in sorted(batches.items()):
            nbytes = payload.nbytes(value_nbytes)
            net.send(Message(MessageKind.RECOVERY, src, dst, payload,
                             nbytes))
            stats.recovery_messages += 1
            stats.recovery_bytes += nbytes

        # Per-survivor reload time: scan + serialisation/send; the
        # newbies receive concurrently.  Vertex-cut newbies also stream
        # the crashed nodes' edge-ckpt files, overlapped with receive.
        scale = model.data_scale
        reload_times = []
        for node in survivors:
            scan = scan_cost[node] * model.per_vertex_scan_s * scale
            comm = _comm_time(engine, net, node)
            reload_times.append(scan + comm)
        dfs_time = 0.0
        edge_records: dict[int, list] = {}
        if not engine.is_edge_cut and engine.edge_ckpt is not None:
            from repro.ft.edge_ckpt import dedupe_edge_records
            for node in failed:
                records = dedupe_edge_records(
                    engine.edge_ckpt.read_all(node))
                edge_records[node] = records
                nbytes = sum(engine.edge_ckpt.file_nbytes(node, r)
                             for r in range(engine.cluster.num_workers))
                # The newbie streams all files as one pipelined
                # sequential scan, overlapped with the vertex transfer
                # (Section 6.10: Rebirth "can overlap the reloading of
                # edges from persistent storage with that of vertices").
                dfs_time = max(dfs_time, storage_read_time(
                    model, nbytes, 1, in_memory=False))
        newbie_recv = max((_comm_time(engine, net, node) for node in failed),
                          default=0.0)
        stats.reload_s = (max(max(reload_times, default=0.0),
                              newbie_recv, dfs_time)
                          + model.recovery_round_s)

        # ---------------- Reconstruction ----------------
        last_commit = common.last_committed_iteration(engine)
        for node in failed:
            lg = engine.local_graphs[node]
            for msg in net.deliver(node):
                for rv in msg.payload.vertices:
                    common.place_recovered_vertex(lg, rv, last_commit)
                    stats.vertices_recovered += 1
        reconstruct_times = []
        for node in failed:
            lg = engine.local_graphs[node]
            if engine.is_edge_cut:
                linked = common.relink_edge_cut_topology(lg)
            else:
                linked = self._link_vertex_cut(lg, edge_records[node])
            stats.edges_recovered += linked
            cost = (len(lg.index_of) * model.per_vertex_reconstruct_s
                    + linked * model.per_edge_compute_s) * model.data_scale
            reconstruct_times.append(cost)
        if engine.is_edge_cut:
            # Reconstruction happens while messages arrive: fold its
            # cost into reload and report no explicit phase (Fig. 9a).
            stats.reload_s += 0.0
            stats.reconstruct_s = 0.0
        else:
            stats.reconstruct_s = max(reconstruct_times, default=0.0)

        # ---------------- Replay ----------------
        replay_ops = common.replay_activations(engine, list(failed), None)
        replay_edges = common.recompute_selfish_masters(
            engine, sorted(selfish_recovered))
        # Each newbie replays its own node's operations concurrently
        # (Fig. 15b: Rebirth stays nearly flat as crashed nodes grow).
        stats.replay_s = ((replay_ops * model.per_vertex_reconstruct_s
                           + replay_edges * model.per_edge_compute_s)
                          * model.data_scale / max(1, len(failed)))
        tracer = engine.tracer
        tracer.record("rebirth.reload", stats.reload_s, cat="recovery",
                      recovery_bytes=stats.recovery_bytes,
                      vertices=stats.vertices_recovered)
        tracer.record("rebirth.reconstruct", stats.reconstruct_s,
                      cat="recovery", edges=stats.edges_recovered)
        tracer.record("rebirth.replay", stats.replay_s, cat="recovery",
                      replay_ops=replay_ops)
        return RecoveryOutcome(stats=stats, joined_nodes=failed)

    # -- helpers --------------------------------------------------------

    def _check_recoverable(self, failed_set: set[int],
                           recovered_masters: list[int]) -> None:
        engine = self.engine
        recovered = set(recovered_masters)
        lost = []
        for gid, node in enumerate(engine.master_node_of):
            if node in failed_set and gid not in recovered:
                lost.append(gid)
        if lost:
            raise UnrecoverableFailureError(
                f"{len(lost)} vertices lost every copy "
                f"(e.g. vertex {lost[0]}); ft_level "
                f"{engine.job.ft.ft_level} cannot cover nodes "
                f"{sorted(failed_set)}", lost_vertices=len(lost),
                rungs_attempted=("rebirth",),
                surviving_nodes=tuple(
                    n for n in engine._alive() if n not in failed_set))

    def _link_vertex_cut(self, lg: LocalGraph, records) -> int:
        """Rebuild a vertex-cut newbie's topology from edge-ckpt files."""
        for slot in lg.iter_slots():
            slot.in_edges = []
            slot.out_edges = []
        linked = 0
        for record in records:
            src_pos = lg.index_of.get(record.src)
            dst_pos = lg.index_of.get(record.dst)
            if src_pos is None or dst_pos is None:
                raise UnrecoverableFailureError(
                    f"edge ({record.src}, {record.dst}) endpoints missing "
                    f"after reconstruction on node {lg.node_id}")
            lg.slots[dst_pos].in_edges.append((src_pos, record.weight))
            lg.slots[src_pos].out_edges.append(dst_pos)
            linked += 1
        return linked


def _comm_time(engine: "Engine", net, node: int) -> float:
    from repro.costmodel import pairwise_comm_time
    return pairwise_comm_time(engine.model, net.step_bytes, net.step_msgs,
                              node)
