"""Fault-tolerance-oriented replication planning (Section 4).

Given the computation replicas a partitioning already creates, this
module decides, per vertex:

* which extra **FT replicas** to create so every vertex has at least
  ``ft_level`` copies besides the master (Section 4.1) — placed with
  the randomized power-of-choices heuristic the paper describes
  (sample a few candidate nodes, pick the least loaded);
* which ``ft_level`` replica nodes become full-state **mirrors**
  (Section 4.2) — a greedy per-machine election that always selects FT
  replicas first (an FT replica is always a mirror) and otherwise
  balances mirror counts across machines;
* which vertices are **selfish** (no out-edges, Section 4.4) and can
  skip normal-execution synchronisation when the algorithm permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import FaultToleranceConfig
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.partition.base import EdgeCutPartitioning, VertexCutPartitioning
from repro.utils.rng import SeededRng


@dataclass
class ReplicationPlan:
    """Complete replication layout for one job."""

    ft_level: int
    num_nodes: int
    #: v -> node of its master.
    master_of: np.ndarray
    #: v -> sorted list of replica nodes (computation + FT, master
    #: excluded).
    replica_nodes: list[list[int]]
    #: v -> subset of ``replica_nodes`` that exist only for fault
    #: tolerance.
    ft_nodes: list[list[int]]
    #: v -> ordered mirror nodes; index in this list is the mirror id
    #: (the lowest surviving id leads recovery, Section 5.3.1).
    mirror_nodes: list[list[int]]
    #: Selfish flag per vertex (zero out-degree).
    selfish: np.ndarray = field(repr=False, default=None)

    # -- census used by Figs. 3 and 8 ---------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.replica_nodes)

    def total_computation_replicas(self) -> int:
        return sum(len(r) - len(f) for r, f in
                   zip(self.replica_nodes, self.ft_nodes))

    def total_ft_replicas(self) -> int:
        return sum(len(f) for f in self.ft_nodes)

    def extra_replica_fraction(self) -> float:
        """FT replicas as a fraction of all replicas (Fig. 8a)."""
        total = sum(len(r) for r in self.replica_nodes)
        if total == 0:
            return 0.0
        return self.total_ft_replicas() / total

    def validate(self) -> None:
        """Check invariants P2/P3 from DESIGN.md."""
        for v, (replicas, fts, mirrors) in enumerate(
                zip(self.replica_nodes, self.ft_nodes, self.mirror_nodes)):
            master = int(self.master_of[v])
            rset = set(replicas)
            if master in rset:
                raise ConfigError(
                    f"vertex {v}: master node {master} also in replicas")
            if len(rset) != len(replicas):
                raise ConfigError(f"vertex {v}: duplicate replica nodes")
            if not set(fts) <= rset:
                raise ConfigError(f"vertex {v}: FT node not in replicas")
            if not set(mirrors) <= rset:
                raise ConfigError(f"vertex {v}: mirror node not a replica")
            if len(mirrors) != min(self.ft_level, len(replicas)):
                raise ConfigError(
                    f"vertex {v}: expected {self.ft_level} mirrors, "
                    f"got {len(mirrors)} of {len(replicas)} replicas")
            if len(replicas) < self.ft_level:
                raise ConfigError(
                    f"vertex {v}: only {len(replicas)} copies for "
                    f"ft_level {self.ft_level}")


def computation_replicas(graph: Graph, partitioning) -> list[set[int]]:
    """Per-vertex computation replica node sets (master excluded)."""
    n = graph.num_vertices
    replicas: list[set[int]] = [set() for _ in range(n)]
    if isinstance(partitioning, EdgeCutPartitioning):
        master_of = np.asarray(partitioning.master_of)
        src, dst = graph.sources, graph.targets
        src_nodes = master_of[src]
        dst_nodes = master_of[dst]
        for eid in np.flatnonzero(src_nodes != dst_nodes):
            replicas[int(src[eid])].add(int(dst_nodes[eid]))
    elif isinstance(partitioning, VertexCutPartitioning):
        master_of = np.asarray(partitioning.master_of)
        edge_node = np.asarray(partitioning.edge_node)
        src, dst = graph.sources, graph.targets
        for eid in range(graph.num_edges):
            node = int(edge_node[eid])
            for v in (int(src[eid]), int(dst[eid])):
                if node != int(master_of[v]):
                    replicas[v].add(node)
    else:
        raise ConfigError(
            f"unsupported partitioning: {type(partitioning).__name__}")
    return replicas


def plan_replication(graph: Graph, partitioning,
                     ft_config: FaultToleranceConfig,
                     seed: int = 0) -> ReplicationPlan:
    """Produce the full replication layout for a job.

    With ``ft_level == 0`` (BASE / CKPT configurations) no FT replicas
    or mirrors are created and the plan just records the computation
    replicas.
    """
    n = graph.num_vertices
    num_nodes = partitioning.num_nodes
    k = ft_config.ft_level
    master_of = np.asarray(partitioning.master_of)
    replica_sets = computation_replicas(graph, partitioning)
    selfish = graph.out_degrees() == 0

    ft_nodes: list[list[int]] = [[] for _ in range(n)]
    if k > 0:
        if k >= num_nodes:
            raise ConfigError(
                f"ft_level {k} impossible with {num_nodes} nodes")
        rng = SeededRng(seed, "ft-placement")
        # Total copies (masters + replicas) per node; FT placement
        # balances this load.
        load = np.bincount(master_of, minlength=num_nodes).astype(np.int64)
        for v, rset in enumerate(replica_sets):
            for node in rset:
                load[node] += 1
        candidates = max(1, ft_config.placement_candidates)
        for v in range(n):
            rset = replica_sets[v]
            master = int(master_of[v])
            while len(rset) < k:
                excluded = rset | {master}
                pool = [node for node in range(num_nodes)
                        if node not in excluded]
                if not pool:
                    raise ConfigError(
                        f"vertex {v}: cannot place {k} copies on "
                        f"{num_nodes} nodes")
                if len(pool) > candidates:
                    sample = rng.sample(pool, candidates)
                else:
                    sample = pool
                best = min(sample, key=lambda node: (load[node], node))
                rset.add(best)
                ft_nodes[v].append(best)
                load[best] += 1

    replica_nodes = [sorted(rset) for rset in replica_sets]

    # Mirror election (Section 4.2): every master machine assigns its
    # vertices' mirrors greedily to the replica-hosting machine with the
    # fewest mirrors assigned by this machine so far; FT replicas are
    # always elected first.
    mirror_nodes: list[list[int]] = [[] for _ in range(n)]
    if k > 0:
        counters: dict[int, np.ndarray] = {}
        for v in range(n):
            master = int(master_of[v])
            counter = counters.get(master)
            if counter is None:
                counter = np.zeros(num_nodes, dtype=np.int64)
                counters[master] = counter
            chosen: list[int] = []
            for node in ft_nodes[v]:
                if len(chosen) >= k:
                    break
                chosen.append(node)
            remaining = [node for node in replica_nodes[v]
                         if node not in chosen]
            while len(chosen) < min(k, len(replica_nodes[v])):
                best = min(remaining, key=lambda node: (counter[node], node))
                remaining.remove(best)
                chosen.append(best)
            for node in chosen:
                counter[node] += 1
            mirror_nodes[v] = chosen

    plan = ReplicationPlan(
        ft_level=k,
        num_nodes=num_nodes,
        master_of=master_of,
        replica_nodes=replica_nodes,
        ft_nodes=ft_nodes,
        mirror_nodes=mirror_nodes,
        selfish=selfish,
    )
    if k > 0:
        plan.validate()
    return plan
