"""Shared recovery result types.

Both recovery strategies (and the checkpoint baseline) report their
work through :class:`RecoveryStats`, whose three phase timings map onto
the paper's reload / reconstruct / replay breakdown (Sections 5.1-5.2,
Figs. 2c and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RecoveryStats:
    """Accounting for one recovery event."""

    strategy: str
    #: Nodes that crashed, and (Rebirth) the standby nodes that
    #: replaced them.
    failed_nodes: tuple[int, ...] = ()
    newbie_nodes: tuple[int, ...] = ()
    #: Phase timings in simulated seconds (Section 5.1: Reloading,
    #: Reconstruction, Replay).
    reload_s: float = 0.0
    reconstruct_s: float = 0.0
    replay_s: float = 0.0
    #: Failure-detection delay preceding the recovery proper.
    detection_s: float = 0.0
    #: Work counts.
    vertices_recovered: int = 0
    edges_recovered: int = 0
    recovery_messages: int = 0
    recovery_bytes: int = 0
    #: Iterations of lost computation re-executed afterwards (nonzero
    #: only for the checkpoint baseline).
    replayed_iterations: int = 0
    #: The iteration at which the failure was handled.
    at_iteration: int = 0
    #: Post-recovery FT repair (engine pass re-creating replicas for
    #: vertices below K+1; DESIGN.md §9).  Charged separately from the
    #: three recovery phases, so ``total_s`` keeps its paper meaning.
    repair_s: float = 0.0
    repaired_vertices: int = 0
    repair_replicas_created: int = 0
    repair_bytes: int = 0

    @property
    def total_s(self) -> float:
        """Recovery time excluding detection (the paper's Table 2/5)."""
        return self.reload_s + self.reconstruct_s + self.replay_s

    @property
    def total_with_detection_s(self) -> float:
        return self.detection_s + self.total_s


@dataclass
class RecoveryOutcome:
    """What a recovery handed back to the engine."""

    stats: RecoveryStats
    #: Updated vertex -> master-node map (Migration moves masters).
    master_of_updates: dict[int, int] = field(default_factory=dict)
    #: Node ids that joined the computation (Rebirth newbies).
    joined_nodes: tuple[int, ...] = ()
