"""Young's first-order checkpoint-interval model (Section 6.11).

Young [30] gives the optimal interval between fault-tolerance
"payments" (a checkpoint, or one interval's worth of replication
overhead) as ``sqrt(2 * C * MTBF)`` where C is the cost of one payment.
The *efficiency* of a scheme is the useful-work fraction of expected
wall time once overhead, expected rework and recovery are folded in.

The paper evaluates CKPT vs REP for PageRank on Twitter assuming the
50-node cluster's MTBF of ~7.3 days and finds optimal intervals of
9,768 s vs 623 s and efficiencies of 98.44% vs 99.90%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: MTBF of the paper's 50-node cluster, seconds (~7.3 days, [10]).
DEFAULT_MTBF_S = 7.3 * 24 * 3600.0


def optimal_interval(payment_cost_s: float,
                     mtbf_s: float = DEFAULT_MTBF_S) -> float:
    """Young's optimal interval ``sqrt(2 * C * MTBF)``."""
    if payment_cost_s <= 0:
        raise ConfigError("payment cost must be positive")
    if mtbf_s <= 0:
        raise ConfigError("MTBF must be positive")
    return math.sqrt(2.0 * payment_cost_s * mtbf_s)


@dataclass(frozen=True)
class EfficiencyReport:
    """Efficiency of one fault-tolerance scheme under Young's model."""

    scheme: str
    payment_cost_s: float
    optimal_interval_s: float
    recovery_cost_s: float
    mtbf_s: float
    efficiency: float


def efficiency(scheme: str, payment_cost_s: float, recovery_cost_s: float,
               mtbf_s: float = DEFAULT_MTBF_S) -> EfficiencyReport:
    """Useful-work fraction at the optimal interval.

    Expected wall time per interval T of useful work:
    ``T + C + (T/MTBF) * (T/2 + R)`` — the payment, plus with
    probability T/MTBF a failure costing half an interval of rework
    plus the recovery time R.
    """
    interval = optimal_interval(payment_cost_s, mtbf_s)
    rework = (interval / mtbf_s) * (interval / 2.0 + recovery_cost_s)
    total = interval + payment_cost_s + rework
    return EfficiencyReport(
        scheme=scheme,
        payment_cost_s=payment_cost_s,
        optimal_interval_s=interval,
        recovery_cost_s=recovery_cost_s,
        mtbf_s=mtbf_s,
        efficiency=interval / total,
    )
