"""Shared machinery for Rebirth and Migration recovery (Section 5).

Both strategies decompose into the paper's three phases:

* **Reloading** — surviving nodes scan their local masters and mirrors
  to decide what they must recover (fully decentralised: the needed
  location knowledge is in the master metadata every master and mirror
  already holds), then emit batched recovery messages;
* **Reconstruction** — received vertices are written positionally into
  the destination's vertex array and topology is re-linked;
* **Replay** — activation operations stamped with the last committed
  iteration are re-executed, and selfish vertices' dynamic state is
  recomputed from their neighbors.

The helpers here are strategy-agnostic; the strategy modules orchestrate
them and do the strategy-specific accounting.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any

from repro.cluster.network import Message, MessageKind
from repro.engine.local_graph import LocalGraph
from repro.engine.messages import RecoveredVertex
from repro.engine.state import MasterMeta, Role, VertexSlot
from repro.errors import UnrecoverableFailureError
from repro.utils.rng import SeededRng
from repro.utils.sizing import BYTES_PER_VID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import Engine


def last_committed_iteration(engine: "Engine") -> int:
    """The iteration whose barrier last committed successfully."""
    return engine.iteration - 1


def surviving_recoverer(meta: MasterMeta, failed: set[int]) -> int | None:
    """The node leading recovery of a vertex whose master crashed.

    Mirror ids order the mirrors; the surviving mirror with the lowest
    id does the work so the others stay silent (Section 5.3.1).
    Returns ``None`` when every mirror crashed too.
    """
    for node in meta.mirror_nodes:
        if node not in failed:
            return node
    return None


def snapshot_master_full_state(lg: LocalGraph, slot: VertexSlot,
                               position: int,
                               edge_cut: bool) -> RecoveredVertex:
    """Package a master's full state for recovery (from its mirror)."""
    full_edges = list(slot.full_edges) if (edge_cut and slot.full_edges
                                           is not None) else None
    return RecoveredVertex(
        gid=slot.gid,
        role=Role.MASTER.value,
        position=position,
        value=slot.value,
        active=slot.mirror_self_active,
        last_activates=slot.last_activates,
        out_degree=slot.out_degree,
        in_degree=slot.in_degree,
        master_node=slot.meta.master_node,
        ft_only=False,
        selfish=slot.selfish,
        self_active=slot.mirror_self_active,
        known_active=slot.active,
        last_update_iter=slot.last_update_iter,
        full_edges=full_edges,
        replica_positions=dict(slot.meta.replica_positions),
        mirror_nodes=list(slot.meta.mirror_nodes),
        master_position=slot.meta.master_position,
    )


def snapshot_replica_state(master_lg: LocalGraph, master_slot: VertexSlot,
                           replica_node: int, position: int,
                           edge_cut: bool,
                           from_mirror: bool = False) -> RecoveredVertex:
    """Package a replica/mirror copy for recovery (from its master).

    With ``from_mirror`` the caller is a surviving *mirror* recovering a
    copy on the dead master's behalf; the edge backup must then come
    from the mirror's ``full_edges`` (already expressed in master-node
    positions) — the mirror's local ``in_edges`` use its own node's
    positions and would corrupt the rebuilt copy.
    """
    meta = master_slot.meta
    is_mirror = replica_node in meta.mirror_nodes
    full_edges = None
    if edge_cut and is_mirror:
        if from_mirror:
            full_edges = (list(master_slot.full_edges)
                          if master_slot.full_edges is not None else None)
        else:
            full_edges = [(master_lg.slots[pos].gid, pos, weight)
                          for pos, weight in master_slot.in_edges]
    # On a mirror slot ``replicas_known_active`` is a master-only field;
    # the mirror's own ``active`` flag is the shared broadcast state.
    known = (master_slot.active if from_mirror
             else master_slot.replicas_known_active)
    return RecoveredVertex(
        gid=master_slot.gid,
        role=Role.MIRROR.value if is_mirror else Role.REPLICA.value,
        position=position,
        value=master_slot.value,
        active=known,
        last_activates=master_slot.last_activates,
        out_degree=master_slot.out_degree,
        in_degree=master_slot.in_degree,
        master_node=meta.master_node,
        ft_only=is_mirror and _is_ft_only(master_slot, replica_node),
        selfish=master_slot.selfish,
        mirror_id=(meta.mirror_nodes.index(replica_node)
                   if is_mirror else -1),
        self_active=master_slot.mirror_self_active,
        known_active=known,
        last_update_iter=master_slot.last_update_iter,
        full_edges=full_edges,
        replica_positions=(dict(meta.replica_positions)
                           if is_mirror else None),
        mirror_nodes=list(meta.mirror_nodes) if is_mirror else None,
        master_position=meta.master_position if is_mirror else -1,
    )


def _is_ft_only(master_slot: VertexSlot, replica_node: int) -> bool:
    """An FT-only copy hosts none of the vertex's computation edges.

    Without per-copy bookkeeping at the master we approximate: selfish
    vertices' mirrors are always FT-only; other mirrors are assumed to
    be computation replicas (true under edge-cut construction whenever
    the vertex has out-edges toward that node, which is what made it a
    replica candidate in the first place).
    """
    return master_slot.selfish


def place_recovered_vertex(lg: LocalGraph, rv: RecoveredVertex,
                           last_commit: int) -> VertexSlot:
    """Write one recovered vertex into the array at its position.

    Positional placement is contention-free (Section 5.1.2): exactly
    one recovery message exists per lost position.
    """
    role = Role(rv.role)
    slot = VertexSlot(
        gid=rv.gid,
        role=role,
        value=rv.value,
        active=rv.active,
        last_activates=rv.last_activates,
        last_update_iter=min(rv.last_update_iter, last_commit),
        out_degree=rv.out_degree,
        in_degree=rv.in_degree,
        master_node=rv.master_node,
        ft_only=rv.ft_only,
        selfish=rv.selfish,
        mirror_id=rv.mirror_id,
        full_edges=(list(rv.full_edges)
                    if rv.full_edges is not None else None),
    )
    if role is Role.MASTER:
        slot.replicas_known_active = rv.known_active
        slot.mirror_self_active = rv.self_active
    if role is Role.MIRROR:
        slot.mirror_self_active = rv.self_active
    if rv.replica_positions is not None:
        slot.meta = MasterMeta(
            replica_positions=dict(rv.replica_positions),
            mirror_nodes=list(rv.mirror_nodes or []),
            master_node=rv.master_node,
            master_position=rv.master_position,
        )
    lg.add_slot(slot, position=rv.position)
    return slot


def relink_edge_cut_topology(lg: LocalGraph) -> int:
    """Rebuild in/out edge lists of a freshly reconstructed node.

    Masters' in-edge lists come verbatim from the mirrors' full-state
    edge copies (positions are stable, so the stored source positions
    are directly valid); out-edge lists are derived by scanning them.
    Returns the number of edges linked.
    """
    linked = 0
    for slot in lg.iter_slots():
        slot.in_edges = []
        slot.out_edges = []
    for slot in lg.iter_slots():
        if slot.role is not Role.MASTER or slot.full_edges is None:
            continue
        position = lg.position_of(slot.gid)
        for src_gid, src_pos, weight in slot.full_edges:
            slot.in_edges.append((src_pos, weight))
            src_slot = lg.slot_at(src_pos)
            if src_slot is None or src_slot.gid != src_gid:
                raise UnrecoverableFailureError(
                    f"position {src_pos} expected vertex {src_gid}")
            src_slot.out_edges.append(position)
            linked += 1
    return linked


def replay_activations(engine: "Engine", nodes: list[int],
                       target_gids: set[int] | None) -> int:
    """Re-execute lost activation operations (Section 5.1.3).

    For every local slot whose last committed update (stamped with the
    last committed iteration) requested activation, re-signal its local
    out-edge targets.  ``target_gids`` restricts the replay to recovered
    or promoted masters (Migration); ``None`` replays toward every local
    master (Rebirth on the new node).  Signals to masters on other
    nodes are forwarded (vertex-cut).  Returns the number of replayed
    operations.
    """
    commit = last_committed_iteration(engine)
    ops = 0
    remote: set[tuple[int, int, int]] = set()
    for node in nodes:
        lg = engine.local_graphs[node]
        for slot in lg.iter_slots():
            if not slot.last_activates or slot.last_update_iter != commit:
                continue
            for dst_pos in slot.out_edges:
                target = lg.slots[dst_pos]
                if target is None:
                    continue
                if target_gids is not None and target.gid not in target_gids:
                    continue
                ops += 1
                if target.is_master:
                    lg.set_active(target, True)
                else:
                    remote.add((node, target.master_node, target.gid))
    net = engine.cluster.network
    for src, dst, gid in sorted(remote):
        if not engine.cluster.node(dst).is_alive:
            continue
        net.send(Message(MessageKind.RECOVERY, src, dst,
                         ("replay-activate", gid), BYTES_PER_VID))
    for node in engine._alive():
        lg = engine.local_graphs[node]
        for msg in net.deliver(node):
            kind, gid = msg.payload
            if kind == "replay-activate" and gid in lg.index_of:
                slot = lg.slot_of(gid)
                if slot.is_master:
                    lg.set_active(slot, True)
    return ops


def recompute_selfish_masters(engine: "Engine", gids: list[int]) -> int:
    """Recompute selfish vertices' dynamic state from neighbors.

    Selfish vertices skipped normal sync (Section 4.4), so their
    recovered value is stale; being history-free (the optimisation's
    precondition), one gather+apply over the last committed neighbor
    values restores it.  Under vertex-cut the gather spans nodes, so
    partials are folded in node-id order like the engine does.
    Returns the number of gather operations (edges) performed.

    The recomputed value is the one the *retried* superstep will
    commit, not the last-committed one — and because selfish syncs are
    elided, no surviving copy holds the committed value either.  The
    gids therefore enter ``engine.selfish_read_fence`` so the read
    router serves them as degraded misses until the next commit
    barrier (DESIGN.md §13).
    """
    program = engine.program
    ctx = engine._ctx()
    edges = 0
    engine.selfish_read_fence.update(gids)
    if engine.is_edge_cut:
        for gid in gids:
            node = engine.master_node_of[gid]
            lg = engine.local_graphs[node]
            slot = lg.slot_of(gid)
            acc = program.gather_init()
            for src_pos, weight in slot.in_edges:
                acc = program.gather(acc, lg.view(src_pos), weight, gid)
                edges += 1
            slot.value = program.apply(gid, slot.value, acc, ctx)
            lg.set_active(slot, program.stays_active(
                gid, slot.value, slot.value, ctx))
    else:
        want = set(gids)
        partials: dict[int, list[tuple[int, Any]]] = defaultdict(list)
        for node in engine._alive():
            lg = engine.local_graphs[node]
            for gid in want:
                if gid not in lg.index_of:
                    continue
                slot = lg.slot_of(gid)
                if not slot.in_edges:
                    continue
                acc = program.gather_init()
                for src_pos, weight in slot.in_edges:
                    acc = program.gather(acc, lg.view(src_pos), weight, gid)
                    edges += 1
                partials[gid].append((node, acc))
        for gid in gids:
            node = engine.master_node_of[gid]
            master_lg = engine.local_graphs[node]
            slot = master_lg.slot_of(gid)
            acc = program.gather_init()
            for _, part in sorted(partials.get(gid, ()),
                                  key=lambda item: item[0]):
                acc = program.gather_sum(acc, part)
            slot.value = program.apply(gid, slot.value, acc, ctx)
            master_lg.set_active(slot, program.stays_active(
                gid, slot.value, slot.value, ctx))
    return edges


def find_lost_vertices(engine: "Engine", failed: set[int]) -> list[int]:
    """Gids of dead masters no surviving mirror can recover.

    A cheap survivor-side scan (no mutation), run *before* any rung of
    the fallback ladder mutates cluster state: only mirrors hold the
    master's full state (plain FT replicas carry neither metadata nor
    edge backups), so a master is in-memory recoverable iff at least
    one of its mirrors survives.  Anything else needs the checkpoint
    rung — or is genuinely unrecoverable.
    """
    covered: set[int] = set()
    for node in engine._alive():
        if node in failed:
            continue
        for slot in engine.local_graphs[node].iter_slots():
            if slot.is_mirror and slot.master_node in failed:
                covered.add(slot.gid)
    return [gid for gid, node in enumerate(engine.master_node_of)
            if node in failed and gid not in covered]


def restore_ft_level(engine: "Engine", gids: list[int],
                     seed_label: str, k: int | None = None
                     ) -> tuple[int, int]:
    """Re-create FT replicas and mirrors for the given master vertices.

    After recovery some vertices have fewer than ``ft_level`` mirrors
    (crashed copies, promoted mirrors).  New FT replicas are placed with
    the same randomized least-loaded heuristic as loading (Section 4.1)
    and new mirrors elected; new mirrors receive the master's full
    state.  ``k`` overrides the target replication level (the adaptive
    floor, DESIGN.md §14); the default is the engine's current effective
    floor.  Returns ``(replicas_created, mirror_bytes_sent)``.
    """
    if k is None:
        k = engine.effective_ft_floor
    if k <= 0:
        return (0, 0)
    rng = SeededRng(engine.seed, seed_label, engine.iteration)
    alive = [n for n in engine._alive()
             if (n < engine.cluster.num_workers
                 or n in engine.local_graphs)
             and engine.cluster.placement_eligible(n)]
    created = 0
    bytes_sent = 0
    program = engine.program
    for gid in gids:
        master_node = engine.master_node_of[gid]
        master_lg = engine.local_graphs[master_node]
        master_slot = master_lg.slot_of(gid)
        meta = master_slot.meta
        # Ensure at least k replicas exist.
        while len(meta.replica_positions) < k:
            excluded = set(meta.replica_positions) | {master_node}
            pool = [n for n in alive if n not in excluded]
            if not pool:
                break
            # Adopt untracked surviving copies first: a copy can
            # outlive its metadata entry (a reborn node restores its
            # slots, but the master's replica_positions was pruned at
            # crash time).  Re-registering it — with state refreshed
            # from the master — is a free replica, and placing a *new*
            # copy on that node would collide with the old slot.
            orphans = [n for n in pool
                       if gid in engine.local_graphs[n].index_of]
            if orphans:
                node = orphans[0]
                orphan = engine.local_graphs[node].slot_of(gid)
                orphan.value = master_slot.value
                orphan.last_activates = master_slot.last_activates
                orphan.last_update_iter = master_slot.last_update_iter
                orphan.master_node = master_node
                meta.replica_positions[node] = \
                    engine.local_graphs[node].position_of(gid)
                created += 1
                bytes_sent += program.value_nbytes(master_slot.value) \
                    + BYTES_PER_VID
                continue
            candidates = engine.job.ft.placement_candidates
            sample = (rng.sample(pool, candidates)
                      if len(pool) > candidates else pool)
            best = min(sample,
                       key=lambda n: (len(engine.local_graphs[n].slots), n))
            rv = snapshot_replica_state(master_lg, master_slot, best,
                                        position=len(
                                            engine.local_graphs[best].slots),
                                        edge_cut=engine.is_edge_cut)
            rv.ft_only = True
            slot = place_recovered_vertex(
                engine.local_graphs[best], rv,
                last_committed_iteration(engine))
            slot.role = Role.REPLICA  # elected below if chosen as mirror
            slot.mirror_id = -1
            meta.replica_positions[best] = rv.position
            created += 1
            bytes_sent += rv.nbytes(program.value_nbytes(rv.value))
        # Elect mirrors up to k, keeping surviving ones.
        meta.mirror_nodes = [n for n in meta.mirror_nodes
                             if n in meta.replica_positions]
        pool = [n for n in meta.replica_positions
                if n not in meta.mirror_nodes]
        pool.sort(key=lambda n: (len(engine.local_graphs[n].slots), n))
        while len(meta.mirror_nodes) < min(k, len(meta.replica_positions)):
            node = pool.pop(0)
            meta.mirror_nodes.append(node)
            mirror_slot = engine.local_graphs[node].slot_of(gid)
            mirror_slot.role = Role.MIRROR
            mirror_slot.mirror_id = meta.mirror_nodes.index(node)
            mirror_slot.mirror_self_active = master_slot.mirror_self_active
            mirror_slot.meta = MasterMeta(
                replica_positions=dict(meta.replica_positions),
                mirror_nodes=list(meta.mirror_nodes),
                master_node=meta.master_node,
                master_position=meta.master_position,
            )
            if engine.is_edge_cut:
                mirror_slot.full_edges = [
                    (master_lg.slots[pos].gid, pos, weight)
                    for pos, weight in master_slot.in_edges]
                bytes_sent += len(mirror_slot.full_edges) * 24
            bytes_sent += 64
        meta.invalidate_replica_cache()
        # Mirrors hold stale metadata copies after changes: refresh.
        for node in meta.mirror_nodes:
            mslot = engine.local_graphs[node].slot_of(gid)
            mslot.role = Role.MIRROR
            mslot.mirror_id = meta.mirror_nodes.index(node)
            mslot.meta = MasterMeta(
                replica_positions=dict(meta.replica_positions),
                mirror_nodes=list(meta.mirror_nodes),
                master_node=meta.master_node,
                master_position=meta.master_position,
            )
    return created, bytes_sent
