"""Imitator-CKPT: the near-optimal checkpoint baseline (Sections 2.2-2.3).

A synchronous distributed checkpoint executed inside the global barrier:

* a **metadata snapshot** at loading captures the immutable topology
  and replica locations (its bytes are charged, its contents rebuilt
  deterministically from the loading inputs at recovery);
* **incremental data snapshots** every ``interval`` iterations store
  only the master values updated since the previous checkpoint, plus a
  compact activity bitmap — no messages are stored (vertex replication
  makes them re-derivable) and edge data is skipped for algorithms that
  never touch it, which is why the paper calls this implementation
  near-optimal (several times faster than Hama's stock checkpoints).

Recovery follows the paper's three steps: every node (the replacement
included) **reloads** snapshots from the DFS, **reconstructs** replica
state by a full master-to-replica resynchronisation, and the engine
then **replays** the lost iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.storage import PersistentStore
from repro.costmodel import CostModel, storage_read_time, storage_write_time
from repro.engine.local_graph import LocalGraph
from repro.engine.vertex_program import VertexProgram
from repro.errors import CheckpointError
from repro.obs import NULL_TRACER, Tracer
from repro.utils.sizing import BYTES_PER_EDGE, BYTES_PER_VID


@dataclass
class CheckpointStats:
    """Cost accounting for checkpoints written so far."""

    checkpoints_written: int = 0
    bytes_written: int = 0
    #: Simulated seconds spent inside barriers writing checkpoints.
    time_spent_s: float = 0.0
    last_checkpoint_iteration: int = -1


@dataclass
class CheckpointRecoveryStats:
    """Reload/reconstruct accounting for one checkpoint recovery."""

    reload_s: float = 0.0
    reconstruct_s: float = 0.0
    bytes_read: int = 0
    vertices_restored: int = 0
    #: Iteration the engine must resume from (last snapshot).
    resume_iteration: int = 0


def _data_path(node: int, iteration: int) -> str:
    return f"ckpt/data/node{node}/iter{iteration:06d}"


def _meta_path(node: int) -> str:
    return f"ckpt/meta/node{node}"


def _safety_path(node: int, iteration: int) -> str:
    return f"ckpt/safety/node{node}/iter{iteration:06d}"


def _safety_edges_path(iteration: int) -> str:
    return f"ckpt/safety/edges/iter{iteration:06d}"


class CheckpointManager:
    """Writes and restores Imitator-CKPT snapshots for one job."""

    def __init__(self, store: PersistentStore, model: CostModel,
                 interval: int, in_memory: bool, num_nodes: int,
                 tracer: Tracer | None = None):
        if interval < 1:
            raise CheckpointError("checkpoint interval must be >= 1")
        self.store = store
        self.model = model
        self.interval = interval
        self.in_memory = in_memory
        self.num_nodes = num_nodes
        self.stats = CheckpointStats()
        self.tracer = tracer or NULL_TRACER

    # -- loading phase ------------------------------------------------------

    def write_metadata(self, local_graphs: dict[int, LocalGraph]) -> float:
        """Persist the immutable per-node topology snapshot.

        Returns the simulated time (max across nodes, all writing in
        parallel).
        """
        slowest = 0.0
        for node, lg in local_graphs.items():
            counts = lg.counts()
            nbytes = (counts["total"] * (BYTES_PER_VID + 16)
                      + counts["local_in_edges"] * BYTES_PER_EDGE)
            self.store.write(_meta_path(node), {"counts": counts}, nbytes)
            slowest = max(slowest, storage_write_time(
                self.model, nbytes, 1, self.in_memory))
        return slowest

    # -- per-barrier checkpointing --------------------------------------------

    def due(self, iteration: int) -> bool:
        """Is a checkpoint scheduled at this iteration's barrier?"""
        return (iteration + 1) % self.interval == 0

    def checkpoint(self, iteration: int,
                   local_graphs: dict[int, LocalGraph],
                   program: VertexProgram,
                   alive_nodes: list[int],
                   edge_journal: dict[int, list] | None = None) -> float:
        """Write one incremental snapshot inside the global barrier.

        Returns the simulated time it adds to the barrier (the max over
        nodes: the checkpoint is a collective operation).
        """
        since = self.stats.last_checkpoint_iteration
        slowest = 0.0
        for node in alive_nodes:
            lg = local_graphs[node]
            delta: dict[int, tuple[Any, bool, bool, int]] = {}
            nbytes = 0
            num_masters = 0
            for slot in lg.iter_masters():
                num_masters += 1
                if slot.last_update_iter > since:
                    delta[slot.gid] = (slot.value, slot.active,
                                       slot.last_activates,
                                       slot.last_update_iter)
                    nbytes += (BYTES_PER_VID
                               + program.value_nbytes(slot.value) + 2)
            # Activity bitmap for every master (activation can change
            # without a value update).
            actives = {slot.gid: slot.active for slot in lg.iter_masters()}
            nbytes += (num_masters + 7) // 8
            # Mutated edge state since the last snapshot (rare; the
            # near-optimal baseline "skips edge data" for algorithms
            # that never touch it, Section 2.3).
            edges = list(edge_journal.get(node, ())) \
                if edge_journal else []
            nbytes += 12 * len(edges)
            payload = {"delta": delta, "actives": actives,
                       "edges": edges, "iteration": iteration}
            self.store.write(_data_path(node, iteration), payload, nbytes)
            serialise = (len(delta) * self.model.ckpt_per_record_s
                         * self.model.data_scale)
            slowest = max(slowest, serialise + storage_write_time(
                self.model, nbytes, 1, self.in_memory))
            self.stats.bytes_written += nbytes
        self.stats.checkpoints_written += 1
        self.stats.time_spent_s += slowest
        self.stats.last_checkpoint_iteration = iteration
        self.tracer.record("barrier.checkpoint", slowest, cat="checkpoint",
                           iteration=iteration,
                           ckpt_bytes=self.stats.bytes_written)
        return slowest

    # -- safety-net snapshots (REPLICATION fallback ladder) ----------------

    def safety_checkpoint(self, iteration: int,
                          local_graphs: dict[int, LocalGraph],
                          program: VertexProgram,
                          alive_nodes: list[int],
                          edge_log: dict[tuple[int, int], float] | None = None
                          ) -> float:
        """Write one *full* master snapshot for the fallback ladder.

        Unlike the incremental CKPT-mode snapshots, safety snapshots
        must survive arbitrary recoveries in between: Migration moves
        masters across nodes, so a per-node delta chain cannot be
        replayed after the fact.  Each node therefore writes all of its
        current masters, and recovery merges the latest iteration's
        files from every node into one global gid-keyed map.  Edge
        mutations are stored as a cumulative position-independent
        ``(src_gid, dst_gid) -> weight`` log for the same reason.
        """
        slowest = 0.0
        for node in alive_nodes:
            lg = local_graphs[node]
            masters: dict[int, tuple[Any, bool, bool, int, bool]] = {}
            nbytes = 0
            for slot in lg.iter_masters():
                masters[slot.gid] = (slot.value, slot.active,
                                     slot.last_activates,
                                     slot.last_update_iter,
                                     slot.mirror_self_active)
                nbytes += (BYTES_PER_VID
                           + program.value_nbytes(slot.value) + 3)
            payload = {"masters": masters, "iteration": iteration}
            self.store.write(_safety_path(node, iteration), payload, nbytes)
            serialise = (len(masters) * self.model.ckpt_per_record_s
                         * self.model.data_scale)
            slowest = max(slowest, serialise + storage_write_time(
                self.model, nbytes, 1, self.in_memory))
            self.stats.bytes_written += nbytes
        if edge_log:
            nbytes = 12 * len(edge_log)
            self.store.write(_safety_edges_path(iteration),
                             dict(edge_log), nbytes)
            self.stats.bytes_written += nbytes
            slowest = max(slowest, storage_write_time(
                self.model, nbytes, 1, self.in_memory))
        self.stats.checkpoints_written += 1
        self.stats.time_spent_s += slowest
        self.stats.last_checkpoint_iteration = iteration
        self.tracer.record("barrier.safety_checkpoint", slowest,
                           cat="checkpoint", iteration=iteration,
                           ckpt_bytes=self.stats.bytes_written)
        return slowest

    def recover_safety(self, local_graphs: dict[int, LocalGraph],
                       program: VertexProgram,
                       alive_nodes: list[int],
                       initial_value_of) -> CheckpointRecoveryStats:
        """Restore freshly-rebuilt masters from the latest safety snapshot.

        Expects ``local_graphs`` rebuilt pristine from the loading
        inputs (masters back at their original homes), so the globally
        merged snapshot can be applied wherever each master now lives.
        With no snapshot written yet the run restarts from iteration 0;
        only initial values are applied.
        """
        stats = CheckpointRecoveryStats()
        last = self.stats.last_checkpoint_iteration
        stats.resume_iteration = last + 1
        merged: dict[int, tuple[Any, bool, bool, int, bool]] = {}
        edges: dict[tuple[int, int], float] = {}
        nbytes = 0
        num_reads = 1  # the metadata snapshot
        if last >= 0:
            for node in range(self.num_nodes):
                path = _safety_path(node, last)
                if not self.store.exists(path):
                    continue
                payload = self.store.read(path)
                nbytes += self.store.stat(path).nbytes
                num_reads += 1
                merged.update(payload["masters"])
            epath = _safety_edges_path(last)
            if self.store.exists(epath):
                edges = dict(self.store.read(epath))
                nbytes += self.store.stat(epath).nbytes
                num_reads += 1
        for node in alive_nodes:
            lg = local_graphs[node]
            for slot in lg.iter_masters():
                if slot.gid in merged:
                    (value, active, activates,
                     update_iter, self_active) = merged[slot.gid]
                    slot.value = value
                    slot.last_activates = activates
                    slot.last_update_iter = update_iter
                    slot.mirror_self_active = self_active
                    lg.set_active(slot, active)
                else:
                    slot.value = initial_value_of(slot.gid)
                    slot.last_activates = False
                    slot.last_update_iter = -1
                    lg.set_active(slot,
                                  program.is_initially_active(slot.gid))
                slot.clear_pending()
                stats.vertices_restored += 1
            if edges:
                self._apply_edge_log(lg, edges)
        stats.bytes_read = nbytes
        deserialise = (len(merged) * self.model.ckpt_per_record_s
                       * self.model.data_scale)
        stats.reload_s = deserialise + storage_read_time(
            self.model, nbytes, num_reads, self.in_memory)
        self.tracer.record("safety_checkpoint.reload", stats.reload_s,
                           cat="recovery", bytes_read=stats.bytes_read,
                           vertices=stats.vertices_restored,
                           resume_iteration=stats.resume_iteration)
        return stats

    @staticmethod
    def _apply_edge_log(lg: LocalGraph,
                        edges: dict[tuple[int, int], float]) -> None:
        """Re-apply mutated edge weights to every local copy by gid pair."""
        for slot in lg.iter_slots():
            for i, (src_pos, weight) in enumerate(slot.in_edges):
                src = lg.slots[src_pos]
                if src is None:
                    continue
                key = (src.gid, slot.gid)
                if key in edges and edges[key] != weight:
                    slot.in_edges[i] = (src_pos, edges[key])
            for i, (src_gid, pos, weight) in enumerate(slot.full_edges or ()):
                key = (src_gid, slot.gid)
                if key in edges and edges[key] != weight:
                    slot.full_edges[i] = (src_gid, pos, edges[key])

    # -- recovery ---------------------------------------------------------------

    def recover(self, local_graphs: dict[int, LocalGraph],
                program: VertexProgram,
                alive_nodes: list[int],
                initial_value_of) -> CheckpointRecoveryStats:
        """Restore every node's masters to the last snapshot state.

        ``initial_value_of(gid)`` supplies the deterministic pre-first-
        iteration value for vertices never updated since loading.
        Replica values are *not* stored in snapshots; the reconstruct
        phase resynchronises them from the restored masters (charged as
        communication below, in the engine's recovery bookkeeping).
        """
        stats = CheckpointRecoveryStats()
        last = self.stats.last_checkpoint_iteration
        stats.resume_iteration = last + 1
        for node in alive_nodes:
            lg = local_graphs[node]
            # Merge every incremental snapshot in order.
            merged: dict[int, tuple[Any, bool, bool, int]] = {}
            actives: dict[int, bool] = {}
            edge_updates: list = []
            nbytes = 0
            num_reads = 1  # the metadata snapshot
            if self.store.exists(_meta_path(node)):
                nbytes += self.store.stat(_meta_path(node)).nbytes
                self.store.read(_meta_path(node))
            for iteration in range(0, last + 1):
                path = _data_path(node, iteration)
                if not self.store.exists(path):
                    continue
                payload = self.store.read(path)
                nbytes += self.store.stat(path).nbytes
                num_reads += 1
                merged.update(payload["delta"])
                actives = payload["actives"]
                edge_updates.extend(payload.get("edges", ()))
            for slot in lg.iter_masters():
                if slot.gid in merged:
                    value, active, activates, update_iter = merged[slot.gid]
                    slot.value = value
                    slot.last_activates = activates
                    slot.last_update_iter = update_iter
                else:
                    slot.value = initial_value_of(slot.gid)
                    slot.last_activates = False
                    slot.last_update_iter = -1
                if slot.gid in actives:
                    lg.set_active(slot, actives[slot.gid])
                else:
                    lg.set_active(slot,
                                  program.is_initially_active(slot.gid))
                slot.clear_pending()
                stats.vertices_restored += 1
            # Re-apply mutated edge state in journal order.
            for gid, idx, weight in edge_updates:
                slot = lg.slot_of(gid)
                src_pos, _old = slot.in_edges[idx]
                slot.in_edges[idx] = (src_pos, weight)
            stats.bytes_read += nbytes
            deserialise = (len(merged) * self.model.ckpt_per_record_s
                           * self.model.data_scale)
            stats.reload_s = max(
                stats.reload_s,
                deserialise + storage_read_time(
                    self.model, nbytes, num_reads, self.in_memory))
        self.tracer.record("checkpoint.reload", stats.reload_s,
                           cat="recovery", bytes_read=stats.bytes_read,
                           vertices=stats.vertices_restored,
                           resume_iteration=stats.resume_iteration)
        return stats
