"""Migration-based recovery (Section 5.2).

No standby machines: the crashed nodes' work scatters across the
survivors.

* Each surviving node scans its **mirrors**; the lowest-id surviving
  mirror of a crashed master is **promoted** to master in place.
* Under edge-cut the promoted mirror already holds the master's full
  in-edge list; sources without a local copy get **new replicas**
  created (the paper's "replica 6 on Node1" case), fetched from their
  masters.
* Under vertex-cut each survivor exclusively reloads one pre-assigned
  edge-ckpt file of the crashed node from persistent storage, in
  parallel (Section 5.2.1), creating missing endpoint replicas the same
  way.
* Location updates flow to every surviving copy, and the replay phase
  fixes activation state for the promoted masters only.  Restoring the
  fault-tolerance level (invariant P6: new FT replicas + mirrors) is
  the engine's post-recovery repair pass, shared by every recovery
  strategy (DESIGN.md §9).
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.cluster.network import Message, MessageKind
from repro.costmodel import pairwise_comm_time, storage_read_time
from repro.engine.state import Role
from repro.errors import UnrecoverableFailureError
from repro.ft import _recovery_common as common
from repro.ft.edge_ckpt import EdgeRecord
from repro.ft.recovery import RecoveryOutcome, RecoveryStats
from repro.utils.sizing import BYTES_PER_VID

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine


class MigrationRecovery:
    """Scatter a crashed node's work across the survivors."""

    def __init__(self, engine: "Engine"):
        self.engine = engine

    def recover(self, failed: tuple[int, ...]) -> RecoveryOutcome:
        engine = self.engine
        model = engine.model
        failed_set = set(failed)
        stats = RecoveryStats(strategy="migration", failed_nodes=failed)
        survivors = [n for n in engine._alive() if n not in failed_set]
        if not survivors:
            raise UnrecoverableFailureError(
                "every worker node crashed",
                lost_vertices=len(engine.master_node_of),
                rungs_attempted=("migration",))

        # ---------------- Reloading: promotion ----------------
        promotions: list[tuple[int, int]] = []  # (gid, new master node)
        selfish_promoted: list[int] = []
        scan_cost: dict[int, int] = defaultdict(int)
        selfish_opt = engine.selfish_opt_active
        for node in survivors:
            lg = engine.local_graphs[node]
            for slot in lg.iter_slots():
                scan_cost[node] += 1
                if not slot.is_mirror or slot.master_node not in failed_set:
                    continue
                if common.surviving_recoverer(slot.meta, failed_set) != node:
                    continue
                promotions.append((slot.gid, node))
                if slot.selfish and selfish_opt:
                    selfish_promoted.append(slot.gid)
        self._check_recoverable(failed_set, promotions)

        promoted_by_gid = dict(promotions)
        for gid, node in promotions:
            self._promote(gid, node, failed_set)
            engine.master_node_of[gid] = node
        stats.vertices_recovered += len(promotions)

        # Surviving masters drop crashed replica locations.  Restoring
        # the fault-tolerance level for vertices that lost copies is the
        # engine's post-recovery repair pass (it runs after *every*
        # successful recovery, whatever the rung — DESIGN.md §9).
        for node in survivors:
            lg = engine.local_graphs[node]
            for slot in lg.iter_slots():
                meta = slot.meta
                if meta is None:
                    continue
                for crashed in list(meta.replica_positions):
                    if crashed in failed_set:
                        del meta.replica_positions[crashed]
                # Mirrors' metadata copies must be pruned too: one of
                # them may be promoted to master in a *later* failure
                # and would otherwise resurrect dead replica locations.
                meta.mirror_nodes = [n for n in meta.mirror_nodes
                                     if n not in failed_set]
                meta.invalidate_replica_cache()

        # ---------------- Reloading: edges ----------------
        net = engine.cluster.network
        net.begin_step()
        dfs_time = 0.0
        edges_relinked = 0
        if engine.is_edge_cut:
            edges_relinked = self._relink_promoted_edge_cut(
                promotions, failed_set)
        else:
            dfs_time, edges_relinked = self._reload_vertex_cut_edges(
                failed, survivors, promoted_by_gid)
        stats.edges_recovered = edges_relinked

        # Location updates: every promoted master informs its surviving
        # copies of the new master node (control traffic).
        for gid, node in promotions:
            meta = engine.local_graphs[node].slot_of(gid).meta
            for replica_node in sorted(meta.replica_positions):
                slot = engine.local_graphs[replica_node].slot_of(gid)
                slot.master_node = node
                if slot.meta is not None:
                    slot.meta.master_node = node
                    slot.meta.master_position = meta.master_position
                net.send(Message(MessageKind.CONTROL, node, replica_node,
                                 ("new-master", gid, node),
                                 BYTES_PER_VID + 4))
        for node in survivors:
            net.deliver(node)

        scale = model.data_scale
        reload_times = []
        for node in survivors:
            scan = scan_cost[node] * model.per_vertex_scan_s * scale
            comm = pairwise_comm_time(model, net.step_bytes, net.step_msgs,
                                      node)
            reload_times.append(scan + comm)
        # Migration needs several cluster-wide coordination rounds:
        # promotion, replica creation, location updates, commit
        # (Section 6.4: "multiple rounds of message exchanges").
        rounds = 4
        stats.reload_s = (max(max(reload_times, default=0.0), dfs_time)
                          + rounds * model.recovery_round_s)
        stats.recovery_messages = sum(
            sum(by_dst.values()) for by_dst in net.step_msgs.values())
        stats.recovery_bytes += sum(
            sum(by_dst.values()) for by_dst in net.step_bytes.values())

        # ---------------- Reconstruction ----------------
        stats.reconstruct_s = (
            len(promotions) * model.per_vertex_reconstruct_s
            + edges_relinked * model.per_edge_compute_s
        ) * scale / max(1, len(survivors))

        # ---------------- Replay ----------------
        target_gids = set(promoted_by_gid)
        replay_ops = common.replay_activations(engine, survivors,
                                               target_gids)
        replay_edges = common.recompute_selfish_masters(
            engine, sorted(selfish_promoted))
        stats.replay_s = ((replay_ops * model.per_vertex_reconstruct_s
                           + replay_edges * model.per_edge_compute_s)
                          * scale / max(1, len(survivors)))
        tracer = engine.tracer
        tracer.record("migration.reload", stats.reload_s, cat="recovery",
                      promotions=len(promotions),
                      coordination_rounds=rounds)
        tracer.record("migration.reconstruct", stats.reconstruct_s,
                      cat="recovery", edges=edges_relinked)
        tracer.record("migration.replay", stats.replay_s, cat="recovery",
                      replay_ops=replay_ops)
        return RecoveryOutcome(
            stats=stats,
            master_of_updates={gid: node for gid, node in promotions})

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------

    def _check_recoverable(self, failed_set: set[int],
                           promotions: list[tuple[int, int]]) -> None:
        engine = self.engine
        promoted = {gid for gid, _ in promotions}
        lost = []
        for gid, node in enumerate(engine.master_node_of):
            if node in failed_set and gid not in promoted:
                lost.append(gid)
        if lost:
            raise UnrecoverableFailureError(
                f"{len(lost)} vertices lost every copy "
                f"(e.g. vertex {lost[0]}); ft_level "
                f"{engine.job.ft.ft_level} cannot cover nodes "
                f"{sorted(failed_set)}", lost_vertices=len(lost),
                rungs_attempted=("migration",),
                surviving_nodes=tuple(
                    n for n in engine._alive() if n not in failed_set))

    def _promote(self, gid: int, node: int, failed_set: set[int]) -> None:
        """Turn a surviving mirror into the vertex's master."""
        engine = self.engine
        lg = engine.local_graphs[node]
        slot = lg.slot_of(gid)
        meta = slot.meta
        slot.role = Role.MASTER
        slot.mirror_id = -1
        # The promoted copy's dynamic state: value is the synced one;
        # activity starts from the master's self-sustained flag and the
        # replay phase adds back neighbor activations.  The surviving
        # replicas' gather flags reflect the old master's last
        # broadcast, which the mirror's own flag also carried.
        old_gather_flag = slot.active
        lg.set_active(slot, slot.mirror_self_active)
        slot.replicas_known_active = old_gather_flag
        position = lg.position_of(gid)
        # Rewrite the metadata for the new location.
        new_positions = {n: p for n, p in meta.replica_positions.items()
                         if n not in failed_set and n != node}
        old_master = meta.master_node
        meta.replica_positions = new_positions
        meta.mirror_nodes = [n for n in meta.mirror_nodes
                             if n not in failed_set and n != node]
        meta.invalidate_replica_cache()
        meta.master_node = node
        meta.master_position = position
        slot.master_node = node
        if old_master in failed_set:
            pass  # the old master's slot died with its node

    # ------------------------------------------------------------------
    # edge recovery
    # ------------------------------------------------------------------

    def _relink_promoted_edge_cut(self, promotions: list[tuple[int, int]],
                                  failed_set: set[int]) -> int:
        """Rebuild promoted masters' local in-edges from full state.

        Sources without a local copy get new replicas whose state is
        fetched from their masters (counted as recovery traffic).
        """
        engine = self.engine
        linked = 0
        for gid, node in promotions:
            lg = engine.local_graphs[node]
            slot = lg.slot_of(gid)
            if slot.full_edges is None:
                raise UnrecoverableFailureError(
                    f"mirror of vertex {gid} lacks the full edge copy")
            position = lg.position_of(gid)
            slot.in_edges = []
            for src_gid, _old_pos, weight in slot.full_edges:
                if src_gid in lg.index_of:
                    src_pos = lg.index_of[src_gid]
                else:
                    src_pos = self._create_replica(src_gid, node)
                lg.slots[src_pos].out_edges.append(position)
                slot.in_edges.append((src_pos, weight))
                linked += 1
            # The full-state copy now describes the new local layout.
            slot.full_edges = [(lg.slots[p].gid, p, w)
                               for p, w in slot.in_edges]
        return linked

    def _create_replica(self, gid: int, node: int) -> int:
        """Create a replica of ``gid`` on ``node``, fetched from its master.

        Used when migrated edges land on a node with no local copy of
        an endpoint ("some new replicas are necessary to retain local
        access semantics", Section 5.2.1).
        """
        engine = self.engine
        master_node = engine.master_node_of[gid]
        master_lg = engine.local_graphs[master_node]
        master_slot = master_lg.slot_of(gid)
        lg = engine.local_graphs[node]
        position = len(lg.slots)
        rv = common.snapshot_replica_state(master_lg, master_slot, node,
                                           position, edge_cut=False)
        rv.full_edges = None
        rv.role = Role.REPLICA.value
        rv.mirror_id = -1
        rv.replica_positions = None
        rv.mirror_nodes = None
        common.place_recovered_vertex(
            lg, rv, common.last_committed_iteration(engine))
        master_slot.meta.replica_positions[node] = position
        master_slot.meta.invalidate_replica_cache()
        net = engine.cluster.network
        nbytes = rv.nbytes(engine.program.value_nbytes(rv.value))
        net.send(Message(MessageKind.RECOVERY, master_node, node,
                         ("replica-state", gid), nbytes))
        # Keep mirrors' metadata copies fresh.
        for mirror_node in master_slot.meta.mirror_nodes:
            mirror = engine.local_graphs[mirror_node].slot_of(gid)
            if mirror.meta is not None:
                mirror.meta.replica_positions[node] = position
                mirror.meta.invalidate_replica_cache()
        return position

    def _reload_vertex_cut_edges(self, failed: tuple[int, ...],
                                 survivors: list[int],
                                 promoted_by_gid: dict[int, int]
                                 ) -> tuple[float, int]:
        """Each survivor reloads its pre-assigned edge-ckpt files.

        Returns ``(max parallel DFS read time, edges relinked)``.
        """
        engine = self.engine
        assert engine.edge_ckpt is not None
        model = engine.model
        dfs_time = 0.0
        linked = 0
        from repro.ft.edge_ckpt import dedupe_edge_records
        survivor_set = set(survivors)
        # Route every existing file of a crashed owner to a surviving
        # absorber.  Receivers were fixed when the file was written, so
        # after earlier migrations a file's designated receiver may be
        # long dead — the lowest survivor absorbs those (and files whose
        # receiver crashed in this very failure).
        buckets: dict[int, list[EdgeRecord]] = defaultdict(list)
        io_cost: dict[int, tuple[int, int]] = defaultdict(lambda: (0, 0))
        for crashed in failed:
            for receiver in engine.edge_ckpt.receivers(crashed):
                part = engine.edge_ckpt.read_file(crashed, receiver)
                if not part:
                    continue
                absorber = (receiver if receiver in survivor_set
                            else survivors[0])
                buckets[absorber].extend(part)
                nbytes, reads = io_cost[absorber]
                io_cost[absorber] = (
                    nbytes + engine.edge_ckpt.file_nbytes(crashed, receiver),
                    reads + 1)
        # An edge may sit in several files (its receiver changed across
        # recoveries); reconstruct each exactly once, cluster-wide.
        applied: set[tuple[int, int]] = set()
        for absorber in survivors:
            records = [r for r in dedupe_edge_records(buckets[absorber])
                       if (r.src, r.dst) not in applied]
            applied.update((r.src, r.dst) for r in records)
            if records:
                linked += self._apply_edge_records(absorber, records,
                                                   allow_fetch=True)
            nbytes, reads = io_cost[absorber]
            dfs_time = max(dfs_time, storage_read_time(
                model, nbytes, max(1, reads), in_memory=False))
        return dfs_time, linked

    def _apply_edge_records(self, node: int, records: list[EdgeRecord],
                            allow_fetch: bool = True) -> int:
        """Attach reloaded edges to local slots, creating missing copies."""
        engine = self.engine
        lg = engine.local_graphs[node]
        linked = 0
        for record in records:
            if record.dst in lg.index_of:
                dst_pos = lg.index_of[record.dst]
            elif allow_fetch:
                dst_pos = self._create_replica(record.dst, node)
            else:
                raise UnrecoverableFailureError(
                    f"edge target {record.dst} missing on node {node}")
            if record.src in lg.index_of:
                src_pos = lg.index_of[record.src]
            else:
                src_pos = self._create_replica(record.src, node)
            lg.slots[dst_pos].in_edges.append((src_pos, record.weight))
            lg.slots[src_pos].out_edges.append(dst_pos)
            linked += 1
        if records and engine.edge_ckpt is not None:
            # Future failures of this node must also recover the edges
            # it just absorbed: append them to its own edge-ckpt files,
            # overlapped with resumed execution (bytes counted, no
            # normal-execution time charged).
            by_receiver: dict[int, list[EdgeRecord]] = defaultdict(list)
            for record in records:
                receiver = engine._edge_receiver(record.dst, node)
                by_receiver[receiver].append(record)
            for receiver, recs in sorted(by_receiver.items()):
                for record in recs:
                    engine.edge_ckpt.log_edge_update(node, receiver, record)
        return linked
