"""Edge-ckpt files for vertex-cut systems (Section 4.3).

Vertex-cut creates no replicated edges, so Imitator writes each node's
edges to persistent storage once, during graph loading.  The files are
pre-partitioned for Migration: node X's edges are split into one file
per *receiver* node, where an edge's receiver is the node hosting the
master or a mirror of its target vertex — so after X crashes, each
surviving node exclusively reloads one file and every reloaded edge
lands next to a copy of its target.

Algorithms that mutate edge state log updates incrementally, overlapped
with computation (so it costs no normal-execution time in the paper's
model; the bytes are still accounted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.storage import PersistentStore
from repro.errors import FaultToleranceError
from repro.utils.sizing import BYTES_PER_EDGE


@dataclass(frozen=True)
class EdgeRecord:
    """One edge as stored in an edge-ckpt file."""

    src: int
    dst: int
    weight: float


def _path(owner_node: int, receiver_node: int) -> str:
    return f"edge-ckpt/node{owner_node}/file{receiver_node}"


def dedupe_edge_records(records: list[EdgeRecord]) -> list[EdgeRecord]:
    """Collapse update-log duplicates, last record wins per edge.

    Mutating algorithms append updated weights behind the loading-time
    records; recovery must reconstruct each edge once, with its latest
    state, while preserving the original (first-occurrence) order so
    gather folds stay deterministic.
    """
    latest: dict[tuple[int, int], EdgeRecord] = {}
    order: list[tuple[int, int]] = []
    for record in records:
        key = (record.src, record.dst)
        if key not in latest:
            order.append(key)
        latest[key] = record
    return [latest[key] for key in order]


class EdgeCkptStore:
    """Per-node, per-receiver edge files on the persistent store."""

    def __init__(self, store: PersistentStore, num_nodes: int):
        self.store = store
        self.num_nodes = num_nodes
        #: bytes written per owner node at loading, for cost accounting.
        self.loading_bytes: dict[int, int] = {}

    # -- loading-time write ---------------------------------------------

    def write_node_edges(self, owner_node: int,
                         edges_by_receiver: dict[int, list[EdgeRecord]]
                         ) -> int:
        """Write one node's edges, pre-partitioned by receiver.

        Returns the bytes written (the loading-phase cost, which the
        paper hides by overlapping with loading I/O).
        """
        total = 0
        for receiver, records in sorted(edges_by_receiver.items()):
            nbytes = len(records) * BYTES_PER_EDGE
            self.store.write(_path(owner_node, receiver), list(records),
                             nbytes)
            total += nbytes
        self.loading_bytes[owner_node] = total
        return total

    # -- incremental update log -----------------------------------------

    def log_edge_update(self, owner_node: int, receiver: int,
                        record: EdgeRecord) -> None:
        """Append one mutated edge (overlapped with computation)."""
        self.store.append(_path(owner_node, receiver), record,
                          BYTES_PER_EDGE)

    # -- recovery-time read ------------------------------------------------

    def read_file(self, owner_node: int, receiver: int) -> list[EdgeRecord]:
        """One receiver's file of a crashed node's edges (Migration)."""
        path = _path(owner_node, receiver)
        if not self.store.exists(path):
            return []
        payload = self.store.read(path)
        return list(payload)

    def receivers(self, owner_node: int) -> list[int]:
        """Receiver ids with an existing file for this owner, sorted.

        Receivers are fixed at write time; after repeated migrations
        some of them may be long dead, so recovery must enumerate the
        files rather than assume one per currently-alive node.
        """
        ids = []
        prefix = f"edge-ckpt/node{owner_node}/file"
        for path in self.store.listdir(f"edge-ckpt/node{owner_node}"):
            ids.append(int(path[len(prefix):]))
        return sorted(ids)

    def read_all(self, owner_node: int) -> list[EdgeRecord]:
        """Every edge of a crashed node (Rebirth reloads them all)."""
        records: list[EdgeRecord] = []
        found = False
        for path in self.store.listdir(f"edge-ckpt/node{owner_node}"):
            found = True
            records.extend(self.store.read(path))
        if not found and self.loading_bytes.get(owner_node, 0) > 0:
            raise FaultToleranceError(
                f"edge-ckpt files for node {owner_node} disappeared")
        return records

    def file_nbytes(self, owner_node: int, receiver: int) -> int:
        path = _path(owner_node, receiver)
        if not self.store.exists(path):
            return 0
        return self.store.stat(path).nbytes

    # -- pristine rewrite ------------------------------------------------

    def clear_node(self, owner_node: int) -> None:
        """Drop every file of one owner before a from-scratch rewrite.

        Checkpoint-rung recovery rebuilds all local graphs from the
        loading inputs and rewrites the edge-ckpt files; stale receiver
        files and appended update records from recoveries that happened
        after the snapshot must not survive the rewrite, or a later
        Migration would reload edges twice.
        """
        for path in list(self.store.listdir(f"edge-ckpt/node{owner_node}")):
            self.store.delete(path)
        self.loading_bytes.pop(owner_node, None)
