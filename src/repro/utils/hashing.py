"""Deterministic, process-stable hashing.

Python's built-in ``hash`` is salted per process (PYTHONHASHSEED), which
would make partitionings non-reproducible across runs.  The graph systems
the paper builds on (Hama/Cyclops, PowerLyra) use a fixed modular or
multiplicative hash for their "random" (hash-based) partitioning; we use
a 64-bit splitmix finaliser, which is fast, stateless and well mixed.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def stable_hash(value: int, salt: int = 0) -> int:
    """Return a deterministic 64-bit hash of an integer.

    The function is the splitmix64 finalisation step, which passes the
    usual avalanche tests; equal inputs always produce equal outputs
    regardless of interpreter or platform.
    """
    x = (value + 0x9E3779B97F4A7C15 + salt * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def hash_to_node(value: int, num_nodes: int, salt: int = 0) -> int:
    """Map an integer id onto a node index in ``[0, num_nodes)``."""
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    return stable_hash(value, salt) % num_nodes
