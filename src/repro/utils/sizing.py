"""Byte-size accounting for messages, vertices and edges.

The simulated cluster never serialises real byte buffers for ordinary
sync messages (that would only burn CPU); instead each message type
reports its wire size from these constants, mirroring the compact binary
encodings used by Cyclops/PowerLyra (8-byte vertex ids, 8-byte doubles,
adjacency as id arrays).  The persistent store *does* keep real payload
objects so recovery code paths are genuinely exercised.
"""

from __future__ import annotations

#: Bytes for one vertex identifier on the wire (int64).
BYTES_PER_VID = 8

#: Bytes for one scalar vertex value (double).  Vector-valued algorithms
#: (e.g. ALS latent factors) multiply this by their dimension via
#: :func:`sizeof_value`.
BYTES_PER_VALUE = 8

#: Bytes for one edge record: (source vid, target vid, weight).
BYTES_PER_EDGE = 2 * BYTES_PER_VID + 8

#: Fixed per-message framing overhead (type tag, lengths, checksum).
BYTES_PER_MSG_HEADER = 16


def sizeof_value(value: object) -> int:
    """Wire size in bytes of one vertex value.

    Scalars count as one 8-byte slot; tuples/lists (e.g. ALS latent
    vectors, community label pairs) count one slot per element.
    """
    if isinstance(value, (tuple, list)):
        return max(1, len(value)) * BYTES_PER_VALUE
    return BYTES_PER_VALUE
