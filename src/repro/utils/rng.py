"""Seeded random-number streams.

Every stochastic component (graph generators, random candidate selection
for FT-replica placement, failure schedules) draws from its own
:class:`SeededRng` derived from a root seed plus a purpose label, so
adding randomness to one component never perturbs another — a property
the recovery-equivalence tests rely on.
"""

from __future__ import annotations

import random

from repro.utils.hashing import stable_hash


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from a root seed and a sequence of labels."""
    seed = stable_hash(root_seed)
    for label in labels:
        if isinstance(label, int):
            seed = stable_hash(seed ^ stable_hash(label, salt=7))
        else:
            text = str(label)
            acc = len(text)
            for ch in text:
                acc = stable_hash(acc ^ ord(ch), salt=13)
            seed = stable_hash(seed ^ acc)
    return seed


class SeededRng:
    """A thin, purpose-labelled wrapper around :class:`random.Random`."""

    def __init__(self, root_seed: int, *labels: object):
        self.seed = derive_seed(root_seed, *labels)
        self._rng = random.Random(self.seed)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq):
        return self._rng.choice(seq)

    def sample(self, seq, k: int):
        return self._rng.sample(seq, k)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def paretovariate(self, alpha: float) -> float:
        return self._rng.paretovariate(alpha)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def expovariate(self, lam: float) -> float:
        return self._rng.expovariate(lam)

    def child(self, *labels: object) -> "SeededRng":
        """Derive an independent child stream."""
        return SeededRng(self.seed, *labels)
