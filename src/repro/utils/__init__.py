"""Small shared utilities: stable hashing, seeded RNG streams, sizing."""

from repro.utils.hashing import stable_hash, hash_to_node
from repro.utils.rng import SeededRng, derive_seed
from repro.utils.sizing import (
    BYTES_PER_EDGE,
    BYTES_PER_MSG_HEADER,
    BYTES_PER_VALUE,
    BYTES_PER_VID,
    sizeof_value,
)

__all__ = [
    "stable_hash",
    "hash_to_node",
    "SeededRng",
    "derive_seed",
    "BYTES_PER_EDGE",
    "BYTES_PER_MSG_HEADER",
    "BYTES_PER_VALUE",
    "BYTES_PER_VID",
    "sizeof_value",
]
