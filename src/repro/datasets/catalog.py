"""Catalog of scaled stand-ins for the paper's datasets.

The paper evaluates on real graphs we cannot ship (and whose full scale
a single laptop-hosted simulation should not attempt).  Each entry here
is a deterministic synthetic graph whose *structure* matches the
original's relevant properties — power-law degree profile, reciprocity
(and hence selfish-vertex fraction, Fig. 3), bipartiteness, planarity —
with |V| and |E| scaled down by the recorded factor.  Benchmarks report
shape (orderings, ratios), so structural fidelity is what matters.

Paper references: Table 1 (Cyclops workloads) and Table 4 (PowerLyra
graphs, including the alpha-series synthetic power-law graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph import generators
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """One catalog entry: how to build a stand-in and what it mimics."""

    name: str
    #: |V| and |E| of the original dataset, for the record.
    paper_vertices: int
    paper_edges: int
    #: Approximate linear downscale factor applied to |V|.
    scale: int
    builder: Callable[[], Graph]
    description: str = ""

    def load(self) -> Graph:
        graph = self.builder()
        return graph


def _gweb() -> Graph:
    # Google web graph: power-law, large dead-end page population ->
    # the biggest selfish-vertex fraction in Fig. 3a (>10%).
    return generators.power_law(
        4_400, alpha=2.0, seed=36, avg_degree=5.9, selfish_frac=0.14,
        name="gweb")


def _ljournal() -> Graph:
    # LiveJournal: social follower graph, partially reciprocated, also
    # >10% replica-less vertices in Fig. 3a.
    return generators.social_network(
        12_000, avg_degree=9.0, seed=29, reciprocity=0.45, alpha=2.1,
        selfish_frac=0.115, name="ljournal")


def _wiki() -> Graph:
    # Wikipedia page links: dense power-law, almost every page links
    # somewhere (<1% selfish).
    return generators.power_law(
        14_300, alpha=1.9, seed=32, avg_degree=18.0, selfish_frac=0.004,
        name="wiki")


def _syn_gl() -> Graph:
    # SYN-GL: the GraphLab synthetic bipartite rating graph used for
    # ALS; both directions exist, so no selfish vertices at all.
    return generators.bipartite(
        4_400, 1_100, edges_per_user=15, seed=11, name="syn-gl")


def _dblp() -> Graph:
    # DBLP co-authorship: undirected (symmetrised), community-heavy.
    return generators.community_graph(
        80, 100, p_in=0.06, p_out_edges=4, seed=26, name="dblp")


def _roadca() -> Graph:
    # California road network: planar lattice, bidirectional, weighted
    # with the paper's log-normal(0.4, 1.2) weights for SSSP.
    return generators.road_network(157, 157, seed=36, name="roadca")


def _uk2005() -> Graph:
    # UK-2005 web crawl: very high average degree, strong power law.
    return generators.power_law(
        10_000, alpha=1.85, seed=44, avg_degree=23.0, selfish_frac=0.01,
        name="uk-2005")


def _twitter() -> Graph:
    # Twitter follower graph: the heavy-tailed "natural graph"
    # centrepiece of the PowerLyra evaluation.
    return generators.power_law(
        8_000, alpha=1.8, seed=45, avg_degree=35.0, selfish_frac=0.01,
        name="twitter")


def _alpha(alpha: float, avg_degree: float):
    def build() -> Graph:
        return generators.power_law(
            5_000, alpha=alpha, seed=int(alpha * 100), avg_degree=avg_degree,
            selfish_frac=0.01, name=f"alpha-{alpha:g}")
    return build


#: name -> spec for every dataset referenced by a table or figure.
CATALOG: dict[str, DatasetSpec] = {
    "gweb": DatasetSpec(
        "gweb", 870_000, 5_110_000, 200, _gweb,
        "Google web graph [36] stand-in"),
    "ljournal": DatasetSpec(
        "ljournal", 4_850_000, 70_000_000, 400, _ljournal,
        "LiveJournal social graph [29] stand-in"),
    "wiki": DatasetSpec(
        "wiki", 5_720_000, 130_100_000, 400, _wiki,
        "Wikipedia link graph [32] stand-in"),
    "syn-gl": DatasetSpec(
        "syn-gl", 110_000, 2_700_000, 20, _syn_gl,
        "GraphLab synthetic bipartite rating graph [11] stand-in"),
    "dblp": DatasetSpec(
        "dblp", 320_000, 1_050_000, 40, _dblp,
        "DBLP co-authorship graph [26] stand-in"),
    "roadca": DatasetSpec(
        "roadca", 1_970_000, 5_530_000, 80, _roadca,
        "California road network [36] stand-in, log-normal weights"),
    "uk-2005": DatasetSpec(
        "uk-2005", 40_000_000, 936_000_000, 4000, _uk2005,
        "UK-2005 web crawl [44] stand-in"),
    "twitter": DatasetSpec(
        "twitter", 42_000_000, 1_470_000_000, 5000, _twitter,
        "Twitter follower graph [45] stand-in"),
    "alpha-2.2": DatasetSpec(
        "alpha-2.2", 10_000_000, 39_000_000, 2000, _alpha(2.2, 3.9),
        "synthetic power-law, alpha=2.2 (Table 4)"),
    "alpha-2.1": DatasetSpec(
        "alpha-2.1", 10_000_000, 54_000_000, 2000, _alpha(2.1, 5.4),
        "synthetic power-law, alpha=2.1 (Table 4)"),
    "alpha-2.0": DatasetSpec(
        "alpha-2.0", 10_000_000, 105_000_000, 2000, _alpha(2.0, 10.5),
        "synthetic power-law, alpha=2.0 (Table 4)"),
    "alpha-1.9": DatasetSpec(
        "alpha-1.9", 10_000_000, 249_000_000, 2000, _alpha(1.9, 24.9),
        "synthetic power-law, alpha=1.9 (Table 4)"),
    "alpha-1.8": DatasetSpec(
        "alpha-1.8", 10_000_000, 673_000_000, 2000, _alpha(1.8, 67.3),
        "synthetic power-law, alpha=1.8 (Table 4)"),
}

#: The (algorithm, dataset) pairs of Table 1 driving Figs. 2/3/7/8 and
#: Table 2.
CYCLOPS_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("pagerank", "gweb"),
    ("pagerank", "ljournal"),
    ("pagerank", "wiki"),
    ("als", "syn-gl"),
    ("cd", "dblp"),
    ("sssp", "roadca"),
)

#: The real-graph column of Table 4 / Fig. 13 / Table 5.
POWERLYRA_GRAPHS: tuple[str, ...] = (
    "gweb", "ljournal", "wiki", "uk-2005", "twitter")

#: The synthetic alpha column of Table 4 / Fig. 13 / Table 5.
ALPHA_GRAPHS: tuple[str, ...] = (
    "alpha-2.2", "alpha-2.1", "alpha-2.0", "alpha-1.9", "alpha-1.8")


_CACHE: dict[str, Graph] = {}


def load(name: str) -> Graph:
    """Build (or fetch from cache) a catalog dataset by name."""
    if name not in CATALOG:
        raise KeyError(f"unknown dataset {name!r}; "
                       f"choices: {sorted(CATALOG)}")
    if name not in _CACHE:
        _CACHE[name] = CATALOG[name].load()
    return _CACHE[name]
