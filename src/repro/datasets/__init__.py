"""Scaled synthetic stand-ins for the paper's evaluation datasets."""

from repro.datasets.catalog import (
    ALPHA_GRAPHS,
    CATALOG,
    CYCLOPS_WORKLOADS,
    POWERLYRA_GRAPHS,
    DatasetSpec,
    load,
)

__all__ = [
    "DatasetSpec",
    "CATALOG",
    "CYCLOPS_WORKLOADS",
    "POWERLYRA_GRAPHS",
    "ALPHA_GRAPHS",
    "load",
]
