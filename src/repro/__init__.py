"""repro — a faithful reproduction of *Imitator*: replication-based
fault tolerance for large-scale graph processing (DSN'14 / TPDS'18).

The package contains the full system stack the paper builds on:

* :mod:`repro.cluster` — a deterministic simulated cluster (nodes,
  network, ZooKeeper-like coordination, heartbeat detector, HDFS-like
  persistent store);
* :mod:`repro.graph` / :mod:`repro.datasets` — graph substrate and
  scaled stand-ins for the paper's datasets;
* :mod:`repro.partition` — edge-cut (hash, Fennel) and vertex-cut
  (random, grid, PowerLyra hybrid) partitioning;
* :mod:`repro.engine` — the synchronous graph-parallel engine in both
  Cyclops (edge-cut) and PowerLyra (vertex-cut) modes;
* :mod:`repro.ft` — the paper's contribution: FT replicas, mirrors,
  the selfish-vertex optimisation, Rebirth and Migration recovery, the
  Imitator-CKPT checkpoint baseline, and Young's-model analysis;
* :mod:`repro.algorithms` — PageRank, SSSP, ALS, community detection
  and friends;
* :mod:`repro.api` — the one-call job façade.

Quickstart::

    from repro import run_job
    from repro.datasets import load

    result = run_job(load("gweb"), "pagerank", num_nodes=50,
                     max_iterations=10, failures=[(5, [3])])
    print(result.recoveries[0].total_s)
"""

from repro.api import make_engine, make_program, run_job
from repro.config import (
    ClusterConfig,
    EngineConfig,
    FaultToleranceConfig,
    FTMode,
    JobConfig,
    PartitionStrategy,
    RecoveryStrategy,
)
from repro.engine.engine import Engine, IterationStats, RunResult
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "run_job",
    "make_engine",
    "make_program",
    "Engine",
    "RunResult",
    "IterationStats",
    "JobConfig",
    "ClusterConfig",
    "EngineConfig",
    "FaultToleranceConfig",
    "FTMode",
    "PartitionStrategy",
    "RecoveryStrategy",
    "ReproError",
    "__version__",
]
