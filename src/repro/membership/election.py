"""Deterministic leader election for recovery coordination.

The paper's recovery protocols are decentralised — every surviving
mirror knows what to recover from its own metadata (Section 5) — but a
cluster still needs one node to *coordinate* each recovery round:
declare the term, order the restart (leader first), and publish the
outcome.  A full consensus protocol would be overkill for a simulation
whose failure detector is already authoritative, so election here is a
seeded deterministic choice among the sorted live nodes: every node
(and every backend) computes the same leader for the same term without
exchanging votes, which keeps the differential oracle exact
(DESIGN.md §14).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ClusterError
from repro.utils.rng import SeededRng


def elect_leader(alive: Iterable[int], seed: int, term: int) -> int:
    """Elect the recovery leader for one term.

    Deterministic: the same ``(alive, seed, term)`` always yields the
    same node, on every backend.  The seeded draw (rather than
    ``min(alive)``) spreads coordination load across the cluster over
    terms while staying reproducible.
    """
    members = sorted(set(int(n) for n in alive))
    if not members:
        raise ClusterError("cannot elect a leader from an empty cluster")
    rng = SeededRng(seed, "leader-election", term)
    return rng.choice(members)
