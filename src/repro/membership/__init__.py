"""Elastic membership and the adaptive FT control plane (DESIGN.md §14).

This package holds the pieces the engine composes into elastic
clusters:

* :func:`elect_leader` — deterministic seeded leader election among the
  live nodes, used to coordinate recovery (term numbers, leader-first
  restart);
* :class:`FtPolicy` — the adaptive replication floor: consumes
  :class:`repro.cluster.heartbeat.FailureDetector` statistics and
  raises/lowers the effective K inside ``[ft_level_min, ft_level_max]``,
  driving a throttled background repair with exponential backoff and a
  circuit breaker;
* :func:`move_master` / :func:`prune_node_copies` — incremental master
  movement between nodes (the state-transfer primitive of joins and
  drains);
* :class:`MembershipManager` — the per-barrier pump that admits and
  retires nodes at commit barriers, throttling transfer so a membership
  change never stalls more than a configured fraction of a superstep.
"""

from repro.membership.election import elect_leader
from repro.membership.manager import MembershipManager, MembershipOp
from repro.membership.policy import FtPolicy, FtPolicyConfig
from repro.membership.rebalance import move_master, prune_node_copies

__all__ = [
    "FtPolicy",
    "FtPolicyConfig",
    "MembershipManager",
    "MembershipOp",
    "elect_leader",
    "move_master",
    "prune_node_copies",
]
