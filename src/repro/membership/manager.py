"""Elastic membership: joins and drains pumped at commit barriers.

The :class:`MembershipManager` owns the lifecycle of every membership
change (DESIGN.md §14):

* a **join** admits a fresh node, plans an incremental Fennel
  rebalance pulling a balanced share of masters onto it, and marks the
  node read-eligible once the transfer completes;
* a **drain** plans the reverse — every master moves off — then prunes
  the node's remaining replica copies, re-homes the lost mirrors and
  retires the node.

State transfer is *throttled*: each commit barrier moves at most
``max_move_fraction`` of one node's share of the masters, so a
membership change never stalls the job for more than that fraction of
a superstep — it just stretches over more barriers.  All movement runs
at commit boundaries where every copy holds the committed value, which
keeps the whole mechanism value-neutral (the differential oracle
compares elastic runs bit-for-bit against static ones).

A crashed join/drain target aborts the operation — the failure
detector and the recovery ladder own crashed nodes; membership only
ever handles planned change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import FTMode
from repro.costmodel import pairwise_comm_time
from repro.engine.local_graph import LocalGraph
from repro.errors import ConfigError
from repro.ft import _recovery_common as common
from repro.membership.rebalance import move_master, prune_node_copies
from repro.partition.fennel import fennel_rebalance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine


@dataclass
class MembershipOp:
    """One in-flight membership change."""

    kind: str  # "join" | "drain"
    node: int
    #: Masters still to move: (gid, destination node).
    pending: list[tuple[int, int]] = field(default_factory=list)
    requested_iteration: int = -1
    #: Filled when the op completes.
    completed_iteration: int = -1
    moves_done: int = 0

    def describe(self) -> str:
        return (f"{self.kind}(node={self.node}, "
                f"pending={len(self.pending)})")


class MembershipManager:
    """Per-engine queue and pump for elastic membership operations."""

    def __init__(self, engine: "Engine", max_move_fraction: float = 0.25):
        if not 0.0 < max_move_fraction <= 1.0:
            raise ConfigError(
                f"max_move_fraction must be in (0, 1], got "
                f"{max_move_fraction}")
        check_supported(engine)
        self.engine = engine
        self.max_move_fraction = max_move_fraction
        self._queue: list[MembershipOp] = []
        self.completed: list[MembershipOp] = []
        # Lifetime accounting (the elastic benchmark reads these).
        self.moves_total = 0
        self.bytes_total = 0
        self.transfer_sim_s = 0.0

    @property
    def active(self) -> bool:
        return bool(self._queue)

    # -- requests --------------------------------------------------------

    def request_join(self, count: int = 1) -> list[int]:
        """Admit ``count`` fresh nodes; state transfer is pumped over
        the following commit barriers.  Returns the new node ids."""
        engine = self.engine
        joined: list[int] = []
        for _ in range(max(1, count)):
            nid = engine.cluster.join_node()
            lg = LocalGraph(nid)
            engine.local_graphs[nid] = lg
            engine.cluster.node(nid).local = lg
            joined.append(nid)
            _, moves = self._plan()
            self._queue.append(MembershipOp(
                kind="join", node=nid, pending=moves,
                requested_iteration=engine.iteration))
            engine.metrics.inc("membership.joins_requested")
            engine.tracer.instant("membership.join", cat="membership",
                                  node=nid, planned_moves=len(moves))
        return joined

    def request_drain(self, node: int) -> None:
        """Begin draining ``node``: its masters move off over the next
        barriers, then its replicas are re-homed and it retires."""
        engine = self.engine
        if node not in engine.local_graphs:
            raise ConfigError(f"node {node} hosts no local graph")
        for op in self._queue:
            if op.node == node:
                raise ConfigError(
                    f"node {node} already has a pending membership op")
        engine.cluster.begin_drain(node)
        _, moves = self._plan()
        self._queue.append(MembershipOp(
            kind="drain", node=node, pending=moves,
            requested_iteration=engine.iteration))
        engine.metrics.inc("membership.drains_requested")
        engine.tracer.instant("membership.drain", cat="membership",
                              node=node, planned_moves=len(moves))

    # -- planning --------------------------------------------------------

    def _eligible_nodes(self) -> list[int]:
        engine = self.engine
        return [n for n in engine._alive()
                if engine.cluster.placement_eligible(n)
                and n in engine.local_graphs]

    def _plan(self) -> tuple[list[int], list[tuple[int, int]]]:
        """Incremental Fennel restream over the current eligible set.

        Seeded off the membership epoch so each plan is deterministic
        yet distinct, on every backend.
        """
        engine = self.engine
        seed = engine.seed + 7919 * engine.cluster.membership_epoch
        return fennel_rebalance(engine.graph, engine.master_node_of,
                                self._eligible_nodes(), seed=seed)

    def _move_budget(self) -> int:
        """Masters movable this barrier: a fraction of one node's share."""
        engine = self.engine
        workers = max(1, len(self._eligible_nodes()))
        share = engine.graph.num_vertices / workers
        return max(1, int(self.max_move_fraction * share))

    # -- the per-barrier pump -------------------------------------------

    def pump(self) -> None:
        """Advance in-flight membership ops at a commit barrier."""
        engine = self.engine
        self._drop_dead_targets()
        if not self._queue:
            return
        if engine._vec is not None:
            # Write deferred column commits back and drop the caches:
            # moves mutate slots and topology underneath them.
            engine._vec.rollback()
        net = engine.cluster.network
        net.begin_step()
        pre_clock = engine.cluster.clocks.global_max()
        budget = self._move_budget()
        moved: list[int] = []
        bytes_sent = 0
        finalized = 0
        while self._queue and budget > 0:
            op = self._queue[0]
            while op.pending and budget > 0:
                gid, dst = op.pending.pop(0)
                cur = engine.master_node_of[gid]
                if cur == dst:
                    continue
                if op.kind == "drain" and cur != op.node:
                    # Recovery already moved it off the draining node.
                    continue
                if not engine.cluster.placement_eligible(dst) \
                        or dst not in engine.local_graphs:
                    dst = self._fallback_target(cur)
                    if dst is None or dst == cur:
                        continue
                bytes_sent += move_master(engine, gid, dst)
                op.moves_done += 1
                moved.append(gid)
                budget -= 1
            if op.pending:
                break  # budget exhausted mid-op
            if not self._finalize(op):
                continue  # drain found leftovers; op replanned
            finalized += 1
            self._queue.pop(0)
        if moved:
            # Moved masters may have lost a mirror seat along the way
            # (and new replicas want registering): top back up to the
            # effective floor right away.
            _, rbytes = common.restore_ft_level(
                engine, sorted(set(moved)), "membership-move")
            bytes_sent += rbytes
        if moved or finalized:
            self._charge(net, len(moved))
            for lg in engine.local_graphs.values():
                lg.invalidate_soa()
            post = engine.cluster.clocks.global_max()
            self.transfer_sim_s += post - pre_clock
            engine._last_barrier_clock = post
        self.moves_total += len(moved)
        self.bytes_total += bytes_sent
        engine.metrics.inc("membership.moves", len(moved))
        engine.metrics.inc("membership.bytes", bytes_sent)
        engine.metrics.set_gauge("membership.epoch",
                                 engine.cluster.membership_epoch)
        engine.metrics.set_gauge("membership.pending_ops",
                                 len(self._queue))

    def _drop_dead_targets(self) -> None:
        engine = self.engine
        keep: list[MembershipOp] = []
        for op in self._queue:
            if engine.cluster.node(op.node).is_alive:
                keep.append(op)
                continue
            engine.cluster.abort_transition(op.node)
            engine.metrics.inc("membership.aborted")
            engine.tracer.instant("membership.aborted", cat="membership",
                                  node=op.node, kind=op.kind)
        self._queue = keep

    def _fallback_target(self, exclude: int) -> int | None:
        """Least-loaded eligible node when a planned target went away."""
        pool = [n for n in self._eligible_nodes() if n != exclude]
        if not pool:
            return None
        return min(pool, key=lambda n: (
            len(self.engine.local_graphs[n].slots), n))

    def _finalize(self, op: MembershipOp) -> bool:
        """Complete an op whose planned moves all ran.

        Returns False when a drain discovered leftover masters (a
        recovery promoted a mirror onto the draining node mid-drain);
        the op is replanned and stays queued.
        """
        engine = self.engine
        if op.kind == "drain":
            lg = engine.local_graphs[op.node]
            leftovers = sorted(s.gid for s in lg.iter_masters())
            if leftovers:
                for gid in leftovers:
                    dst = self._fallback_target(op.node)
                    if dst is None:
                        raise ConfigError(
                            f"no eligible node left to absorb node "
                            f"{op.node}'s masters")
                    op.pending.append((gid, dst))
                return False
            affected = prune_node_copies(engine, op.node)
            if affected:
                common.restore_ft_level(engine, affected, "drain-rehome")
            del engine.local_graphs[op.node]
            engine.cluster.retire_node(op.node)
            engine.metrics.inc("membership.drains_completed")
        else:
            engine.cluster.finish_join(op.node)
            engine.metrics.inc("membership.joins_completed")
        op.completed_iteration = engine.iteration
        self.completed.append(op)
        engine.tracer.instant("membership.completed", cat="membership",
                              node=op.node, kind=op.kind,
                              moves=op.moves_done)
        return True

    def _charge(self, net, moved: int) -> None:
        """Charge transfer time: comm + reconstruction + one round."""
        engine = self.engine
        model = engine.model
        alive = engine._alive()
        for node in alive:
            net.deliver(node)
        scale = model.data_scale
        reconstruct = (moved * model.per_vertex_reconstruct_s * scale
                       / max(1, len(alive)))
        for node in alive:
            engine.cluster.clocks.advance(node, pairwise_comm_time(
                model, net.step_bytes, net.step_msgs, node))
            engine.cluster.clocks.advance(
                node, reconstruct + model.recovery_round_s)
        engine.cluster.clocks.barrier(model, alive)


def check_supported(engine: "Engine") -> None:
    """Validate that the job shape supports elastic membership."""
    job = engine.job
    if not engine.is_edge_cut:
        raise ConfigError(
            "elastic membership requires an edge-cut partitioning "
            "(vertex-cut partial gathers cannot follow a moving master)")
    if job.ft.mode is not FTMode.REPLICATION:
        raise ConfigError(
            "elastic membership requires REPLICATION fault tolerance "
            "(moves piggyback on the replica machinery)")
    if job.ft.safety_checkpoint_interval:
        raise ConfigError(
            "elastic membership is incompatible with safety "
            "checkpoints: snapshot recovery rebuilds the loading-time "
            "layout and would resurrect retired nodes")
