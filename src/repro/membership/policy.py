"""Adaptive replication floor (DESIGN.md §14).

A static K is either wasteful (quiet clusters carry K+1 copies of
everything forever) or fragile (bursty failure periods exhaust the
budget).  :class:`FtPolicy` adapts the *effective* replication floor
inside the configured ``[ft_level_min, ft_level_max]`` band from the
failure statistics the heartbeat detector already collects:

* every confirmed failure raises the target floor (more protection
  while the cluster is visibly unhealthy);
* a flap raises it at most one step above the baseline (instability is
  a warning, not a loss);
* after ``cooldown`` quiet iterations the target relaxes one step at a
  time back toward ``ft_level_min``.

Raising the target does not conjure replicas: the engine runs a
*throttled background repair* each commit barrier, restoring at most
``repair_batch`` vertices per barrier.  Repair rounds that make no
progress back off exponentially, and after ``breaker_threshold``
futile rounds a circuit breaker opens — repair pauses for
``breaker_quiet`` barriers, then probes with a small batch before
resuming (a cluster too small to host the target floor would otherwise
re-scan its deficit forever).

Two floors are published:

* ``floor_target`` — what the policy wants (rises immediately on
  events, relaxes after quiet);
* ``floor_enforced = min(target, achieved)`` — what invariants and
  gauges hold the cluster to; it rises only as repair actually
  completes and drops immediately when the target drops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import FaultToleranceConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class FtPolicyConfig:
    """Tuning of the adaptive-floor control loop."""

    #: Quiet iterations (no failure, no flap) before the target floor
    #: relaxes one step.
    cooldown: int = 6
    #: Maximum deficit vertices repaired per commit barrier.
    repair_batch: int = 64
    #: Barriers skipped after the first repair round without full
    #: progress; doubles per consecutive such round.
    backoff_initial: int = 1
    backoff_max: int = 8
    #: Consecutive repair rounds with *zero* progress before the
    #: circuit breaker opens.
    breaker_threshold: int = 3
    #: Barriers the breaker stays open before a half-open probe.
    breaker_quiet: int = 4

    def __post_init__(self) -> None:
        if self.cooldown < 1:
            raise ConfigError("cooldown must be >= 1")
        if self.repair_batch < 1:
            raise ConfigError("repair_batch must be >= 1")
        if self.backoff_initial < 1 or self.backoff_max < self.backoff_initial:
            raise ConfigError(
                "need 1 <= backoff_initial <= backoff_max")
        if self.breaker_threshold < 1 or self.breaker_quiet < 1:
            raise ConfigError(
                "breaker_threshold and breaker_quiet must be >= 1")


class FtPolicy:
    """Adaptive replication-floor controller for one job."""

    def __init__(self, ft: FaultToleranceConfig,
                 config: FtPolicyConfig | None = None):
        self.floor_min = ft.floor_min
        self.floor_max = ft.floor_max
        #: The configured baseline K (quiet-state resting point is
        #: ``floor_min``, but flaps never push above ``base + 1``).
        self.base = ft.ft_level
        self.config = config or FtPolicyConfig()
        #: What the policy wants right now.
        self.floor_target = ft.ft_level
        #: Minimum replication level actually achieved across masters,
        #: capped at the target; updated by the engine's repair pump.
        self.floor_achieved = ft.ft_level
        self.breaker_open = False
        self._last_event_iter: int | None = None
        self._backoff = 0
        self._backoff_next = self.config.backoff_initial
        self._futile = 0
        self._open_elapsed = 0
        #: Event log for observability: (iteration, kind, new_target).
        self.events: list[tuple[int, str, int]] = []

    # -- floors ---------------------------------------------------------

    @property
    def floor_enforced(self) -> int:
        """The floor invariants hold the cluster to right now."""
        return min(self.floor_target, self.floor_achieved)

    # -- detector events ------------------------------------------------

    def on_failure(self, iteration: int, count: int = 1) -> None:
        """A confirmed failure burst: raise the target immediately."""
        self._last_event_iter = iteration
        self.floor_target = min(self.floor_max, self.floor_target + count)
        self.events.append((iteration, "failure", self.floor_target))

    def on_flap(self, iteration: int) -> None:
        """A flap: instability without loss — at most one step above
        the baseline, and never lowers an already-raised target."""
        self._last_event_iter = iteration
        self.floor_target = min(self.floor_max,
                                max(self.floor_target, self.base + 1))
        self.events.append((iteration, "flap", self.floor_target))

    def on_barrier(self, iteration: int) -> None:
        """Per-commit-barrier tick: relax the target after quiet."""
        if self._last_event_iter is None:
            return
        if (iteration - self._last_event_iter >= self.config.cooldown
                and self.floor_target > self.floor_min):
            self.floor_target -= 1
            # Restart the quiet clock so each relaxation step takes a
            # full cooldown window.
            self._last_event_iter = iteration
            self.events.append((iteration, "relax", self.floor_target))

    # -- repair throttling ----------------------------------------------

    def repair_allowance(self) -> int:
        """Deficit vertices the engine may repair at this barrier.

        Zero while backing off or while the breaker is open (the
        breaker half-opens with a quarter batch after its quiet
        window).
        """
        if self.breaker_open:
            self._open_elapsed += 1
            if self._open_elapsed >= self.config.breaker_quiet:
                self._open_elapsed = 0
                return max(1, self.config.repair_batch // 4)
            return 0
        if self._backoff > 0:
            self._backoff -= 1
            return 0
        return self.config.repair_batch

    def repair_result(self, requested: int, repaired: int) -> None:
        """Feed one repair round's outcome back into the throttle."""
        if requested <= 0:
            return
        if repaired >= requested:
            # Full progress: reset the backoff ladder, close the breaker.
            self._futile = 0
            self._backoff = 0
            self._backoff_next = self.config.backoff_initial
            self.breaker_open = False
            self._open_elapsed = 0
            return
        self._backoff = self._backoff_next
        self._backoff_next = min(self.config.backoff_max,
                                 self._backoff_next * 2)
        if repaired > 0:
            self._futile = 0
            return
        self._futile += 1
        if self._futile >= self.config.breaker_threshold:
            self.breaker_open = True
            self._open_elapsed = 0
