"""Incremental master movement between live nodes (DESIGN.md §14).

:func:`move_master` is the state-transfer primitive behind elastic
joins and drains: it transplants one vertex's master copy from its
current node to a destination *while the job keeps running*, preserving
every invariant the recovery protocols rely on:

* the destination master's in-edge list is rebuilt in the **exact
  order** of the outgoing master's list, so float gather folds stay
  bit-identical to the never-moved run;
* missing source copies are created on the destination the same way
  Migration does ("some new replicas are necessary to retain local
  access semantics", Section 5.2.1);
* the outgoing master is demoted *in place* — to the mirror seat the
  destination vacated when the destination was a mirror, to a plain
  replica otherwise — so the copy count never dips during the move;
* every surviving mirror's full-state edge backup is re-encoded to
  destination positions and its metadata copy refreshed, keeping a
  later failure of the *new* master recoverable.

Moves only run at commit barriers (every copy holds the committed
value, nothing is in flight), which is what makes the in-place demotion
and promotion value-neutral.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.network import Message, MessageKind
from repro.engine.state import MasterMeta, Role, VertexSlot
from repro.errors import EngineError
from repro.ft import _recovery_common as common
from repro.utils.sizing import BYTES_PER_EDGE, BYTES_PER_VID

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine


def move_master(engine: "Engine", gid: int, dst: int) -> int:
    """Move one vertex's master copy to node ``dst``.

    Must run at a commit-barrier boundary; edge-cut only.  Returns the
    number of bytes shipped (state, edge backups, control traffic),
    already accounted on the network.
    """
    src = engine.master_node_of[gid]
    if src == dst:
        return 0
    if not engine.is_edge_cut:
        raise EngineError(
            "membership rebalancing requires an edge-cut partitioning")
    src_lg = engine.local_graphs[src]
    dst_lg = engine.local_graphs[dst]
    src_slot = src_lg.slot_of(gid)
    if not src_slot.is_master:
        raise EngineError(
            f"vertex {gid}: node {src} does not hold the master")
    meta = src_slot.meta
    program = engine.program
    net = engine.cluster.network
    bytes_sent = 0
    broadcast_flag = src_slot.replicas_known_active
    dst_was_mirror = dst in meta.mirror_set

    # -- materialise the master copy on dst -----------------------------
    if gid in dst_lg.index_of:
        dst_slot = dst_lg.slot_of(gid)
        dst_pos = dst_lg.position_of(gid)
    else:
        dst_pos = len(dst_lg.slots)
        dst_slot = VertexSlot(gid=gid, role=Role.REPLICA,
                              value=src_slot.value,
                              out_degree=src_slot.out_degree,
                              in_degree=src_slot.in_degree,
                              master_node=src,
                              selfish=src_slot.selfish)
        dst_lg.add_slot(dst_slot, position=dst_pos)
    dst_slot.clear_pending()
    dst_slot.role = Role.MASTER
    dst_slot.mirror_id = -1
    dst_slot.ft_only = False
    dst_slot.selfish = src_slot.selfish
    dst_slot.value = src_slot.value
    dst_slot.last_activates = src_slot.last_activates
    dst_slot.last_update_iter = src_slot.last_update_iter
    dst_slot.replicas_known_active = broadcast_flag
    dst_slot.mirror_self_active = src_slot.mirror_self_active
    dst_slot.master_node = dst
    dst_lg.set_active(dst_slot, src_slot.active)

    # -- rebuild the complete in-edge list on dst, in source order ------
    new_in: list[tuple[int, float]] = []
    for src_pos, weight in src_slot.in_edges:
        source_gid = src_lg.slots[src_pos].gid
        if source_gid in dst_lg.index_of:
            p = dst_lg.index_of[source_gid]
        else:
            p, nbytes = _create_source_replica(engine, source_gid, dst)
            bytes_sent += nbytes
        dst_lg.slots[p].out_edges.append(dst_pos)
        new_in.append((p, weight))
    dst_slot.in_edges = new_in
    dst_slot.full_edges = [(dst_lg.slots[p].gid, p, w) for p, w in new_in]

    # -- rewrite the replica/mirror metadata ----------------------------
    new_positions = {n: p for n, p in meta.replica_positions.items()
                     if n != dst}
    new_positions[src] = src_lg.position_of(gid)
    new_mirrors = list(meta.mirror_nodes)
    if dst_was_mirror:
        # The outgoing master inherits the destination's mirror seat
        # (same index, so the recovery-leader ordering is preserved and
        # the mirror count never changes).
        new_mirrors[new_mirrors.index(dst)] = src
    dst_slot.meta = MasterMeta(replica_positions=new_positions,
                               mirror_nodes=new_mirrors,
                               master_node=dst, master_position=dst_pos)

    # -- demote the outgoing master in place ----------------------------
    src_slot.clear_pending()
    src_slot.role = Role.MIRROR if src in new_mirrors else Role.REPLICA
    src_slot.meta = None
    src_slot.mirror_id = -1
    src_slot.master_node = dst
    # A demoted copy holds the flag the master last broadcast, exactly
    # like every other replica.
    src_lg.set_active(src_slot, broadcast_flag)
    src_slot.full_edges = None

    # -- refresh every copy's view of the new location ------------------
    for n in new_positions:
        other = engine.local_graphs[n].slot_of(gid)
        other.master_node = dst
    for idx, n in enumerate(new_mirrors):
        mslot = engine.local_graphs[n].slot_of(gid)
        mslot.role = Role.MIRROR
        mslot.mirror_id = idx
        mslot.mirror_self_active = dst_slot.mirror_self_active
        mslot.meta = MasterMeta(replica_positions=dict(new_positions),
                                mirror_nodes=list(new_mirrors),
                                master_node=dst, master_position=dst_pos)
        mslot.full_edges = list(dst_slot.full_edges)
        bytes_sent += len(dst_slot.full_edges) * BYTES_PER_EDGE + 64
    engine.master_node_of[gid] = dst

    # -- traffic accounting ---------------------------------------------
    state_nbytes = (program.value_nbytes(src_slot.value) + BYTES_PER_VID
                    + len(new_in) * BYTES_PER_EDGE)
    net.send(Message(MessageKind.RECOVERY, src, dst,
                     ("move-master", gid), state_nbytes))
    bytes_sent += state_nbytes
    for n in sorted(new_positions):
        net.send(Message(MessageKind.CONTROL, dst, n,
                         ("new-master", gid, dst), BYTES_PER_VID + 4))
        bytes_sent += BYTES_PER_VID + 4
    return bytes_sent


def _create_source_replica(engine: "Engine", gid: int,
                           node: int) -> tuple[int, int]:
    """Create a plain replica of ``gid`` on ``node`` from its master.

    Mirrors Migration's replica creation: state fetched from the
    master, registered in the master's (and every mirror's) metadata,
    counted as recovery traffic.  Returns ``(position, bytes)``.
    """
    master_node = engine.master_node_of[gid]
    master_lg = engine.local_graphs[master_node]
    master_slot = master_lg.slot_of(gid)
    lg = engine.local_graphs[node]
    position = len(lg.slots)
    rv = common.snapshot_replica_state(master_lg, master_slot, node,
                                       position, edge_cut=False)
    rv.full_edges = None
    rv.role = Role.REPLICA.value
    rv.mirror_id = -1
    rv.replica_positions = None
    rv.mirror_nodes = None
    common.place_recovered_vertex(lg, rv,
                                  common.last_committed_iteration(engine))
    master_slot.meta.replica_positions[node] = position
    master_slot.meta.invalidate_replica_cache()
    nbytes = rv.nbytes(engine.program.value_nbytes(rv.value))
    engine.cluster.network.send(
        Message(MessageKind.RECOVERY, master_node, node,
                ("replica-state", gid), nbytes))
    for mirror_node in master_slot.meta.mirror_nodes:
        mirror = engine.local_graphs[mirror_node].slot_of(gid)
        if mirror.meta is not None:
            mirror.meta.replica_positions[node] = position
            mirror.meta.invalidate_replica_cache()
    return position, nbytes


def prune_node_copies(engine: "Engine", node: int) -> list[int]:
    """Remove every remaining copy hosted on a fully drained node.

    All masters must already have been moved off.  Each removed copy is
    deregistered from its master's (and the mirrors') metadata; the
    returned gids should be passed to ``restore_ft_level`` so vertices
    that lost a mirror get a fresh one elsewhere.
    """
    lg = engine.local_graphs[node]
    affected: list[int] = []
    for slot in list(lg.iter_slots()):
        gid = slot.gid
        if slot.is_master:
            raise EngineError(
                f"vertex {gid} still mastered on draining node {node}")
        master_node = engine.master_node_of[gid]
        master_slot = engine.local_graphs[master_node].slot_of(gid)
        meta = master_slot.meta
        if meta is not None:
            meta.replica_positions.pop(node, None)
            if node in meta.mirror_set:
                meta.mirror_nodes = [n for n in meta.mirror_nodes
                                     if n != node]
            meta.invalidate_replica_cache()
            for mn in meta.mirror_nodes:
                mslot = engine.local_graphs[mn].slot_of(gid)
                if mslot.meta is not None:
                    mslot.meta.replica_positions.pop(node, None)
                    mslot.meta.mirror_nodes = [
                        n for n in mslot.meta.mirror_nodes if n != node]
                    mslot.meta.invalidate_replica_cache()
        lg.remove_slot(gid)
        affected.append(gid)
    return affected
