"""Multiprocessing execution backend (DESIGN.md §12).

Each cluster node runs as a real ``multiprocessing.Process`` (fork
start method) owning one partition's :class:`LocalGraph`, forked from
a pristine parent-side ``Engine`` that itself never runs a superstep.
Workers execute exactly the scalar :class:`~repro.exec.protocol.
NodeProtocol` the simulator delegates to; the coordinator drives the
superstep rounds over per-worker duplex pipes (star topology) and
routes the encoded columnar batches between workers.

Determinism / parity
--------------------
Committed values and logical-message counts are identical to the
simulator by construction: both backends run the same per-node
protocol over the same forked per-node state, and the protocol is
order-independent across senders (each gid has a single master, partial
gathers fold in sorted sender order, activations are idempotent), so
nondeterministic frame arrival cannot change outcomes.  The coordinator
books traffic per routed batch with the simulator's own units — logical
records per batch, payload bytes plus ``BYTES_PER_MSG_HEADER`` per
physical batch.

Failure handling
----------------
The chaos schedule (``BackendSpec.failures``) delivers real
``SIGKILL``s.  Death is detected by the coordinator's heartbeat loop —
``multiprocessing.connection.wait`` over worker pipes *and* process
sentinels, with consecutive-miss counting as the hang guard.  A death
inside a compute round — or anywhere up to the finalize round of the
commit exchange, since nothing commits before ``finalize_commit`` —
aborts the iteration on the survivors (staged state is discarded) and
the iteration is redone after recovery, bounded by
``max_iteration_retries`` redos per iteration; a death between
iterations recovers in place.  Only a death inside the finalize round
itself is unrecoverable (some workers may already have committed).
Recovery elects a recovery leader with the simulator's seeded election
(bookkeeping parity; the coordinator still drives the protocol).
Recovery is the rebirth rung only: a replacement worker is
forked from the pristine parent engine, survivors ship the replication
state they hold for the dead rank (mirror copies preferred, lowest
surviving rank breaking ties), the replacement's masters are
conservatively reactivated, and — under vertex-cut — every rank's next
phase-0 broadcast is forced so activity flags re-converge.

Elastic membership
------------------
``BackendSpec.membership`` events run at the same logical points as on
the simulator — flaps at superstep start, joins and drains after the
commit barrier of their iteration.  A flap is a real ``SIGSTOP`` /
``SIGCONT`` stall of the worker process, absorbed by the heartbeat
loop's consecutive-miss counting (flap tolerance: a slow worker is not
a dead worker).  Joins and drains run as a stop-the-world
**fullstate reshape-restart**: the coordinator pulls every rank's
committed master state into the parent engine, replays the change
through the simulator's own :class:`~repro.membership.manager.
MembershipManager` (same Fennel plan seed, so the resulting placement
matches the simulator's), and re-forks every worker from the reshaped
parent.  Values are untouched throughout — the cross-backend oracle
compares elastic runs bit-for-bit.

Scope limits (rejected specs raise :class:`BackendError`): fork start
method required, edge-mutating programs unsupported, ``ft_mode`` must
be ``none``/``replication``, recovery must be ``rebirth``, batched
syncs are mandatory (the wire format is the batch), and joins/drains
need replication over an edge-cut partitioning (the simulator's
``check_supported`` contract).
"""

from __future__ import annotations

import heapq
import os
import signal
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from repro.api import make_engine
from repro.config import MP_HEARTBEAT_INTERVAL_S, MP_HEARTBEAT_MISSES
from repro.engine.messages import ActivateBatch, RawGatherBatch
from repro.engine.vertex_program import ApplyContext
from repro.errors import UnrecoverableFailureError
from repro.exec.base import (BackendError, BackendRunResult, BackendSpec,
                             ExecutionBackend)
from repro.membership.election import elect_leader
from repro.exec.protocol import NodeProtocol
from repro.exec.serialize import (TAG_GATHER, TAG_RAW_GATHER, decode_batch,
                                  encode_batch, encoded_logical_nbytes,
                                  encoded_logical_records,
                                  encoded_precombine_records,
                                  encoded_records)
from repro.serve.router import MISS, ReplicaRouter
from repro.serve.server import ReadResponse, ServeStats, WorkloadCursor
from repro.serve.view import CommittedView
from repro.serve.workload import (NEIGHBORHOOD, POINT, TOPK,
                                  workload_from_config)
from repro.utils.sizing import BYTES_PER_MSG_HEADER


class _WorkerDeath(Exception):
    """Internal: one or more workers died (carries the dead ranks)."""

    def __init__(self, ranks: set[int]):
        super().__init__(f"workers died: {sorted(ranks)}")
        self.ranks = set(ranks)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _force_rebroadcast(lg, pending_broadcast: set[int]) -> None:
    """Queue a full activity re-broadcast (vertex-cut recovery).

    Replica activity flags may be stale after a rebirth — the
    replacement worker's copies restart at forked-initial activity — so
    every master marks its replicas stale and re-broadcasts on the next
    phase 0 (the simulator's ``_refresh_broadcast_state`` analogue,
    made total because survivors cannot know which flags the dead rank
    lost).
    """
    for slot in lg.iter_masters():
        slot.replicas_known_active = not slot.active
        pending_broadcast.add(slot.gid)


def _extract_records(lg, dead: tuple[int, ...]) -> tuple[list, list]:
    """Survivor-side replication-state scan for the dead ranks.

    Returns ``(master_records, replica_records)``:

    * master records — this rank's replica/mirror copies of vertices
      mastered on a dead rank, ``(gid, master_node, value,
      last_activates, last_update_iter, mirror_self_active, is_mirror)``;
    * replica records — this rank's own masters that keep copies on a
      dead rank, ``(gid, value, last_activates, last_update_iter,
      self_active, active, dead_targets)``.
    """
    dead_set = set(dead)
    masters: list = []
    replicas: list = []
    for slot in lg.iter_slots():
        if slot.is_master:
            targets = tuple(node for node, _m in slot.meta.sync_targets()
                            if node in dead_set)
            if targets:
                replicas.append((slot.gid, slot.value, slot.last_activates,
                                 slot.last_update_iter,
                                 slot.mirror_self_active, slot.active,
                                 targets))
        elif slot.master_node in dead_set:
            masters.append((slot.gid, slot.master_node, slot.value,
                            slot.last_activates, slot.last_update_iter,
                            slot.mirror_self_active, slot.is_mirror))
    return masters, replicas


def _apply_reseed(lg, masters, replicas, activate_gids) -> None:
    """Replacement-worker state seeding from survivor records.

    Masters take the surviving copy's committed value and are
    conservatively reactivated (every dead-rank master recomputes once;
    safe because ``apply`` is a pure function of neighbor state, and
    exact whenever the vertex was in fact active at the kill point).
    The replacement's replica copies take their owners' current
    committed values — the local gathers of the next superstep read
    them directly.
    """
    for gid, _master_node, value, la, lui, msa, is_mirror in masters:
        slot = lg.slot_of(gid)
        slot.value = value
        slot.last_activates = la
        slot.last_update_iter = lui
        # Plain replicas never saw the master's self-active flag; assume
        # active, consistent with the conservative reactivation below.
        slot.mirror_self_active = msa if is_mirror else True
    for gid, value, la, lui, self_active, active, _targets in replicas:
        slot = lg.slot_of(gid)
        slot.value = value
        slot.last_activates = la
        slot.last_update_iter = lui
        slot.mirror_self_active = self_active
        lg.set_active(slot, active)
    for gid in activate_gids:
        lg.set_active(lg.slot_of(gid), True)


def _worker_main(rank: int, conn, close_conns, engine) -> None:
    """Worker process main loop: one partition, frame-driven rounds."""
    for other in close_conns:
        try:
            other.close()
        except OSError:
            pass
    # A worker must never outlive an abruptly-gone coordinator; pipes
    # raise EOFError on recv once the parent closes, which exits below.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    lg = engine.local_graphs[rank]
    proto = NodeProtocol(engine.program, engine.is_edge_cut,
                         sync_elision=engine._sync_elision,
                         selfish_opt=engine.selfish_opt_active,
                         combining=engine._combining)
    num_vertices = engine.graph.num_vertices
    num_edges = engine.graph.num_edges
    dirty: dict[int, Any] = {}
    partials: dict[int, list] = {}
    pending_broadcast: set[int] = set()

    def ctx(iteration: int) -> ApplyContext:
        return ApplyContext(iteration=iteration, num_vertices=num_vertices,
                            num_edges=num_edges)

    def encode_outbox(outbox: dict) -> list:
        return [(dst, kind.value, encode_batch(batch))
                for (dst, kind), batch in outbox.items()]

    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            return
        tag = frame[0]
        if tag == "compute":
            it = frame[1]
            dirty = {}
            outbox: dict = {}
            edges, vertices, elided = proto.edge_cut_compute_node(
                lg, ctx(it), outbox, dirty)
            conn.send(("computed", it, encode_outbox(outbox),
                       edges, vertices, elided))
        elif tag == "vc0":
            it = frame[1]
            dirty = {}
            partials = {}
            outbox = proto.broadcast_build(lg, pending_broadcast)
            pending_broadcast = set()
            conn.send(("vc0_done", it, encode_outbox(outbox)))
        elif tag == "vc1":
            it = frame[1]
            for _src, enc in frame[2]:
                proto.broadcast_apply(lg, decode_batch(enc))
            outbox = {}
            local: list = []
            edges = proto.vertex_gather(lg, ctx(it), outbox, local)
            for gid, acc in local:
                partials.setdefault(gid, []).append((rank, acc))
            conn.send(("vc1_done", it, encode_outbox(outbox), edges))
        elif tag == "vc2":
            it = frame[1]
            for src, enc in frame[2]:
                batch = decode_batch(enc)
                if isinstance(batch, RawGatherBatch):
                    accs = proto.fold_raw_gather(batch)
                else:
                    accs = batch.accs
                for gid, acc in zip(batch.gids, accs):
                    partials.setdefault(gid, []).append((src, acc))
            outbox = {}
            vertices, elided = proto.master_fold_apply(
                lg, partials, ctx(it), outbox, dirty)
            conn.send(("vc2_done", it, encode_outbox(outbox),
                       vertices, elided))
        elif tag == "commit":
            it = frame[1]
            for _src, enc in frame[2]:
                proto.apply_sync_batch(lg, decode_batch(enc), dirty)
            signals = proto.commit_stage1(lg, dirty, it)
            by_dst: dict[int, ActivateBatch] = {}
            for dst, gid in sorted(set(signals)):
                batch = by_dst.get(dst)
                if batch is None:
                    batch = by_dst[dst] = ActivateBatch()
                batch.append(gid)
            conn.send(("staged", it,
                       [(dst, encode_batch(b)) for dst, b in by_dst.items()]))
        elif tag == "commit2":
            it = frame[1]
            for _src, enc in frame[2]:
                proto.apply_activations(lg, decode_batch(enc).gids, dirty)
            stale = proto.finalize_commit(lg, dirty, it)
            pending_broadcast.update(stale)
            dirty = {}
            conn.send(("committed", it, len(lg.active_masters)))
        elif tag == "abort":
            for slot in dirty.values():
                slot.clear_pending()
            dirty = {}
            partials = {}
            conn.send(("aborted", frame[1]))
        elif tag == "extract":
            masters, replicas = _extract_records(lg, frame[1])
            conn.send(("extracted", masters, replicas))
        elif tag == "reseed":
            _, masters, replicas, activate_gids, force = frame
            _apply_reseed(lg, masters, replicas, activate_gids)
            if force:
                _force_rebroadcast(lg, pending_broadcast)
            conn.send(("reseeded",))
        elif tag == "recovered":
            if frame[1]:
                _force_rebroadcast(lg, pending_broadcast)
            conn.send(("recovered_ack",))
        elif tag == "read":
            # Point reads of committed state: the coordinator only
            # sends these at protocol-safe points (workers idle between
            # rounds, never inside the commit exchange), so every slot
            # value here is the last committed one.  Any local copy —
            # master, replica or mirror — answers.
            req_id, gids = frame[1], frame[2]
            conn.send(("read_done", req_id,
                       {gid: (lg.slot_of(gid).value
                              if gid in lg.index_of else None)
                        for gid in gids}))
        elif tag == "topk":
            # Local-masters top-K by (value desc, gid asc); the
            # coordinator merges the per-rank lists.
            req_id, k = frame[1], frame[2]
            top = heapq.nlargest(
                k, ((slot.value, -slot.gid) for slot in lg.iter_masters()))
            conn.send(("topk_done", req_id,
                       [(-neg_gid, value) for value, neg_gid in top]))
        elif tag == "values":
            conn.send(("values_done",
                       {slot.gid: slot.value for slot in lg.iter_masters()}))
        elif tag == "fullstate":
            # Committed full state of every local master — the
            # coordinator writes it back into the parent engine before a
            # membership reshape (only ever sent at a commit barrier, so
            # no pending fields exist).
            conn.send(("fullstate_done",
                       [(slot.gid, slot.value, slot.last_activates,
                         slot.last_update_iter, slot.mirror_self_active,
                         slot.active, slot.replicas_known_active)
                        for slot in lg.iter_masters()]))
        elif tag == "shutdown":
            return
        else:  # pragma: no cover - protocol bug guard
            conn.send(("error", f"unknown frame tag {tag!r}"))
            return


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    proc: Any
    conn: Any


class _TrafficBook:
    """Simulator-unit traffic accounting over routed encoded batches.

    Charges the *logical* (combined-equivalent) tier — the paper's
    message unit, invariant under the combining knob (DESIGN.md §15) —
    and tracks the pre-combine/physical gather record counts feeding
    ``combined_records`` / ``combine_ratio``, mirroring the simulator
    ``Network``'s combine counters.
    """

    def __init__(self) -> None:
        self.total_msgs = 0
        self.total_bytes = 0
        self.total_batches = 0
        self.by_kind: dict[str, int] = defaultdict(int)
        self.combine_pre = 0
        self.combine_phys = 0

    def count(self, kind: str, enc: tuple) -> None:
        records = encoded_logical_records(enc)
        self.total_msgs += records
        self.total_bytes += encoded_logical_nbytes(enc) + BYTES_PER_MSG_HEADER
        self.total_batches += 1
        self.by_kind[kind] += records
        if enc[0] in (TAG_GATHER, TAG_RAW_GATHER):
            self.combine_pre += encoded_precombine_records(enc)
            self.combine_phys += encoded_records(enc)


class _MpReadServer:
    """Coordinator-side query server over worker read frames.

    Routing and accounting reuse the simulator's serve layer —
    :class:`~repro.serve.router.ReplicaRouter` /
    :class:`~repro.serve.server.ServeStats` — over the pristine parent
    engine, whose placement is the workers' placement (static under
    rebirth-only recovery).  The parent's cluster never crashes, so the
    router runs with ``use_cluster_liveness=False`` and the coordinator
    passes the ranks it knows dead explicitly.  Reads execute as
    batched ``read``/``topk`` frames against the workers holding the
    routed copies, only at protocol-safe points (workers idle between
    rounds), so every answer is a committed slot value.  Queries due at
    one drain point share the drain's round-trip latency — they are
    served concurrently by one frame exchange.
    """

    def __init__(self, backend: "MultiprocessingBackend", engine,
                 workload, cfg: dict):
        self.backend = backend
        self.engine = engine
        self.view = CommittedView(engine)  # static topology reads only
        self.cursor = WorkloadCursor(workload, cfg["expected_supersteps"])
        self.router = ReplicaRouter(
            engine, seed=cfg.get("route_seed", 0),
            policy=cfg.get("policy", "round_robin"),
            use_cluster_liveness=False)
        self.stats = ServeStats(cfg.get("keep_responses", True))
        self.neighborhood_limit = workload.neighborhood_limit
        self._req = 0

    def drain(self, progress: float, committed: int,
              dead=frozenset(), force_degraded: bool = False) -> None:
        """Serve every query whose arrival progress has passed."""
        queries = self.cursor.due(progress)
        if queries:
            self._serve_batch(queries, committed, dead, force_degraded)

    def finish(self, committed: int) -> None:
        queries = self.cursor.drain()
        if queries:
            self._serve_batch(queries, committed, frozenset(), False)

    def report(self) -> dict:
        return self.stats.report(self.router, self.engine.metrics)

    # -- execution -------------------------------------------------------

    def _serve_batch(self, queries, committed: int, dead,
                     force_degraded: bool) -> None:
        start = time.perf_counter()
        alive = sorted(self.backend._workers)
        # Route every point/neighborhood gid, bucket by serving rank.
        plans: list = []
        by_rank: dict[int, set] = defaultdict(set)
        topk_ks: set[int] = set()
        for query in queries:
            if query.kind == TOPK:
                topk_ks.add(query.k)
                plans.append(None)
                continue
            gids = ([query.gid] if query.kind == POINT
                    else self.view.out_neighbors(
                        query.gid, limit=self.neighborhood_limit))
            routed: list[tuple[int, int]] = []
            degraded = force_degraded
            for gid in gids:
                node, deg = self.router.route(
                    gid, dead=dead, force_degraded=force_degraded)
                degraded = degraded or deg
                routed.append((gid, node))
                if node == MISS:
                    self.stats.misses += 1
                else:
                    by_rank[node].add(gid)
            plans.append((routed, degraded))
        # One read frame per involved rank, one topk frame per distinct
        # K — the whole drain is two collect round-trips at most.
        values: dict[int, dict] = {}
        if by_rank:
            self._req += 1
            req = self._req
            for rank in sorted(by_rank):
                self.backend._send(rank, ("read", req,
                                          sorted(by_rank[rank])))
            frames = self.backend._collect("read_done", req,
                                           sorted(by_rank))
            values = {rank: frame[2] for rank, frame in frames.items()}
        topk_merged: dict[int, tuple] = {}
        for k in sorted(topk_ks):
            self._req += 1
            for rank in alive:
                self.backend._send(rank, ("topk", self._req, k))
            frames = self.backend._collect("topk_done", self._req, alive)
            merged = sorted((pair for frame in frames.values()
                             for pair in frame[2]),
                            key=lambda t: (-t[1], t[0]))
            topk_merged[k] = tuple((int(gid), value)
                                   for gid, value in merged[:k])
        latency_s = time.perf_counter() - start
        # Top-K coverage is partial whenever any rank is out of the
        # aggregation or recovery-recomputed selfish masters are still
        # in the ranking — the explicit-degradation contract.
        topk_degraded = (force_degraded or bool(dead)
                         or bool(self.engine.selfish_read_fence)
                         or len(alive)
                         < self.engine.cluster.expected_workers())
        for query, plan in zip(queries, plans):
            if query.kind == TOPK:
                resp = ReadResponse(
                    gid=-1, kind=TOPK, value=topk_merged[query.k],
                    superstep=committed, degraded=topk_degraded,
                    replica_node=MISS)
            else:
                routed, degraded = plan
                parts = [(gid, None if node == MISS
                          else values[node][gid])
                         for gid, node in routed]
                if query.kind == POINT:
                    resp = ReadResponse(
                        gid=query.gid, kind=POINT, value=parts[0][1],
                        superstep=committed, degraded=degraded,
                        replica_node=routed[0][1])
                else:
                    node0 = next((node for _gid, node in routed
                                  if node != MISS), MISS)
                    resp = ReadResponse(
                        gid=query.gid, kind=NEIGHBORHOOD,
                        value=tuple(parts), superstep=committed,
                        degraded=degraded, replica_node=node0)
            self.stats.record(resp, latency_s)


class MultiprocessingBackend(ExecutionBackend):
    """Real-process backend: one forked worker per cluster node."""

    name = "multiprocessing"

    #: Redo budget per iteration for deaths caught before the finalize
    #: round (compute and commit stage 1 are abortable); exceeding it is
    #: a structured :class:`BackendError`, not a silent loop.
    max_iteration_retries = 3

    def __init__(self, heartbeat_s: float = MP_HEARTBEAT_INTERVAL_S,
                 heartbeat_misses: int = MP_HEARTBEAT_MISSES):
        self.heartbeat_s = heartbeat_s
        self.heartbeat_misses = heartbeat_misses
        self._ctx = None
        self._workers: dict[int, _Worker] = {}
        self._engine = None
        self._serve: _MpReadServer | None = None

    # -- lifecycle -------------------------------------------------------

    def _spawn_worker(self, rank: int) -> None:
        parent_end, child_end = self._ctx.Pipe(duplex=True)
        close_conns = [w.conn for w in self._workers.values()]
        close_conns.append(parent_end)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(rank, child_end, close_conns, self._engine),
            name=f"repro-worker-{rank}",
            daemon=True)
        proc.start()
        # The parent's copy of the child end must close so worker death
        # leaves no stray write end holding the pipe open.
        child_end.close()
        self._workers[rank] = _Worker(proc=proc, conn=parent_end)

    def close(self) -> None:
        """Reap every worker — also on failure paths (tests must never
        leak child processes): cooperative shutdown, then terminate,
        then kill."""
        for worker in self._workers.values():
            if worker.proc.is_alive():
                try:
                    worker.conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers.values():
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():  # pragma: no cover - last resort
                worker.proc.kill()
                worker.proc.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers.clear()

    # -- frame plumbing --------------------------------------------------

    def _send(self, rank: int, frame: tuple) -> None:
        try:
            self._workers[rank].conn.send(frame)
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerDeath({rank}) from exc

    def _collect(self, tag: str, iteration: int | None,
                 ranks) -> dict[int, tuple]:
        """Gather one ``tag`` frame per rank; sentinel-aware.

        The heartbeat loop waits on worker pipes *and* process
        sentinels: a ``SIGKILL`` surfaces as a ready sentinel within one
        heartbeat interval, and ``heartbeat_misses`` consecutive silent
        intervals mean a wedged worker (raised as :class:`BackendError`
        — a hang is not a crash and gets no recovery).  Frames not
        matching ``(tag, iteration)`` are stale pre-abort output and
        are discarded.
        """
        from multiprocessing.connection import wait as mpc_wait

        out: dict[int, tuple] = {}
        pending = set(ranks)
        misses = 0
        while pending:
            conns = {self._workers[r].conn: r for r in pending}
            sentinels = {self._workers[r].proc.sentinel: r for r in pending}
            ready = mpc_wait(list(conns) + list(sentinels),
                             timeout=self.heartbeat_s)
            if not ready:
                misses += 1
                if misses >= self.heartbeat_misses:
                    raise BackendError(
                        f"workers {sorted(pending)} sent no frame for "
                        f"{misses * self.heartbeat_s:.1f}s awaiting "
                        f"{tag!r} — wedged")
                continue
            misses = 0
            dead = {sentinels[obj] for obj in ready if obj in sentinels}
            if dead:
                raise _WorkerDeath(dead)
            for obj in ready:
                rank = conns[obj]
                conn = self._workers[rank].conn
                while rank in pending and conn.poll(0):
                    try:
                        frame = conn.recv()
                    except (EOFError, OSError) as exc:
                        raise _WorkerDeath({rank}) from exc
                    if frame[0] == tag and (iteration is None
                                            or frame[1] == iteration):
                        out[rank] = frame
                        pending.discard(rank)
        return out

    def _route(self, collected: dict[int, tuple],
               book: _TrafficBook) -> dict[int, list]:
        """Fan collected outbox batches out to per-destination frame
        lists, booking each batch in simulator units."""
        frames: dict[int, list] = {r: [] for r in self._workers}
        for src in sorted(collected):
            for dst, kind, enc in collected[src][2]:
                book.count(kind, enc)
                frames[dst].append((src, enc))
        return frames

    # -- chaos -----------------------------------------------------------

    def _kill(self, ranks) -> set[int]:
        """Deliver real SIGKILLs and wait until every target is dead, so
        detection is deterministic at the next collect."""
        killed = set()
        for rank in ranks:
            worker = self._workers.get(rank)
            if worker is None or not worker.proc.is_alive():
                continue
            os.kill(worker.proc.pid, signal.SIGKILL)
            killed.add(rank)
        deadline = time.monotonic() + 10.0
        for rank in killed:
            proc = self._workers[rank].proc
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - SIGKILL cannot fail
                raise BackendError(f"worker {rank} survived SIGKILL")
        return killed

    def _flap(self, rank: int) -> None:
        """Stall one worker with SIGSTOP/SIGCONT — a real slow-node
        flap.  The heartbeat loop's consecutive-miss counting absorbs
        the stall (flap tolerance: a slow worker is not a dead one)."""
        worker = self._workers.get(rank)
        if worker is None or not worker.proc.is_alive():
            return
        os.kill(worker.proc.pid, signal.SIGSTOP)
        try:
            time.sleep(min(2 * self.heartbeat_s, 0.5))
        finally:
            os.kill(worker.proc.pid, signal.SIGCONT)
        self._flaps += 1

    # -- elastic membership ----------------------------------------------

    def _sync_parent_from_workers(self) -> None:
        """Pull every rank's committed master state into the parent.

        Replica/mirror copies on the parent take the master's committed
        state too — at a barrier under sync elision every copy already
        agrees with its master, so this reproduces exactly the workers'
        copy state (copies hold the flag the master last broadcast,
        ``replicas_known_active``).
        """
        alive = sorted(self._workers)
        for rank in alive:
            self._send(rank, ("fullstate",))
        frames = self._collect("fullstate_done", None, alive)
        engine = self._engine
        for rank in alive:
            lg = engine.local_graphs[rank]
            for gid, value, la, lui, msa, active, rka in frames[rank][1]:
                slot = lg.slot_of(gid)
                slot.value = value
                slot.last_activates = la
                slot.last_update_iter = lui
                slot.mirror_self_active = msa
                slot.replicas_known_active = rka
                lg.set_active(slot, active)
                for node, is_mirror in slot.meta.sync_targets():
                    copy_lg = engine.local_graphs[node]
                    copy = copy_lg.slot_of(gid)
                    copy.value = value
                    copy.last_activates = la
                    copy.last_update_iter = lui
                    if is_mirror:
                        copy.mirror_self_active = msa
                    copy_lg.set_active(copy, rka)

    def _reshape(self, events: list[tuple[str, Any, int]]) -> None:
        """Stop-the-world join/drain at a commit barrier.

        State flows workers -> parent, the membership change replays
        through the simulator's own :class:`MembershipManager` (same
        plan seed, so placement matches the simulator's), and every
        worker re-forks from the reshaped parent.
        """
        engine = self._engine
        self._sync_parent_from_workers()
        for kind, target, count in events:
            if kind == "join":
                engine.request_join(count)
            else:
                engine.request_drain(int(target))
        manager = engine._require_membership()
        while manager.active:
            manager.pump()
        self.close()
        for rank in sorted(engine.local_graphs):
            self._spawn_worker(rank)
        self._reshapes += 1

    # -- recovery --------------------------------------------------------

    def _abort_survivors(self, iteration: int, survivors) -> None:
        """Discard the aborted iteration's staged state everywhere; the
        per-sender-FIFO ack drain also flushes stale pre-abort frames."""
        for rank in survivors:
            self._send(rank, ("abort", iteration))
        for rank in survivors:
            conn = self._workers[rank].conn
            deadline = time.monotonic() + self.heartbeat_s * \
                self.heartbeat_misses
            while True:
                if not conn.poll(timeout=0.2):
                    if time.monotonic() > deadline:
                        raise BackendError(
                            f"worker {rank} never acked abort")
                    continue
                try:
                    frame = conn.recv()
                except (EOFError, OSError) as exc:
                    raise BackendError(
                        f"worker {rank} died during abort") from exc
                if frame == ("aborted", iteration):
                    break

    def _recover(self, dead: set[int], iteration: int, spec: BackendSpec,
                 mid_iteration: bool) -> None:
        """The rebirth rung over real processes.

        Reap the corpses, abort the in-flight iteration on survivors
        (if any), fork replacements from the pristine parent engine,
        reseed them from survivor replication state, and force the
        vertex-cut activity re-broadcast.
        """
        dead_sorted = sorted(dead)
        survivors = sorted(set(self._workers) - dead)
        # Seeded recovery-leader election — the simulator's bookkeeping,
        # so both backends report comparable leadership terms (the
        # coordinator process still drives the protocol itself).
        if survivors:
            self._leader_term += 1
            self._leader = elect_leader(survivors, spec.seed,
                                        self._leader_term)
        for rank in dead_sorted:
            worker = self._workers.pop(rank)
            worker.proc.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        if spec.ft_mode != "replication" or spec.ft_level < 1:
            raise UnrecoverableFailureError(
                f"workers {dead_sorted} killed with no replication to "
                f"recover from (ft_mode={spec.ft_mode}, "
                f"ft_level={spec.ft_level})",
                rungs_attempted=(), surviving_nodes=tuple(survivors))
        if len(dead_sorted) > self._standby_left:
            raise UnrecoverableFailureError(
                f"standby pool exhausted: {len(dead_sorted)} dead, "
                f"{self._standby_left} standby forks left",
                rungs_attempted=("rebirth",),
                surviving_nodes=tuple(survivors))
        self._standby_left -= len(dead_sorted)
        if mid_iteration:
            self._abort_survivors(iteration, survivors)
        # The explicit degraded read window: the dead ranks are reaped
        # and survivors hold the last commit, so reads due by now fall
        # back to surviving replicas (selfish masters on dead ranks
        # miss — their only current copy died) and are tagged degraded.
        if self._serve is not None:
            self._engine.in_recovery = True
            try:
                self._serve.drain(
                    iteration + (0.6 if mid_iteration else 1.0),
                    committed=iteration - 1 if mid_iteration else iteration,
                    dead=set(dead_sorted), force_degraded=True)
            finally:
                self._engine.in_recovery = False
        for rank in dead_sorted:
            self._spawn_worker(rank)

        for rank in survivors:
            self._send(rank, ("extract", tuple(dead_sorted)))
        extracted = self._collect("extracted", None, survivors)

        # Merge survivor snapshots: mirrors lead (full-state copies),
        # the lowest surviving rank breaks ties.
        best: dict[int, tuple[tuple, bool, int]] = {}
        replicas_by_rank: dict[int, list] = {r: [] for r in dead_sorted}
        for src in sorted(extracted):
            _tag, masters, replicas = extracted[src]
            for rec in masters:
                gid, is_mirror = rec[0], rec[6]
                cur = best.get(gid)
                if cur is None or (is_mirror and not cur[1]):
                    best[gid] = (rec, is_mirror, src)
            for rec in replicas:
                for dst in rec[6]:
                    replicas_by_rank[dst].append(rec)
        masters_by_rank: dict[int, list] = {r: [] for r in dead_sorted}
        for rec, _is_mirror, _src in best.values():
            masters_by_rank[rec[1]].append(rec)

        # Simultaneous multi-rank death: replacement A also hosts
        # replica copies of replacement B's masters, and no survivor
        # owns those — forward the merged survivor snapshots as replica
        # records between the reborn ranks (conservatively active; the
        # forced phase-0 re-broadcast trues the flags up under
        # vertex-cut before the next gather reads them).
        for rank in dead_sorted:
            for other in dead_sorted:
                if other == rank:
                    continue
                lg = self._engine.local_graphs[other]
                for slot in lg.iter_masters():
                    if slot.gid not in best:
                        continue
                    targets = {node for node, _m
                               in slot.meta.sync_targets()}
                    if rank not in targets:
                        continue
                    rec, is_mirror, _src = best[slot.gid]
                    _gid, _mn, value, la, lui, msa, _m = rec
                    replicas_by_rank[rank].append(
                        (slot.gid, value, la, lui,
                         msa if is_mirror else True, True, (rank,)))

        force = not self._engine.is_edge_cut
        for rank in dead_sorted:
            expected = [slot.gid for slot
                        in self._engine.local_graphs[rank].iter_masters()]
            lost = [gid for gid in expected
                    if gid not in best]
            if lost:
                raise UnrecoverableFailureError(
                    f"{len(lost)} vertices mastered on rank {rank} have "
                    f"no surviving replica", lost_vertices=len(lost),
                    rungs_attempted=("rebirth",),
                    surviving_nodes=tuple(survivors))
            self._send(rank, ("reseed", sorted(masters_by_rank[rank]),
                              sorted(replicas_by_rank[rank]),
                              expected, force))
        self._collect("reseeded", None, dead_sorted)
        for rank in survivors:
            self._send(rank, ("recovered", force))
        self._collect("recovered_ack", None, survivors)
        self._rebirths += len(dead_sorted)
        # Reborn selfish masters were reseeded from replicas that — by
        # the selfish optimisation — never saw their syncs: stale until
        # the redone superstep recomputes them.  Fence their reads to a
        # degraded miss until the next commit (the simulator's
        # ``Engine.selfish_read_fence``, same contract).
        if self._engine.selfish_opt_active:
            for rank in dead_sorted:
                lg = self._engine.local_graphs[rank]
                self._engine.selfish_read_fence.update(
                    slot.gid for slot in lg.iter_masters() if slot.selfish)

    # -- the run loop ----------------------------------------------------

    def _validate(self, spec: BackendSpec, engine) -> None:
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise BackendError(
                "multiprocessing backend needs the fork start method")
        if engine.program.mutates_edges:
            raise BackendError(
                "edge-mutating programs are not supported on the "
                "multiprocessing backend")
        if spec.ft_mode not in ("none", "replication"):
            raise BackendError(
                f"ft_mode {spec.ft_mode!r} is not supported on the "
                f"multiprocessing backend")
        if spec.recovery != "rebirth":
            raise BackendError(
                "the multiprocessing backend recovers by rebirth only")
        if not spec.batch_syncs:
            raise BackendError(
                "the multiprocessing backend always batches syncs "
                "(the wire format is the batch)")
        for iteration, _ranks, phase in spec.failures:
            if phase not in ("compute", "commit", "after_commit"):
                raise BackendError(
                    f"unsupported failure phase {phase!r}")
            if iteration >= spec.max_iterations:
                raise BackendError(
                    f"failure scheduled at iteration {iteration} beyond "
                    f"max_iterations {spec.max_iterations}")
        for event in spec.membership:
            kind = event[1]
            if kind not in ("join", "drain", "flap"):
                raise BackendError(
                    f"unknown membership event kind {kind!r}")
            if event[0] >= spec.max_iterations:
                raise BackendError(
                    f"membership event at iteration {event[0]} beyond "
                    f"max_iterations {spec.max_iterations}")
            if kind in ("drain", "flap") and event[2] is None:
                raise BackendError(f"{kind} events need a target rank")
            if kind in ("join", "drain"):
                if spec.ft_mode != "replication" \
                        or not engine.is_edge_cut:
                    raise BackendError(
                        "joins and drains need replication over an "
                        "edge-cut partitioning")

    def run(self, graph, spec: BackendSpec) -> BackendRunResult:
        import multiprocessing

        # The parent engine is the state template: partitioned,
        # replicated and value-initialised in __init__, never run.
        # Workers fork from it, so every rank starts bit-identical to
        # the simulator's; scalar workers make parent-side vectorized
        # state irrelevant, so it is not built at all.
        kwargs = spec.engine_kwargs()
        kwargs["vectorized"] = False
        # Membership replays through the parent engine's own manager at
        # reshape points — never via the engine's scheduled events (the
        # parent runs no supersteps to pump them).
        kwargs["membership"] = ()
        engine = make_engine(graph, **kwargs)
        self._validate(spec, engine)
        if spec.heartbeat_interval_s is not None:
            self.heartbeat_s = spec.heartbeat_interval_s
        if spec.heartbeat_misses is not None:
            self.heartbeat_misses = spec.heartbeat_misses
        self._ctx = multiprocessing.get_context("fork")
        self._engine = engine
        self._standby_left = spec.num_standby
        self._rebirths = 0
        self._reshapes = 0
        self._flaps = 0
        self._leader = -1
        self._leader_term = 0
        serve_cfg = spec.serve_config()
        self._serve = None
        if serve_cfg is not None:
            workload = workload_from_config(graph.num_vertices, serve_cfg)
            self._serve = _MpReadServer(self, engine, workload, serve_cfg)
        kills_pending = {"compute": defaultdict(set),
                         "commit": defaultdict(set),
                         "after_commit": defaultdict(set)}
        for iteration, ranks, phase in spec.failures:
            kills_pending[phase][iteration].update(ranks)
        flaps_pending: dict[int, list[int]] = defaultdict(list)
        reshape_pending: dict[int, list] = defaultdict(list)
        for event in spec.membership:
            iteration, kind, target = event[0], event[1], event[2]
            count = event[3] if len(event) > 3 else 1
            if kind == "flap":
                flaps_pending[iteration].append(int(target))
            else:
                reshape_pending[iteration].append((kind, target, count))

        book = _TrafficBook()
        elided_total = 0
        completed = 0
        halted = False
        retries: dict[int, int] = defaultdict(int)
        start = time.perf_counter()
        try:
            for rank in sorted(engine.local_graphs):
                self._spawn_worker(rank)
            while completed < spec.max_iterations:
                it = completed
                for rank in flaps_pending.pop(it, []):
                    self._flap(rank)
                try:
                    if self._serve is not None:
                        self._serve.drain(it + 0.0, committed=it - 1)
                    active_total, elided = self._iterate(
                        it, book, kills_pending["compute"].pop(it, set()),
                        kills_pending["commit"].pop(it, set()))
                except _WorkerDeath as death:
                    retries[it] += 1
                    if retries[it] > self.max_iteration_retries:
                        raise BackendError(
                            f"iteration {it} aborted {retries[it]} times "
                            f"(workers {sorted(death.ranks)} last); "
                            f"giving up after max_iteration_retries="
                            f"{self.max_iteration_retries}") from death
                    self._recover(death.ranks, it, spec,
                                  mid_iteration=True)
                    continue  # redo the aborted iteration
                elided_total += elided
                completed += 1
                # The commit of ``it`` made any recovery-recomputed
                # selfish values the committed ones: the read fence
                # closes (mirrors Engine._commit_barrier).
                engine.selfish_read_fence.clear()
                reshape_events = reshape_pending.pop(it, [])
                if reshape_events:
                    self._reshape(reshape_events)
                if active_total == 0:
                    halted = True
                    break
                late = kills_pending["after_commit"].pop(it, set())
                if late:
                    dead = self._kill(late)
                    if dead:
                        self._recover(dead, it, spec, mid_iteration=False)
            wall_s = time.perf_counter() - start
            if self._serve is not None:
                self._serve.finish(committed=completed - 1)
            values = self._collect_values()
        finally:
            self.close()
            self._engine = None
        extra = {"workers": len(engine.local_graphs),
                 "rebirths": self._rebirths,
                 "standby_left": self._standby_left}
        if spec.membership or self._rebirths:
            manager = engine._membership
            extra["membership"] = {
                "epoch": engine.cluster.membership_epoch,
                "moves": manager.moves_total if manager else 0,
                "bytes": manager.bytes_total if manager else 0,
                "joins": sum(1 for op in manager.completed
                             if op.kind == "join") if manager else 0,
                "drains": sum(1 for op in manager.completed
                              if op.kind == "drain") if manager else 0,
                "flaps": self._flaps,
                "reshapes": self._reshapes,
                "leader": self._leader,
                "leader_term": self._leader_term,
            }
        if self._serve is not None:
            extra["serve"] = self._serve.report()
            extra["serve_responses"] = self._serve.stats.responses
            self._serve = None
        return BackendRunResult(
            backend=self.name,
            values=values,
            iterations=completed,
            total_msgs=book.total_msgs,
            total_bytes=book.total_bytes,
            total_batches=book.total_batches,
            msgs_by_kind=dict(book.by_kind),
            syncs_elided=elided_total,
            wall_s=wall_s,
            halted=halted,
            failures_recovered=self._rebirths,
            combined_records=book.combine_pre - book.combine_phys,
            combine_ratio=(book.combine_pre / book.combine_phys
                           if book.combine_phys else 1.0),
            extra=extra)

    def _iterate(self, it: int, book: _TrafficBook, kill_now: set[int],
                 kill_commit: set[int] = frozenset()) -> tuple[int, int]:
        """One full superstep across the workers; returns
        ``(active_masters_after, syncs_elided)``."""
        alive = sorted(self._workers)
        if self._engine.is_edge_cut:
            for rank in alive:
                self._send(rank, ("compute", it))
            if kill_now:
                dead = self._kill(kill_now)
                if dead:
                    raise _WorkerDeath(dead)
            computed = self._collect("computed", it, alive)
            sync_frames = self._route(computed, book)
            elided = sum(frame[5] for frame in computed.values())
        else:
            for rank in alive:
                self._send(rank, ("vc0", it))
            if kill_now:
                dead = self._kill(kill_now)
                if dead:
                    raise _WorkerDeath(dead)
            vc0 = self._collect("vc0_done", it, alive)
            ctrl_frames = self._route(vc0, book)
            for rank in alive:
                self._send(rank, ("vc1", it, ctrl_frames[rank]))
            vc1 = self._collect("vc1_done", it, alive)
            gather_frames = self._route(vc1, book)
            for rank in alive:
                self._send(rank, ("vc2", it, gather_frames[rank]))
            vc2 = self._collect("vc2_done", it, alive)
            sync_frames = self._route(vc2, book)
            elided = sum(frame[4] for frame in vc2.values())

        # Reads interleave mid-superstep: compute is done but nothing
        # committed, so worker slots still hold the last commit —
        # staged results live only in the pending fields.  (Never drain
        # between the commit rounds below: slots flip there.)
        if self._serve is not None:
            self._serve.drain(it + 0.5, committed=it - 1)

        # Commit stage 1 stays abortable: workers only stage pending
        # fields until the finalize round, so a death here propagates as
        # ``_WorkerDeath`` — survivors abort, recovery runs, and the
        # iteration is redone (bounded by ``max_iteration_retries``).
        for rank in alive:
            self._send(rank, ("commit", it, sync_frames[rank]))
        if kill_commit:
            dead = self._kill(kill_commit)
            if dead:
                raise _WorkerDeath(dead)
        staged = self._collect("staged", it, alive)
        act_frames: dict[int, list] = {r: [] for r in alive}
        for src in sorted(staged):
            for dst, enc in staged[src][2]:
                book.count("activate", enc)
                act_frames[dst].append((src, enc))
        # The finalize round is the point of no return: once any worker
        # processes ``commit2`` its slots flip, so a death here leaves a
        # half-committed superstep — a hard error, not a recovery case.
        try:
            for rank in alive:
                self._send(rank, ("commit2", it, act_frames[rank]))
            committed = self._collect("committed", it, alive)
        except _WorkerDeath as death:
            raise BackendError(
                f"workers {sorted(death.ranks)} died inside the finalize "
                f"round of iteration {it}; the multiprocessing backend "
                f"cannot roll back a half-committed superstep"
            ) from death
        return sum(frame[2] for frame in committed.values()), elided

    def _collect_values(self) -> dict[int, Any]:
        alive = sorted(self._workers)
        for rank in alive:
            self._send(rank, ("values",))
        frames = self._collect("values_done", None, alive)
        values: dict[int, Any] = {}
        for rank in alive:
            values.update(frames[rank][1])
        return values
