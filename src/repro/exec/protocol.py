"""Backend-agnostic per-node superstep protocol (DESIGN.md §12).

Extracted from ``Engine`` so the same scalar compute/sync/commit code
drives both execution backends:

* the deterministic in-process simulator — ``Engine``'s scalar paths
  delegate here (the vectorized executor stays bit-equal to this code
  by the PR-5 differential suite), and
* the multiprocessing backend (:mod:`repro.exec.mp`), where each
  worker process owns one partition's :class:`LocalGraph` and runs
  exactly this code between pipe exchanges.

Equality of committed values and logical-message counts across
backends is therefore structural: both run the same per-node code over
the same per-node state in the same deterministic order; only the
transport underneath differs.

The protocol is written against plain data structures — a
:class:`LocalGraph`, an ``outbox`` dict keyed ``(dst_node, kind)``
accumulating columnar batches, and a ``dirty`` map of staged slots —
and never touches a network, cluster, tracer, or clock.  Everything
scheduling-related (which nodes run, when batches flush, where chaos
hooks fire, how time is charged) stays with the backend.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.network import MessageKind
from repro.engine.combine import combiner_of, fold_raw_batch
from repro.engine.messages import (ActiveBroadcastBatch, GatherBatch,
                                   MirrorSyncPayload, RawGatherBatch,
                                   SyncBatch)
from repro.utils.sizing import BYTES_PER_VID


class NodeProtocol:
    """The scalar superstep protocol of one partition (both modes).

    Stateless across supersteps apart from four policy knobs; one
    instance can serve every partition of a backend.  ``selfish_opt``
    is re-evaluated by the engine each superstep (it depends on the
    program and FT config, both fixed per job, but mirroring the
    engine's per-superstep read keeps the delegation exact).

    ``combining`` selects the vertex-cut gather wire format for
    programs that declare a :attr:`VertexProgram.combiner` (DESIGN.md
    §15): on (default), every remote partial is the sender-side fold of
    its contributions — one combined record per ``(dst_node, gid)``,
    annotated with the pre-combine contribution count; off, the raw
    per-edge contributions ship in a :class:`RawGatherBatch` and the
    master's node folds each group on receipt.  Both produce
    bit-identical values and identical logical traffic.  Programs with
    no combiner (or edge-mutating gathers, whose fold interleaves
    ``update_edge`` calls) always use the combined format via the plain
    ``gather`` loop.
    """

    def __init__(self, program, is_edge_cut: bool,
                 sync_elision: bool = True,
                 selfish_opt: bool = False,
                 combining: bool = True):
        self.program = program
        self.is_edge_cut = is_edge_cut
        self.sync_elision = sync_elision
        self.selfish_opt = selfish_opt
        self.combining = combining
        self.combiner = (None if program.mutates_edges
                         else combiner_of(program))
        from repro.engine.combine import scalar_op
        self._op = scalar_op(self.combiner) if self.combiner else None

    # -- gather + apply -------------------------------------------------

    def gather_edges(self, lg, slot, ctx,
                     mutation_log: dict | None = None) -> tuple[Any, tuple]:
        """Fold a slot's local in-edges; collect staged edge mutations.

        ``mutation_log`` (node -> [(slot, [(idx, new_w)])]) receives the
        staged updates for edge-mutating programs; the backend commits
        them at its barrier.
        """
        program = self.program
        acc = program.gather_init()
        if not program.mutates_edges:
            for src_pos, weight in slot.in_edges:
                acc = program.gather(acc, lg.view(src_pos), weight,
                                     slot.gid)
            return acc, ()
        updates = []
        for idx, (src_pos, weight) in enumerate(slot.in_edges):
            view = lg.view(src_pos)
            acc = program.gather(acc, view, weight, slot.gid)
            new_weight = program.update_edge(view, slot.gid, weight, ctx)
            if new_weight is not None and new_weight != weight:
                updates.append((idx, new_weight))
        if updates and mutation_log is not None:
            mutation_log[lg.node_id].append((slot, updates))
        return acc, tuple(updates)

    def compute_master(self, lg, slot, acc, ctx, outbox: dict,
                       dirty: dict, edge_updates: tuple = ()) -> int:
        """Apply + stage + sync one master's update; returns the number
        of sync records elided."""
        program = self.program
        new_value = program.apply(slot.gid, slot.value, acc, ctx)
        activates = program.activates_neighbors(
            slot.gid, slot.value, new_value, ctx)
        self_active = program.stays_active(
            slot.gid, slot.value, new_value, ctx)
        slot.pending_value = new_value
        slot.has_pending = True
        slot.pending_activates = activates
        slot.pending_active = self_active
        dirty[slot.gid] = slot
        return self.build_syncs(slot, new_value, activates, self_active,
                                outbox, edge_updates)

    def build_syncs(self, slot, new_value, activates: bool,
                    self_active: bool, outbox: dict,
                    edge_updates: tuple = ()) -> int:
        """Master -> replica/mirror synchronisation records.

        Records accumulate into the sending node's per-(dst, kind)
        columnar outbox, flushed once per node per superstep by the
        backend.  A master whose committed update is a non-activating
        no-op elides its records: replicas already hold the value, and
        because the previous commit also did not activate
        (``last_activates`` is clear) recovery replay has nothing to
        lose from the skipped ``last_update_iter`` stamp (DESIGN.md
        §10).  Returns the number of records elided.
        """
        if slot.selfish and self.selfish_opt:
            # Selfish optimisation (Section 4.4): no consumers, no sync;
            # recovery recomputes the dynamic state.
            return 0
        elided = 0
        mirror_updates = edge_updates if self.is_edge_cut else ()
        if self.sync_elision:
            noop = (not activates and not slot.last_activates
                    and new_value == slot.value)
            plain_elide = noop
            mirror_elide = (noop and not mirror_updates
                            and self_active == slot.mirror_self_active)
        else:
            plain_elide = mirror_elide = False
        value_nbytes = self.program.value_nbytes(new_value)
        for replica_node, is_mirror in slot.meta.sync_targets():
            if is_mirror:
                if mirror_elide:
                    elided += 1
                    continue
                key = (replica_node, MessageKind.MIRROR_SYNC)
                batch = outbox.get(key)
                if batch is None:
                    batch = outbox[key] = SyncBatch(full_state=True)
                batch.append(slot.gid, new_value, value_nbytes, activates,
                             self_active, mirror_updates)
            else:
                if plain_elide:
                    elided += 1
                    continue
                key = (replica_node, MessageKind.SYNC)
                batch = outbox.get(key)
                if batch is None:
                    batch = outbox[key] = SyncBatch()
                batch.append(slot.gid, new_value, value_nbytes, activates)
        return elided

    # -- per-node compute phases ----------------------------------------

    def edge_cut_compute_node(self, lg, ctx, outbox: dict, dirty: dict,
                              mutation_log: dict | None = None
                              ) -> tuple[int, int, int]:
        """One node's edge-cut superstep: gather + apply + stage syncs.

        Returns ``(edges_folded, vertices_computed, syncs_elided)``.
        """
        program = self.program
        edges = 0
        vertices = 0
        elided = 0
        for gid in lg.active_masters_snapshot():
            slot = lg.slot_of(gid)
            if not program.participates(gid, ctx):
                continue
            acc, updates = self.gather_edges(lg, slot, ctx, mutation_log)
            edges += len(slot.in_edges)
            vertices += 1
            elided += self.compute_master(lg, slot, acc, ctx, outbox,
                                          dirty, updates)
        return edges, vertices, elided

    def vertex_gather(self, lg, ctx, outbox: dict, partials_out: list,
                      mutation_log: dict | None = None) -> int:
        """One node's vertex-cut gather phase (phase 1).

        Local partials append to ``partials_out`` as ``(gid, acc)``;
        remote partials accumulate into per-master ``GatherBatch``
        outbox entries.  Returns the number of edges folded.
        """
        program = self.program
        combiner = self.combiner
        node = lg.node_id
        edges = 0
        for gid in (lg.active_masters_snapshot()
                    + lg.active_others_snapshot()):
            slot = lg.slot_of(gid)
            if not slot.in_edges:
                continue
            if not program.participates(gid, ctx):
                continue
            if combiner is None:
                acc, _updates = self.gather_edges(lg, slot, ctx,
                                                  mutation_log)
                contribs = None
            else:
                # Contribution-decomposed fold: same arithmetic and
                # order as gather_edges (the combiner declaration
                # guarantees it), but the per-edge terms stay visible
                # for the combining layer's accounting / raw shipping.
                contribs = []
                for src_pos, weight in slot.in_edges:
                    c = program.contribution(lg.view(src_pos), weight,
                                             slot.gid)
                    if c is not None:
                        contribs.append(c)
                op = self._op
                acc = program.gather_init()
                for c in contribs:
                    acc = c if acc is None else op(acc, c)
            edges += len(slot.in_edges)
            master_node = node if slot.is_master else slot.master_node
            if master_node == node:
                partials_out.append((gid, acc))
            elif combiner is not None and not self.combining:
                key = (master_node, MessageKind.GATHER)
                batch = outbox.get(key)
                if not isinstance(batch, RawGatherBatch):
                    batch = outbox[key] = RawGatherBatch()
                logical = BYTES_PER_VID + program.acc_nbytes(acc)
                physical = (BYTES_PER_VID
                            + sum(program.acc_nbytes(c) for c in contribs)
                            if contribs else logical)
                batch.append(gid, contribs, logical, physical)
            else:
                key = (master_node, MessageKind.GATHER)
                batch = outbox.get(key)
                if batch is None:
                    batch = outbox[key] = GatherBatch()
                folded = max(1, len(contribs)) if contribs is not None \
                    else None
                batch.append(gid, acc, program.acc_nbytes(acc), folded)
        return edges

    def fold_raw_gather(self, batch: RawGatherBatch) -> list:
        """Receiver-side fold: one combined accumulator per record."""
        return fold_raw_batch(batch, self.program)

    def master_fold_apply(self, lg, partials: dict, ctx, outbox: dict,
                          dirty: dict) -> tuple[int, int]:
        """One node's vertex-cut apply phase (phase 2).

        ``partials`` maps gid -> [(sender_node, acc)]; folds run in
        sender-node order for determinism.  Returns
        ``(vertices_computed, syncs_elided)``.
        """
        program = self.program
        vertices = 0
        elided = 0
        for gid in lg.active_masters_snapshot():
            slot = lg.slot_of(gid)
            if not program.participates(gid, ctx):
                continue
            acc = program.gather_init()
            for _, part in sorted(partials.get(gid, ()),
                                  key=lambda item: item[0]):
                acc = program.gather_sum(acc, part)
            vertices += 1
            elided += self.compute_master(lg, slot, acc, ctx, outbox,
                                          dirty)
        return vertices, elided

    # -- vertex-cut activity broadcast (phase 0) ------------------------

    def broadcast_build(self, lg, pending) -> dict:
        """Masters whose activity changed since replicas last heard
        build the flag-broadcast outbox; clears ``replicas_known_active``
        drift for the gids shipped."""
        outbox: dict = {}
        for gid in sorted(pending):
            if gid not in lg.index_of:
                continue
            slot = lg.slot_of(gid)
            if not slot.is_master \
                    or slot.replicas_known_active == slot.active:
                continue
            for replica_node, _is_mirror in slot.meta.sync_targets():
                key = (replica_node, MessageKind.CONTROL)
                batch = outbox.get(key)
                if batch is None:
                    batch = outbox[key] = ActiveBroadcastBatch()
                batch.append(gid, slot.active)
            slot.replicas_known_active = slot.active
        return outbox

    def broadcast_apply(self, lg, batch) -> None:
        for gid, active in zip(batch.gids, batch.actives):
            lg.set_active(lg.slot_of(gid), active)

    # -- sync application -----------------------------------------------

    def apply_sync_batch(self, lg, batch, dirty: dict) -> None:
        """Stage every record of one received sync batch."""
        full = batch.full_state
        for i, gid in enumerate(batch.gids):
            slot = lg.slot_of(gid)
            slot.pending_value = batch.values[i]
            slot.has_pending = True
            slot.pending_activates = batch.activates(i)
            if full:
                slot.pending_active = batch.self_active(i)
                updates = batch.edge_updates[i]
                if updates and slot.full_edges is not None:
                    for idx, weight in updates:
                        gid0, pos, _old = slot.full_edges[idx]
                        slot.full_edges[idx] = (gid0, pos, weight)
            dirty[gid] = slot

    def apply_scalar_sync(self, lg, payload, dirty: dict) -> None:
        """Stage one legacy scalar sync payload (recovery paths, tests)."""
        slot = lg.slot_of(payload.gid)
        slot.pending_value = payload.value
        slot.has_pending = True
        slot.pending_activates = payload.activates
        if isinstance(payload, MirrorSyncPayload):
            slot.pending_active = payload.self_active
            if payload.edge_updates and slot.full_edges is not None:
                for idx, weight in payload.edge_updates:
                    gid0, pos, _old = slot.full_edges[idx]
                    slot.full_edges[idx] = (gid0, pos, weight)
        dirty[payload.gid] = slot

    # -- barrier commit --------------------------------------------------

    def commit_stage1(self, lg, dirty: dict,
                      iteration: int) -> list[tuple[int, int]]:
        """Scatter local activations for the staged updates.

        Returns the remote activation signals this node must send, as
        ``(dst_master_node, gid)`` pairs (possibly with duplicates;
        the backend dedups globally, matching the engine's signal set).

        Committed state stays untouched until :meth:`finalize_commit` —
        everything staged here lives in pending fields and
        ``next_active`` flags, all reverted by ``clear_pending``.  That
        makes the whole commit exchange abortable up to the finalize
        round: a backend that loses a worker mid-commit can abort the
        survivors and redo the iteration bit-identically.
        """
        signals: list[tuple[int, int]] = []
        # Snapshot: activation marking adds targets to the dirty map.
        for slot in list(dirty.values()):
            if not slot.has_pending:
                continue
            if slot.pending_activates:
                for dst_pos in slot.out_edges:
                    target = lg.slots[dst_pos]
                    if target is None:
                        continue
                    if target.is_master:
                        target.next_active = True
                        dirty[target.gid] = target
                    else:
                        signals.append((target.master_node, target.gid))
        return signals

    def apply_activations(self, lg, gids, dirty: dict) -> None:
        """Mark remote activation signals received for local masters."""
        for gid in gids:
            slot = lg.slot_of(gid)
            slot.next_active = True
            dirty[gid] = slot

    def finalize_commit(self, lg, dirty: dict,
                        iteration: int) -> list[int]:
        """Commit pending values and finalise active flags — the point
        of no return of the superstep.

        Returns the master gids whose activity now differs from what
        their replicas believe (vertex-cut broadcast backlog; always
        empty under edge-cut).
        """
        stale: list[int] = []
        for slot in dirty.values():
            if slot.has_pending:
                slot.value = slot.pending_value
                slot.last_activates = slot.pending_activates
                slot.last_update_iter = iteration
            if slot.is_master:
                self_part = slot.has_pending and slot.pending_active
                if slot.has_pending:
                    # Track the self-active flag the mirrors just
                    # received, so recovery can rebuild them.
                    slot.mirror_self_active = slot.pending_active
                lg.set_active(slot, bool(self_part or slot.next_active))
                if (not self.is_edge_cut
                        and slot.active != slot.replicas_known_active):
                    stale.append(slot.gid)
            elif slot.is_mirror and slot.has_pending:
                # Mirrors track the master's self-sustained activity;
                # remote activations are replayed at recovery.
                slot.mirror_self_active = slot.pending_active
            slot.clear_pending()
        return stale
