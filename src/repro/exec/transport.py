"""Transport implementations (DESIGN.md §12).

:class:`LocalHub` is the extracted in-memory queue structure the
simulator's ``Network`` runs on (per-destination FIFO lists with
purge-by-predicate for crash semantics).  :class:`LocalTransport`
exposes the same structure through the :class:`~repro.exec.base.
Transport` endpoint contract, and :class:`PipeTransport` implements
that contract over ``multiprocessing`` pipe connections — the
multiprocessing backend's worker side.

Both endpoint implementations satisfy the shared contract suite in
``tests/test_transport_contract.py``: lossless, FIFO per sender,
backpressure visible via :meth:`~repro.exec.base.Transport.pending`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.exec.base import Transport, TransportClosed


class LocalHub:
    """Per-destination FIFO queues with crash-purge support.

    The queue mechanics behind the simulator ``Network``'s inbox and
    delayed-inbox maps: append/drain are O(1) amortised, queue keys
    never linger empty (crashed-node ids must not accumulate across
    rebirth cycles), and :meth:`remove` supports the purge-by-sender
    crash semantics.
    """

    def __init__(self) -> None:
        self._queues: dict[int, list] = {}

    def __len__(self) -> int:
        """Total queued items across all destinations (so an empty hub
        is falsy, like the plain dict it replaced)."""
        return sum(len(queue) for queue in self._queues.values())

    def append(self, dst: int, item: Any) -> None:
        queue = self._queues.get(dst)
        if queue is None:
            queue = self._queues[dst] = []
        queue.append(item)

    def drain(self, dst: int) -> list:
        """Remove and return the destination's whole queue (FIFO order)."""
        return self._queues.pop(dst, [])

    def popleft(self, dst: int) -> Any:
        """Dequeue the oldest item for ``dst`` (raises ``IndexError``
        when empty)."""
        queue = self._queues[dst]
        item = queue.pop(0)
        if not queue:
            del self._queues[dst]
        return item

    def size(self, dst: int) -> int:
        return len(self._queues.get(dst, ()))

    def dsts(self) -> set[int]:
        """Destinations currently holding at least one queued item."""
        return set(self._queues)

    def remove(self, predicate: Callable[[Any], bool]) -> list:
        """Remove and return every queued item matching ``predicate``,
        deleting queues it empties."""
        removed: list = []
        for dst in list(self._queues):
            queue = self._queues[dst]
            kept = [item for item in queue if not predicate(item)]
            if len(kept) == len(queue):
                continue
            removed.extend(item for item in queue if predicate(item))
            if kept:
                self._queues[dst] = kept
            else:
                del self._queues[dst]
        return removed


class LocalRouter:
    """A set of in-process :class:`LocalTransport` endpoints sharing
    one :class:`LocalHub` — the deterministic single-process analogue
    of the pipe mesh."""

    def __init__(self) -> None:
        self._hub = LocalHub()
        self._ranks: set[int] = set()
        self._closed: set[int] = set()

    def endpoint(self, rank: int) -> "LocalTransport":
        self._ranks.add(rank)
        return LocalTransport(self, rank)


class LocalTransport(Transport):
    """In-process endpoint over a shared :class:`LocalHub`.

    Single-threaded by design (the simulator is single-threaded): a
    ``recv`` on an empty queue raises ``TimeoutError`` immediately —
    no other thread could ever fill it within the timeout.
    """

    def __init__(self, router: LocalRouter, rank: int):
        self._router = router
        self.rank = rank

    def send(self, dst: int, frame: Any) -> None:
        router = self._router
        if self.rank in router._closed:
            raise TransportClosed(f"endpoint {self.rank} is closed")
        if dst not in router._ranks or dst in router._closed:
            raise TransportClosed(f"no live endpoint for rank {dst}")
        router._hub.append(dst, (self.rank, frame))

    def recv(self, timeout: float | None = None) -> tuple[int, Any]:
        if self._router._hub.size(self.rank) == 0:
            raise TimeoutError(f"no frame queued for rank {self.rank}")
        return self._router._hub.popleft(self.rank)

    def poll(self, timeout: float = 0.0) -> bool:
        return self._router._hub.size(self.rank) > 0

    def pending(self) -> int:
        return self._router._hub.size(self.rank)

    def close(self) -> None:
        self._router._closed.add(self.rank)
        self._router._hub.drain(self.rank)


class PipeTransport(Transport):
    """Endpoint over ``multiprocessing`` pipe connections, one per peer.

    Frames buffered inside the OS pipe are drained into a local deque
    on demand, so :meth:`pending` reflects genuine backpressure and
    per-sender FIFO order is preserved (each connection is itself a
    FIFO byte stream).
    """

    def __init__(self, rank: int, conns: dict[int, Any]):
        self.rank = rank
        self._conns = dict(conns)
        self._buffer: deque[tuple[int, Any]] = deque()
        self._closed = False

    def send(self, dst: int, frame: Any) -> None:
        if self._closed:
            raise TransportClosed(f"endpoint {self.rank} is closed")
        conn = self._conns.get(dst)
        if conn is None:
            raise TransportClosed(f"no connection to rank {dst}")
        try:
            conn.send(frame)
        except (BrokenPipeError, OSError) as exc:
            raise TransportClosed(f"peer {dst} is gone") from exc

    def _drain_available(self) -> None:
        for src in list(self._conns):
            conn = self._conns[src]
            try:
                while conn.poll(0):
                    self._buffer.append((src, conn.recv()))
            except (EOFError, BrokenPipeError, OSError):
                del self._conns[src]

    def recv(self, timeout: float | None = None) -> tuple[int, Any]:
        from multiprocessing.connection import wait

        self._drain_available()
        if self._buffer:
            return self._buffer.popleft()
        if not self._conns:
            raise TransportClosed(f"all peers of rank {self.rank} are gone")
        ready = wait(list(self._conns.values()), timeout)
        if not ready:
            raise TimeoutError(f"no frame within {timeout}s")
        self._drain_available()
        if self._buffer:
            return self._buffer.popleft()
        if not self._conns:
            raise TransportClosed(f"all peers of rank {self.rank} are gone")
        raise TimeoutError(f"no frame within {timeout}s")

    def poll(self, timeout: float = 0.0) -> bool:
        from multiprocessing.connection import wait

        self._drain_available()
        if self._buffer:
            return True
        if not self._conns:
            return False
        return bool(wait(list(self._conns.values()), timeout))

    def pending(self) -> int:
        self._drain_available()
        return len(self._buffer)

    def close(self) -> None:
        self._closed = True
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._conns.clear()
        self._buffer.clear()


def pipe_pair(rank_a: int, rank_b: int) -> tuple[PipeTransport, PipeTransport]:
    """Two connected :class:`PipeTransport` endpoints (duplex)."""
    import multiprocessing

    end_a, end_b = multiprocessing.Pipe(duplex=True)
    return (
        PipeTransport(rank_a, {rank_b: end_a}),
        PipeTransport(rank_b, {rank_a: end_b}),
    )
