"""Execution-backend and transport contracts (DESIGN.md §12).

A :class:`Transport` is one endpoint of a lossless, per-sender-FIFO
frame channel between ranks.  The in-process implementation
(:class:`repro.exec.transport.LocalTransport`) backs the transport
contract tests and mirrors what the simulator's ``Network`` queues do;
the pipe implementation (:class:`repro.exec.transport.PipeTransport`)
carries the multiprocessing backend's coordinator/worker frames.

An :class:`ExecutionBackend` turns ``(graph, BackendSpec)`` into a
:class:`BackendRunResult` whose fields are directly comparable across
backends — the cross-backend differential oracle asserts bit-identical
``values`` and equal logical-message accounting between the simulator
and the multiprocessing backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any


class TransportClosed(Exception):
    """The peer endpoint is gone (closed pipe, dead process)."""


class BackendError(RuntimeError):
    """A backend cannot run the spec — unsupported feature combination
    or a wedged/failed worker outside the recoverable protocol points."""


class Transport(ABC):
    """One endpoint of a lossless frame channel between ranks.

    Contract (exercised by ``tests/test_transport_contract.py`` for
    every implementation):

    * **FIFO per sender** — frames from rank A arrive at rank B in the
      order A sent them; no frame is dropped, duplicated or reordered.
    * **Backpressure visibility** — frames queue losslessly while the
      receiver does not drain; :meth:`pending` reports the number of
      frames currently buffered for this endpoint.
    * **Typed frames survive the trip** — any value the
      :mod:`repro.exec.serialize` codec can encode (including all four
      columnar batch types) round-trips unchanged.
    """

    #: The rank this endpoint belongs to.
    rank: int = -1

    @abstractmethod
    def send(self, dst: int, frame: Any) -> None:
        """Queue ``frame`` toward rank ``dst`` (never blocks the
        protocol; raises :class:`TransportClosed` if the peer is gone).
        """

    @abstractmethod
    def recv(self, timeout: float | None = None) -> tuple[int, Any]:
        """Dequeue the next ``(src, frame)`` pair for this endpoint.

        Blocks up to ``timeout`` seconds (``None`` = forever); raises
        ``TimeoutError`` on expiry and :class:`TransportClosed` when
        the channel is gone with nothing buffered.
        """

    @abstractmethod
    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a frame is available to :meth:`recv` right now."""

    @abstractmethod
    def pending(self) -> int:
        """Frames currently buffered for this endpoint (not yet
        received) — the backpressure signal."""

    @abstractmethod
    def close(self) -> None:
        """Release the endpoint; further sends raise
        :class:`TransportClosed`."""


@dataclass(frozen=True)
class BackendSpec:
    """Backend-independent job description.

    Field names and defaults mirror :func:`repro.api.make_engine`, so a
    spec maps 1:1 onto a simulator engine; the multiprocessing backend
    builds the identical engine in the parent and forks its partitions
    into worker processes.  ``failures`` schedules fail-stop events as
    ``(iteration, (ranks...), phase)`` triples — cooperative crashes on
    the simulator, real ``SIGKILL`` on the multiprocessing backend.
    """

    algorithm: str
    num_nodes: int = 4
    partition: str = "hash_edge_cut"
    ft_mode: str = "replication"
    ft_level: int = 1
    recovery: str = "rebirth"
    max_iterations: int = 30
    batch_syncs: bool = True
    sync_elision: bool = True
    vectorized: bool = True
    #: Message-combining layer (DESIGN.md §15): off ships raw per-edge
    #: gather contributions instead of sender-folded partials.
    combining: bool = True
    num_standby: int = 1
    seed: int = 2014
    #: Sorted ``(key, value)`` pairs forwarded to the vertex program
    #: (e.g. ``(("source", 3),)`` for SSSP); a tuple so specs stay
    #: hashable.
    algorithm_kwargs: tuple = ()
    failures: tuple = ()
    #: Elastic-membership schedule (DESIGN.md §14): sorted
    #: ``(iteration, kind, target)`` or ``(iteration, kind, target,
    #: count)`` tuples with kind one of ``join`` / ``drain`` / ``flap``
    #: (``target`` is ignored for joins — pass ``None``).
    membership: tuple = ()
    #: Adaptive replication-floor band (replication mode only); both
    #: ``None`` keeps the static ``ft_level`` floor.
    ft_level_min: int | None = None
    ft_level_max: int | None = None
    #: Failure-detector tuning overrides; ``None`` keeps each backend's
    #: default (the simulator's ``ClusterConfig`` values, or the
    #: multiprocessing backend's wall-clock-calibrated
    #: ``MP_HEARTBEAT_*`` constants from :mod:`repro.config`).
    heartbeat_interval_s: float | None = None
    heartbeat_misses: int | None = None
    #: Sorted ``(key, value)`` pairs configuring the online
    #: read-serving layer (DESIGN.md §13); empty = no serving.  Keys
    #: mix :class:`repro.serve.workload.OpenLoopWorkload` arguments
    #: (``num_queries``, ``qps``, ``zipf_s``, ``seed``, ...) with the
    #: routing knobs ``policy`` and ``route_seed`` plus the cursor's
    #: ``expected_supersteps`` (defaults to ``max_iterations``).  Both
    #: backends build the same workload and report the same
    #: ``extra["serve"]`` shape.
    serve: tuple = ()

    def serve_config(self) -> dict | None:
        """The serve kv-pairs as a dict, or ``None`` when not serving."""
        if not self.serve:
            return None
        cfg = dict(self.serve)
        cfg.setdefault("expected_supersteps", self.max_iterations)
        return cfg

    def engine_kwargs(self) -> dict:
        """The :func:`repro.api.make_engine` keyword arguments."""
        return {
            "algorithm": self.algorithm,
            "num_nodes": self.num_nodes,
            "partition": self.partition,
            "ft_mode": self.ft_mode,
            "ft_level": self.ft_level,
            "recovery": self.recovery,
            "max_iterations": self.max_iterations,
            "batch_syncs": self.batch_syncs,
            "sync_elision": self.sync_elision,
            "vectorized": self.vectorized,
            "combining": self.combining,
            "num_standby": self.num_standby,
            "seed": self.seed,
            "algorithm_kwargs": dict(self.algorithm_kwargs),
            "membership": self.membership,
            "ft_level_min": self.ft_level_min,
            "ft_level_max": self.ft_level_max,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "heartbeat_misses": self.heartbeat_misses,
        }


@dataclass
class BackendRunResult:
    """Cross-backend-comparable outcome of one job run.

    ``values`` maps every vertex gid to its committed value;
    ``msgs_by_kind`` counts logical records per message kind (string
    keys, the paper's message unit); ``total_batches`` counts physical
    transfers.  The differential oracle compares ``values``,
    ``total_msgs``, ``msgs_by_kind`` and ``syncs_elided`` exactly.
    """

    backend: str
    values: dict[int, Any]
    iterations: int
    total_msgs: int
    total_bytes: int
    total_batches: int
    msgs_by_kind: dict[str, int]
    syncs_elided: int
    wall_s: float
    halted: bool
    failures_recovered: int = 0
    #: Physical gather records saved by combining (pre-combine minus
    #: on-the-wire; DESIGN.md §15) and the corresponding ratio.
    combined_records: int = 0
    combine_ratio: float = 1.0
    extra: dict = field(default_factory=dict)


class ExecutionBackend(ABC):
    """Runs one :class:`BackendSpec` against a graph."""

    name = "abstract"

    @abstractmethod
    def run(self, graph, spec: BackendSpec) -> BackendRunResult:
        """Execute the job to completion and return the outcome."""

    def close(self) -> None:
        """Release backend resources (worker processes, pipes)."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
