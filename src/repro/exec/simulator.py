"""The deterministic in-process simulator as an execution backend.

A thin adapter: :class:`SimulatorBackend` builds the same ``Engine``
the rest of the repo uses (tests, chaos, cost model — semantics
unchanged) and repackages its outcome as a
:class:`~repro.exec.base.BackendRunResult` for cross-backend
comparison.
"""

from __future__ import annotations

import time

from repro.api import make_engine
from repro.exec.base import BackendRunResult, BackendSpec, ExecutionBackend


class SimulatorBackend(ExecutionBackend):
    """Runs a spec on the single-process simulator ``Engine``."""

    name = "simulator"

    def run(self, graph, spec: BackendSpec) -> BackendRunResult:
        engine = make_engine(graph, **spec.engine_kwargs())
        for iteration, ranks, phase in spec.failures:
            engine.schedule_failure(iteration, list(ranks), phase)
        start = time.perf_counter()
        result = engine.run()
        wall_s = time.perf_counter() - start
        totals = engine.cluster.network.totals
        return BackendRunResult(
            backend=self.name,
            values=result.values,
            iterations=result.num_iterations,
            total_msgs=totals.total_msgs,
            total_bytes=totals.total_bytes,
            total_batches=totals.total_batches,
            msgs_by_kind={
                kind.value: count
                for kind, count in totals.msgs_by_kind.items()
                if count
            },
            syncs_elided=engine.syncs_elided,
            wall_s=wall_s,
            halted=result.halted_early,
            failures_recovered=len(result.recoveries),
            extra={
                "ft_level_current": result.ft_level_current,
                "ft_degraded": result.ft_degraded,
            },
        )
