"""The deterministic in-process simulator as an execution backend.

A thin adapter: :class:`SimulatorBackend` builds the same ``Engine``
the rest of the repo uses (tests, chaos, cost model — semantics
unchanged) and repackages its outcome as a
:class:`~repro.exec.base.BackendRunResult` for cross-backend
comparison.  When the spec carries a serve configuration the backend
attaches a :class:`~repro.serve.server.ServePump`, so reads interleave
with supersteps and recovery at every engine phase hook, and returns
the serve report (and responses, for the differential check) in
``extra["serve"]`` / ``extra["serve_responses"]``.
"""

from __future__ import annotations

import time

from repro.api import make_engine
from repro.exec.base import BackendRunResult, BackendSpec, ExecutionBackend
from repro.serve.server import ReadServer, ServePump, WorkloadCursor
from repro.serve.workload import workload_from_config


class SimulatorBackend(ExecutionBackend):
    """Runs a spec on the single-process simulator ``Engine``."""

    name = "simulator"

    def run(self, graph, spec: BackendSpec) -> BackendRunResult:
        engine = make_engine(graph, **spec.engine_kwargs())
        for iteration, ranks, phase in spec.failures:
            engine.schedule_failure(iteration, list(ranks), phase)
        serve_cfg = spec.serve_config()
        pump = None
        if serve_cfg is not None:
            workload = workload_from_config(graph.num_vertices, serve_cfg)
            server = ReadServer(
                engine,
                seed=serve_cfg.get("route_seed", 0),
                policy=serve_cfg.get("policy", "round_robin"),
                keep_responses=serve_cfg.get("keep_responses", True),
                neighborhood_limit=workload.neighborhood_limit)
            cursor = WorkloadCursor(workload,
                                    serve_cfg["expected_supersteps"])
            pump = ServePump(server, cursor)
            engine.attach_serve(pump)
        start = time.perf_counter()
        result = engine.run()
        wall_s = time.perf_counter() - start
        totals = engine.cluster.network.totals
        extra = {
            "ft_level_current": result.ft_level_current,
            "ft_degraded": result.ft_degraded,
        }
        if result.membership:
            extra["membership"] = result.membership
        if result.recoveries:
            extra["recoveries"] = [
                {"strategy": r.strategy, "at_iteration": r.at_iteration,
                 "failed_nodes": list(r.failed_nodes),
                 "detection_s": r.detection_s,
                 "reconstruct_s": r.reconstruct_s,
                 "replay_s": r.replay_s, "reload_s": r.reload_s,
                 "recovery_bytes": r.recovery_bytes}
                for r in result.recoveries]
        if pump is not None:
            pump.finish()
            extra["serve"] = pump.server.report()
            extra["serve_responses"] = pump.server.responses
        return BackendRunResult(
            backend=self.name,
            values=result.values,
            iterations=result.num_iterations,
            total_msgs=totals.total_msgs,
            total_bytes=totals.total_bytes,
            total_batches=totals.total_batches,
            msgs_by_kind={
                kind.value: count
                for kind, count in totals.msgs_by_kind.items()
                if count
            },
            syncs_elided=engine.syncs_elided,
            wall_s=wall_s,
            halted=result.halted_early,
            failures_recovered=len(result.recoveries),
            combined_records=result.combined_records,
            combine_ratio=result.combine_ratio,
            extra=extra,
        )
