"""Pluggable execution backends (DESIGN.md §12).

The same per-node superstep protocol (:mod:`repro.exec.protocol`) runs
on two backends:

* :mod:`repro.exec.simulator` — the deterministic in-process simulator
  (the ``Engine``), unchanged semantics for tests, chaos, and the cost
  model;
* :mod:`repro.exec.mp` — real ``multiprocessing.Process`` workers, one
  per cluster node, exchanging columnar batches over pipes, with real
  ``SIGKILL`` failures detected by heartbeat.

``repro.exec.base`` defines the shared :class:`~repro.exec.base.Transport`
frame contract and the :class:`~repro.exec.base.BackendSpec` /
:class:`~repro.exec.base.BackendRunResult` types; ``repro.exec.serialize``
is the frame codec for the four columnar batch types.

Every export resolves lazily: ``repro.cluster.network`` imports
``repro.exec.transport`` (for the extracted ``LocalHub`` queues) while
``repro.exec.protocol`` imports ``repro.cluster.network`` (for
``MessageKind``) — an eager package ``__init__`` would turn that pair
into an import cycle, and the backend modules would additionally drag
``repro.api`` back into the engine.
"""

from __future__ import annotations

__all__ = [
    "BackendError",
    "BackendRunResult",
    "BackendSpec",
    "ExecutionBackend",
    "MultiprocessingBackend",
    "NodeProtocol",
    "SimulatorBackend",
    "Transport",
]

_EXPORTS = {
    "BackendError": "repro.exec.base",
    "BackendRunResult": "repro.exec.base",
    "BackendSpec": "repro.exec.base",
    "ExecutionBackend": "repro.exec.base",
    "MultiprocessingBackend": "repro.exec.mp",
    "NodeProtocol": "repro.exec.protocol",
    "SimulatorBackend": "repro.exec.simulator",
    "Transport": "repro.exec.base",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
