"""Wire codec for the five columnar batch types (DESIGN.md §12, §15).

Batches cross process boundaries as plain tuples of primitive columns
— no class identity on the wire — so the multiprocessing transport
never depends on pickle reconstructing engine classes, and a decoded
batch is rebuilt through the same ``from_columns`` adoption path the
vectorized executor uses (byte accounting stays identical).

The encoded header exposes both accounting tiers without
materialising the batch object (DESIGN.md §15): the *physical* numbers
(:func:`encoded_nbytes` / :func:`encoded_records`) describe what is
actually on the wire after combining, while the *logical* numbers
(:func:`encoded_logical_nbytes` / :func:`encoded_logical_records`)
describe the combined-equivalent units the coordinator charges so the
paper's cost model — and mp-vs-simulator message/byte parity — is
independent of the combining knob.  :func:`encoded_precombine_records`
adds the pre-combine contribution count feeding the combine-ratio
counters.  The tiers only diverge for gather payloads; every other
batch type reports the same number in both.
"""

from __future__ import annotations

from typing import Any

from repro.engine.messages import (
    ActivateBatch,
    ActiveBroadcastBatch,
    GatherBatch,
    RawGatherBatch,
    SyncBatch,
)

TAG_SYNC = "sync"
TAG_GATHER = "gather"
TAG_RAW_GATHER = "raw_gather"
TAG_ACTIVATE = "activate"
TAG_BROADCAST = "broadcast"

#: Encoded batch: (tag, physical_nbytes, physical_records,
#: logical_nbytes, logical_records, precombine_records, *columns).
_TAG = 0
_NBYTES = 1
_RECORDS = 2
_LOGICAL_NBYTES = 3
_LOGICAL_RECORDS = 4
_PRECOMBINE_RECORDS = 5


def _header(tag: str, batch: Any) -> tuple:
    phys_nbytes = getattr(batch, "physical_nbytes", batch.nbytes)()
    phys_records = getattr(batch, "physical_record_count",
                           batch.record_count)
    pre_records = getattr(batch, "precombine_record_count",
                          batch.record_count)
    return (tag, phys_nbytes, phys_records, batch.nbytes(),
            batch.record_count, pre_records)


def encode_batch(batch: Any) -> tuple:
    """Flatten one columnar batch into a primitive tuple."""
    if isinstance(batch, SyncBatch):
        return _header(TAG_SYNC, batch) + (
            batch.full_state,
            list(batch.gids),
            list(batch.values),
            list(batch.flags),
            list(batch.sizes),
            list(batch.edge_updates) if batch.full_state else None,
        )
    if isinstance(batch, GatherBatch):
        return _header(TAG_GATHER, batch) + (
            list(batch.gids),
            list(batch.accs),
            list(batch.sizes),
            list(batch.folded) if batch.folded is not None else None,
        )
    if isinstance(batch, RawGatherBatch):
        return _header(TAG_RAW_GATHER, batch) + (
            list(batch.gids),
            list(batch.counts),
            list(batch.contribs),
            list(batch.sizes),
            list(batch.phys_sizes),
        )
    if isinstance(batch, ActivateBatch):
        return _header(TAG_ACTIVATE, batch) + (list(batch.gids),)
    if isinstance(batch, ActiveBroadcastBatch):
        return _header(TAG_BROADCAST, batch) + (
            list(batch.gids),
            list(batch.actives),
        )
    raise TypeError(f"not a columnar batch: {type(batch).__name__}")


def decode_batch(enc: tuple) -> Any:
    """Rebuild the batch a tuple from :func:`encode_batch` describes."""
    tag, cols = enc[_TAG], enc[_PRECOMBINE_RECORDS + 1:]
    if tag == TAG_SYNC:
        full_state, gids, values, flags, sizes, edge_updates = cols
        return SyncBatch.from_columns(
            gids,
            values,
            flags,
            sizes,
            full_state=full_state,
            edge_updates=edge_updates,
        )
    if tag == TAG_GATHER:
        gids, accs, sizes, folded = cols
        return GatherBatch.from_columns(gids, accs, sizes, folded)
    if tag == TAG_RAW_GATHER:
        gids, counts, contribs, sizes, phys_sizes = cols
        return RawGatherBatch.from_columns(gids, counts, contribs,
                                           sizes, phys_sizes)
    if tag == TAG_ACTIVATE:
        return ActivateBatch(cols[0])
    if tag == TAG_BROADCAST:
        gids, actives = cols
        batch = ActiveBroadcastBatch()
        batch.gids = list(gids)
        batch.actives = list(actives)
        return batch
    raise ValueError(f"unknown batch tag: {tag!r}")


def encoded_nbytes(enc: tuple) -> int:
    """Post-combine physical payload bytes on the wire (header
    excluded)."""
    return enc[_NBYTES]


def encoded_records(enc: tuple) -> int:
    """Post-combine physical records on the wire."""
    return enc[_RECORDS]


def encoded_logical_nbytes(enc: tuple) -> int:
    """Combined-equivalent payload bytes — the cost-model unit the
    coordinator charges regardless of the combining knob."""
    return enc[_LOGICAL_NBYTES]


def encoded_logical_records(enc: tuple) -> int:
    """Combined-equivalent logical records — the paper's message
    unit."""
    return enc[_LOGICAL_RECORDS]


def encoded_precombine_records(enc: tuple) -> int:
    """Pre-combine contribution count (combine-ratio numerator)."""
    return enc[_PRECOMBINE_RECORDS]
