"""Wire codec for the four columnar batch types (DESIGN.md §12).

Batches cross process boundaries as plain tuples of primitive columns
— no class identity on the wire — so the multiprocessing transport
never depends on pickle reconstructing engine classes, and a decoded
batch is rebuilt through the same ``from_columns`` adoption path the
vectorized executor uses (byte accounting stays identical).

The encoded form also exposes the two numbers the coordinator's
traffic accounting needs (record count and payload bytes) without
materialising the batch object.
"""

from __future__ import annotations

from typing import Any

from repro.engine.messages import (
    ActivateBatch,
    ActiveBroadcastBatch,
    GatherBatch,
    SyncBatch,
)

TAG_SYNC = "sync"
TAG_GATHER = "gather"
TAG_ACTIVATE = "activate"
TAG_BROADCAST = "broadcast"

#: Encoded batch: (tag, payload_nbytes, record_count, *columns).
_TAG = 0
_NBYTES = 1
_RECORDS = 2


def encode_batch(batch: Any) -> tuple:
    """Flatten one columnar batch into a primitive tuple."""
    if isinstance(batch, SyncBatch):
        return (
            TAG_SYNC,
            batch.nbytes(),
            batch.record_count,
            batch.full_state,
            list(batch.gids),
            list(batch.values),
            list(batch.flags),
            list(batch.sizes),
            list(batch.edge_updates) if batch.full_state else None,
        )
    if isinstance(batch, GatherBatch):
        return (
            TAG_GATHER,
            batch.nbytes(),
            batch.record_count,
            list(batch.gids),
            list(batch.accs),
            list(batch.sizes),
        )
    if isinstance(batch, ActivateBatch):
        return (TAG_ACTIVATE, batch.nbytes(), batch.record_count, list(batch.gids))
    if isinstance(batch, ActiveBroadcastBatch):
        return (
            TAG_BROADCAST,
            batch.nbytes(),
            batch.record_count,
            list(batch.gids),
            list(batch.actives),
        )
    raise TypeError(f"not a columnar batch: {type(batch).__name__}")


def decode_batch(enc: tuple) -> Any:
    """Rebuild the batch a tuple from :func:`encode_batch` describes."""
    tag = enc[_TAG]
    if tag == TAG_SYNC:
        _, _, _, full_state, gids, values, flags, sizes, edge_updates = enc
        return SyncBatch.from_columns(
            gids,
            values,
            flags,
            sizes,
            full_state=full_state,
            edge_updates=edge_updates,
        )
    if tag == TAG_GATHER:
        _, _, _, gids, accs, sizes = enc
        return GatherBatch.from_columns(gids, accs, sizes)
    if tag == TAG_ACTIVATE:
        return ActivateBatch(enc[3])
    if tag == TAG_BROADCAST:
        _, _, _, gids, actives = enc
        batch = ActiveBroadcastBatch()
        batch.gids = list(gids)
        batch.actives = list(actives)
        return batch
    raise ValueError(f"unknown batch tag: {tag!r}")


def encoded_nbytes(enc: tuple) -> int:
    """Payload bytes of an encoded batch (header excluded)."""
    return enc[_NBYTES]


def encoded_records(enc: tuple) -> int:
    """Logical records carried by an encoded batch."""
    return enc[_RECORDS]
