"""Exception hierarchy for the Imitator reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  The sub-classes mirror the major subsystems: cluster
substrate, graph loading/partitioning, engine execution, and fault
tolerance.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class ClusterError(ReproError):
    """Base class for cluster-substrate failures."""


class NodeCrashedError(ClusterError):
    """An operation was attempted on a node that has crashed (fail-stop)."""

    def __init__(self, node_id: int, operation: str = "operation"):
        self.node_id = node_id
        self.operation = operation
        super().__init__(f"node {node_id} has crashed; {operation} rejected")


class UnknownNodeError(ClusterError):
    """A node id outside the cluster membership was referenced."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        super().__init__(f"unknown node id: {node_id}")


class StorageError(ClusterError):
    """Persistent-store (simulated HDFS) failure, e.g. a missing snapshot."""


class BarrierBrokenError(ClusterError):
    """A global barrier was abandoned because membership changed."""

    def __init__(self, failed_nodes: tuple[int, ...]):
        self.failed_nodes = failed_nodes
        names = ", ".join(str(n) for n in failed_nodes)
        super().__init__(f"barrier broken; failed nodes: {names}")


class GraphError(ReproError):
    """Base class for graph construction and I/O errors."""


class GraphFormatError(GraphError):
    """An edge-list or adjacency file could not be parsed."""


class PartitionError(ReproError):
    """A partitioning is malformed (bad node count, unassigned edges...)."""


class EngineError(ReproError):
    """Base class for graph-engine execution errors."""


class VertexProgramError(EngineError):
    """A user vertex program raised or returned an invalid value."""


class FaultToleranceError(ReproError):
    """Base class for fault-tolerance subsystem errors."""


class UnrecoverableFailureError(FaultToleranceError):
    """Every recovery rung failed; the run cannot continue.

    Raised when a vertex lost every replica (master and all mirrors) and
    no checkpoint exists to fall back to, or when no recovery mechanism
    is configured at all.  Carries structured context so callers and
    operators can see *which* rungs of the fallback ladder were tried
    before giving up (DESIGN.md §9).
    """

    def __init__(self, message: str, lost_vertices: int = 0,
                 rungs_attempted: tuple[str, ...] = (),
                 surviving_nodes: tuple[int, ...] = ()):
        self.lost_vertices = lost_vertices
        self.rungs_attempted = tuple(rungs_attempted)
        self.surviving_nodes = tuple(surviving_nodes)
        super().__init__(message)


class NoStandbyNodeError(FaultToleranceError):
    """Rebirth recovery was requested but no standby node is available."""


class CheckpointError(FaultToleranceError):
    """A checkpoint could not be written or read back."""
