"""Differential recovery oracles (DESIGN.md P4, paper Section 5).

The central correctness claim of the paper is that replication-based
recovery is *transparent*: a run that crashes and recovers converges to
exactly the state a failure-free run reaches.  The oracle makes that
claim executable for arbitrary seeded chaos schedules:

1. run the job failure-free (or reuse a cached baseline),
2. run the *same* ``(graph, algorithm, partitioner, ft-mode)`` job under
   a :class:`FailureSchedule` with the invariant checker attached,
3. compare converged vertex values one by one.

Any mismatch or invariant violation is reported with the schedule's
seed and a one-line reproduction command, so a red run in CI can be
replayed locally from the printed seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chaos.controller import ChaosController
from repro.chaos.invariants import InvariantChecker, MembershipInvariant
from repro.chaos.schedule import FailureSchedule
from repro.engine.engine import RunResult


def values_close(a: Any, b: Any, rel: float = 1e-9) -> bool:
    """Structural closeness: exact for ints/strs, relative for floats,
    element-wise for tuples (ALS factor vectors)."""
    if isinstance(a, tuple) and isinstance(b, tuple):
        return (len(a) == len(b)
                and all(values_close(x, y, rel) for x, y in zip(a, b)))
    if a == b:
        return True
    try:
        return abs(a - b) <= rel * max(abs(a), abs(b))
    except TypeError:
        return False


@dataclass
class OracleReport:
    """Outcome of one differential chaos run."""

    matches: bool
    schedule: FailureSchedule
    chaos_result: RunResult
    mismatches: list[tuple[int, Any, Any]] = field(default_factory=list)
    invariant_checks: int = 0
    fired: int = 0
    expired: int = 0
    command: str = ""

    @property
    def recoveries(self) -> int:
        return len(self.chaos_result.recoveries)

    def summary(self) -> str:
        """Failure message with everything needed to reproduce."""
        lines = [
            f"differential oracle: {len(self.mismatches)} mismatching "
            f"vertices after {self.recoveries} recoveries "
            f"({self.fired} chaos events fired, "
            f"{self.invariant_checks} invariant sweeps)",
            self.schedule.describe(),
        ]
        for gid, chaos_v, base_v in self.mismatches[:5]:
            lines.append(f"  vertex {gid}: chaos={chaos_v!r} "
                         f"baseline={base_v!r}")
        if self.command:
            lines.append(f"reproduce with: {self.command}")
        return "\n".join(lines)


def run_with_chaos(graph, algorithm, schedule: FailureSchedule, *,
                   check_invariants: bool = True, context: str = "",
                   **job_kwargs):
    """Run one job under a chaos schedule.

    Returns ``(result, controller, checker)``; ``checker`` is ``None``
    when invariant checking is disabled.  ``job_kwargs`` are passed to
    :func:`repro.api.make_engine` unchanged.
    """
    from repro.api import make_engine
    engine = make_engine(graph, algorithm, **job_kwargs)
    controller = ChaosController(schedule).attach(engine)
    checker = None
    if check_invariants:
        checker = InvariantChecker(context=context)
        engine.attach_chaos(checker)
        if schedule.has_membership_events:
            engine.attach_chaos(MembershipInvariant(context=context))
    result = engine.run()
    return result, controller, checker


def run_differential(graph, algorithm, schedule: FailureSchedule, *,
                     baseline: dict[int, Any] | None = None,
                     rel: float = 1e-9, check_invariants: bool = True,
                     command: str = "", **job_kwargs) -> OracleReport:
    """Differential oracle for one ``(job, schedule)`` pair.

    ``baseline`` short-circuits the failure-free run (callers sweeping
    many schedules over the same job should cache it); ``command`` is
    the reproduction command embedded in failure reports and invariant
    violations.
    """
    if baseline is None:
        from repro.api import run_job
        baseline = run_job(graph, algorithm, **job_kwargs).values
    context = command or schedule.describe()
    result, controller, checker = run_with_chaos(
        graph, algorithm, schedule, check_invariants=check_invariants,
        context=context, **job_kwargs)
    mismatches = [(gid, result.values.get(gid), base_v)
                  for gid, base_v in baseline.items()
                  if not values_close(result.values.get(gid), base_v, rel)]
    return OracleReport(
        matches=not mismatches,
        schedule=schedule,
        chaos_result=result,
        mismatches=mismatches,
        invariant_checks=checker.checks if checker else 0,
        fired=len(controller.fired_events),
        expired=len(controller.expired_events),
        command=command,
    )
