"""Deterministic failure-schedule DSL for chaos testing.

A :class:`FailureSchedule` is a declarative, fully seeded description of
every fault injected into one run: fail-stop crashes pinned to an
iteration and an engine phase, with targets picked by id or by predicate
(most-loaded, mirror-heaviest, ...), plus message-level fault
probabilities (duplicate / delay / drop) applied by the network's fault
injector.  Everything derives from a single integer seed, so any failing
run is reproducible from that seed alone.

Phases (intra-iteration order)
------------------------------
``after_commit``    right after the previous barrier commit, before the
                    superstep (detected leaving the barrier, no rollback);
``superstep_start`` the superstep began, nothing computed yet;
``gather``          mid-compute — a prefix of the nodes computed and sent
                    (edge-cut) / partial gathers are in flight (vertex-cut);
``sync``            all compute done, sync messages in flight;
``barrier``         entering the global barrier, just before detection;
``recovery``        while recovery of an earlier crash is in progress
                    (merged into one larger simultaneous failure).

Safety envelope: the random generator never schedules more crashes into
one iteration than ``max_concurrent`` (the fault-tolerance level K for
replication modes) — more would *correctly* be unrecoverable and prove
nothing — and message drops are off by default because silently losing a
message from a healthy node violates the paper's fail-stop model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.utils.rng import SeededRng

#: Crash phases in intra-iteration order (``after_commit`` of iteration
#: *i* happens before the compute of iteration *i*).
CRASH_PHASES = ("after_commit", "superstep_start", "gather", "sync",
                "barrier")
#: All phases accepted by events, including the recovery-concurrent
#: ones: ``recovery`` fires as recovery starts, ``recovery_protocol``
#: fires mid-recovery, after a protocol pass ran but before its result
#: is final (the engine then restarts recovery with the enlarged
#: failure set, Section 5.3.2).
EVENT_PHASES = CRASH_PHASES + ("recovery", "recovery_protocol")
#: Target predicates resolved against live engine state at fire time.
#: ``leader`` resolves to the current recovery leader (meaningful in
#: ``recovery``/``recovery_protocol`` phases, where one is elected).
TARGET_PREDICATES = ("random", "most-loaded", "least-loaded",
                     "mirror-heaviest", "standby", "leader")
#: Event kinds: fail-stop ``crash``, transient ``flap`` (heartbeats
#: missed, node returns below the death budget), and the elastic
#: membership events ``join``/``drain`` (DESIGN.md §14).
EVENT_KINDS = ("crash", "flap", "join", "drain")
#: Message-fault actions the network understands.
MESSAGE_ACTIONS = ("drop", "duplicate", "delay")


@dataclass(frozen=True)
class ChaosEvent:
    """One fault-injection point (crash, flap, join or drain)."""

    #: Engine iteration at which the event fires (for ``after_commit``
    #: this is the iteration *about to run*, matching
    #: ``Engine.schedule_failure`` semantics).
    iteration: int
    #: One of :data:`EVENT_PHASES`.
    phase: str = "gather"
    #: A concrete node id, or a predicate from :data:`TARGET_PREDICATES`.
    target: int | str = "random"
    #: Number of nodes crashed / flapped / joined by this event.
    count: int = 1
    #: One of :data:`EVENT_KINDS`.
    kind: str = "crash"

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ConfigError(
                f"event iteration must be >= 0, got {self.iteration}")
        if self.kind not in EVENT_KINDS:
            raise ConfigError(
                f"unknown chaos event kind {self.kind!r}; "
                f"choices: {EVENT_KINDS}")
        if self.phase not in EVENT_PHASES:
            raise ConfigError(
                f"unknown chaos phase {self.phase!r}; "
                f"choices: {EVENT_PHASES}")
        if self.kind in ("join", "drain"):
            # Membership changes only happen at commit barriers; the
            # after_commit hook is the first one past the barrier.
            if self.phase != "after_commit":
                raise ConfigError(
                    f"{self.kind} events fire at commit barriers; use "
                    f"phase 'after_commit', not {self.phase!r}")
            if self.iteration < 1:
                raise ConfigError(
                    f"{self.kind} events need a preceding commit; "
                    f"iteration must be >= 1")
        if self.count < 1:
            raise ConfigError(f"event count must be >= 1, got {self.count}")
        if isinstance(self.target, str) \
                and self.target not in TARGET_PREDICATES:
            raise ConfigError(
                f"unknown target predicate {self.target!r}; "
                f"choices: {TARGET_PREDICATES}")

    def describe(self) -> str:
        if self.kind == "join":
            return f"join(it={self.iteration}, ×{self.count})"
        return (f"{self.kind}(it={self.iteration}, {self.phase}, "
                f"{self.target}×{self.count})")


@dataclass
class FailureSchedule:
    """A deterministic set of faults for one run."""

    seed: int = 0
    events: list[ChaosEvent] = field(default_factory=list)
    #: Probability that an idempotent message is sent twice.
    duplicate_prob: float = 0.0
    #: Probability that a message is delivered late (end of the batch).
    delay_prob: float = 0.0
    #: Probability that a message is silently dropped.  Unsafe outside
    #: the fail-stop model — only for targeted accounting tests.
    drop_prob: float = 0.0

    # -- builder API ----------------------------------------------------

    def crash(self, iteration: int, *, phase: str = "gather",
              target: int | str = "random",
              count: int = 1) -> "FailureSchedule":
        """Add one crash event; returns self for chaining."""
        self.events.append(ChaosEvent(iteration, phase, target, count))
        return self

    def flap(self, iteration: int, *, phase: str = "superstep_start",
             target: int | str = "random",
             count: int = 1) -> "FailureSchedule":
        """Add a transient flap: the target misses heartbeats but
        returns below the death budget (no recovery, delta resync)."""
        self.events.append(
            ChaosEvent(iteration, phase, target, count, kind="flap"))
        return self

    def join(self, iteration: int, *, count: int = 1) -> "FailureSchedule":
        """Admit ``count`` fresh nodes at the commit barrier preceding
        ``iteration`` (elastic scale-out)."""
        self.events.append(ChaosEvent(iteration, "after_commit",
                                      "random", count, kind="join"))
        return self

    def drain(self, iteration: int, *,
              target: int | str = "most-loaded") -> "FailureSchedule":
        """Drain and retire a node, starting at the commit barrier
        preceding ``iteration`` (elastic scale-in)."""
        self.events.append(ChaosEvent(iteration, "after_commit",
                                      target, 1, kind="drain"))
        return self

    def with_message_faults(self, *, duplicate: float = 0.0,
                            delay: float = 0.0,
                            drop: float = 0.0) -> "FailureSchedule":
        """Set message-level fault probabilities; returns self."""
        for name, p in (("duplicate", duplicate), ("delay", delay),
                        ("drop", drop)):
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} probability must be in [0, 1]")
        self.duplicate_prob = duplicate
        self.delay_prob = delay
        self.drop_prob = drop
        return self

    # -- views ----------------------------------------------------------

    @property
    def total_crashes(self) -> int:
        """Worker crashes over the whole schedule (sizes the standby
        pool for Rebirth / checkpoint recovery).  Flaps and membership
        events never consume a spare."""
        return sum(e.count for e in self.events
                   if e.kind == "crash" and e.target != "standby")

    @property
    def has_membership_events(self) -> bool:
        return any(e.kind in ("flap", "join", "drain")
                   for e in self.events)

    @property
    def message_faults_enabled(self) -> bool:
        return bool(self.duplicate_prob or self.delay_prob
                    or self.drop_prob)

    def describe(self) -> str:
        """One-line, seed-first summary (printed on oracle failures)."""
        parts = [f"seed={self.seed}"]
        parts.extend(e.describe() for e in self.events)
        if self.message_faults_enabled:
            parts.append(f"msg(dup={self.duplicate_prob:g}, "
                         f"delay={self.delay_prob:g}, "
                         f"drop={self.drop_prob:g})")
        return "FailureSchedule[" + ", ".join(parts) + "]"

    # -- generation -----------------------------------------------------

    @classmethod
    def random(cls, seed: int, *, max_iterations: int,
               max_concurrent: int = 1, max_events: int = 2,
               recovery_phase: bool = True,
               message_faults: bool = True) -> "FailureSchedule":
        """Deterministically derive a schedule from a seed.

        ``max_concurrent`` bounds the crashes injected into any single
        iteration — all crashes of one iteration can merge into one
        simultaneous-failure event at the barrier, so this must not
        exceed the fault-tolerance level K the run is configured with.
        ``max_iterations`` should be the window of iterations the job is
        expected to actually execute (events beyond the run's end simply
        never fire).
        """
        if max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if max_concurrent < 1:
            raise ConfigError("max_concurrent must be >= 1")
        rng = SeededRng(seed, "failure-schedule")
        sched = cls(seed=seed)
        num_events = rng.randint(1, max(1, max_events))
        budget = {}  # iteration -> crashes already scheduled there
        predicates = ["random", "random", "most-loaded", "least-loaded",
                      "mirror-heaviest"]
        for _ in range(num_events):
            iteration = rng.randint(0, max_iterations - 1)
            left = max_concurrent - budget.get(iteration, 0)
            if left < 1:
                continue
            phase = rng.choice(CRASH_PHASES)
            if phase == "after_commit" and iteration == 0:
                # No commit precedes iteration 0.
                phase = "superstep_start"
            count = rng.randint(1, left)
            target = rng.choice(predicates)
            sched.crash(iteration, phase=phase, target=target, count=count)
            budget[iteration] = budget.get(iteration, 0) + count
            # Optionally pile a concurrent crash onto the recovery of
            # this one (Section 5.3.2), budget permitting.
            if (recovery_phase and phase != "after_commit"
                    and budget[iteration] < max_concurrent
                    and rng.random() < 0.25):
                sched.crash(iteration, phase="recovery",
                            target=rng.choice(predicates), count=1)
                budget[iteration] += 1
        if not sched.events:
            sched.crash(rng.randint(0, max_iterations - 1),
                        phase="gather", target="random", count=1)
        if message_faults:
            sched.with_message_faults(
                duplicate=rng.choice([0.0, 0.1, 0.25]),
                delay=rng.choice([0.0, 0.1, 0.25]))
        return sched

    def scaled_to(self, max_concurrent: int) -> "FailureSchedule":
        """A copy whose per-event crash counts fit a smaller K."""
        events = [replace(e, count=min(e.count, max_concurrent))
                  for e in self.events]
        return FailureSchedule(seed=self.seed, events=events,
                               duplicate_prob=self.duplicate_prob,
                               delay_prob=self.delay_prob,
                               drop_prob=self.drop_prob)
