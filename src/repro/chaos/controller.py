"""Chaos controller: fires a :class:`FailureSchedule` against an engine.

The controller is an engine chaos plugin (see
:meth:`repro.engine.engine.Engine.attach_chaos`).  At every phase hook
it fires the schedule's due crash events — resolving target predicates
against *live* cluster state — and, when the schedule carries message
faults, it installs itself as the network's fault injector.

Semantics
---------
* Events fire **once**, even when a rolled-back iteration is retried.
* Within an iteration, hooks arrive in :data:`PHASE_ORDER`; an event
  fires at the first hook whose order is at or past its phase (so a
  ``gather`` event still fires at ``sync`` on a one-node cluster where
  the mid-compute hook is skipped).
* ``recovery`` events fire only while a recovery is actually in
  progress; if the iteration passes without one they expire.
* Message verdicts draw from a dedicated seeded stream, one draw per
  candidate fault, so the decision sequence is reproducible.
  ``duplicate`` is only ever applied to idempotent message kinds
  (last-writer-wins syncs, activations, control) — duplicating a
  partial-gather accumulator would double-count real data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.chaos.schedule import ChaosEvent, FailureSchedule
from repro.cluster.network import Message, MessageKind
from repro.errors import ConfigError
from repro.utils.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine

#: Intra-iteration order of the crash-capable phase hooks.
PHASE_ORDER = {"after_commit": 0, "superstep_start": 1, "gather": 2,
               "sync": 3, "barrier": 4}

#: Kinds safe to duplicate: applying them twice is a no-op.
IDEMPOTENT_KINDS = frozenset({MessageKind.SYNC, MessageKind.MIRROR_SYNC,
                              MessageKind.ACTIVATE, MessageKind.CONTROL})


class ChaosController:
    """Replays one failure schedule, deterministically."""

    def __init__(self, schedule: FailureSchedule):
        self.schedule = schedule
        self._fired: set[int] = set()
        self._expired: set[int] = set()
        self._msg_rng = SeededRng(schedule.seed, "chaos-messages")
        self._target_rng = SeededRng(schedule.seed, "chaos-targets")
        #: Human-readable record of every injected fault.
        self.log: list[str] = []

    # -- wiring ---------------------------------------------------------

    def attach(self, engine: "Engine") -> "ChaosController":
        """Register with the engine (and its network, if needed)."""
        engine.attach_chaos(self)
        if self.schedule.message_faults_enabled:
            network = engine.cluster.network
            network.fault_injector = self.message_verdict
            # Columnar batches get one verdict per *record*, drawn from
            # the same seeded stream, so batching never changes what a
            # given logical message experiences.
            network.record_fault_injector = self.record_verdict
        return self

    # -- engine phase hook ----------------------------------------------

    def on_phase(self, engine: "Engine", phase: str) -> None:
        if phase in ("post_commit", "post_recovery"):
            return
        iteration = engine.iteration
        in_recovery = phase in ("recovery", "recovery_protocol")
        for idx, event in enumerate(self.schedule.events):
            if idx in self._fired or idx in self._expired:
                continue
            if event.phase in ("recovery", "recovery_protocol"):
                if phase == event.phase and event.iteration == iteration:
                    self._fire(engine, idx, event)
                elif not in_recovery and event.iteration < iteration:
                    self._expired.add(idx)
                continue
            if in_recovery:
                continue
            if event.iteration < iteration:
                self._expired.add(idx)
                continue
            if (event.iteration == iteration
                    and PHASE_ORDER[event.phase] <= PHASE_ORDER[phase]):
                self._fire(engine, idx, event)

    # -- event firing ----------------------------------------------------

    def _fire(self, engine: "Engine", idx: int, event: ChaosEvent) -> None:
        self._fired.add(idx)
        if event.kind == "join":
            targets = engine.request_join(event.count)
        else:
            targets = self.resolve_targets(engine, event)
            for node in targets:
                if event.kind == "crash":
                    engine.cluster.crash(node)
                elif event.kind == "flap":
                    engine.flap_node(node)
                else:  # drain
                    try:
                        engine.request_drain(node)
                    except ConfigError as err:
                        # A random schedule can ask for an impossible
                        # drain (target already transitioning, or the
                        # last eligible node); skip it, visibly.
                        self.log.append(
                            f"it={engine.iteration} {event.describe()} "
                            f"skipped: {err}")
                        return
        engine.tracer.instant(f"chaos.{event.kind}", cat="chaos",
                              iteration=engine.iteration,
                              phase=event.phase, targets=targets)
        engine.metrics.inc(f"chaos.{event.kind}_events")
        if event.kind == "crash":
            engine.metrics.inc("chaos.crashed_nodes", len(targets))
        self.log.append(
            f"it={engine.iteration} {event.describe()} -> {targets}")

    def resolve_targets(self, engine: "Engine",
                        event: ChaosEvent) -> list[int]:
        """Turn a target spec into concrete node ids, bounded so at
        least one worker survives the event."""
        if event.target == "standby":
            return engine.cluster.standby_nodes()[:event.count]
        if event.target == "leader":
            leader = engine.recovery_leader
            return [leader] if leader in engine._alive() else []
        candidates = engine._alive()
        if event.kind == "drain":
            # Only settled members can start draining, and at least one
            # other eligible node must remain to absorb the masters.
            candidates = [n for n in candidates
                          if engine.cluster.read_eligible(n)]
            if len(candidates) < 2:
                return []
        if isinstance(event.target, int):
            return [event.target] if event.target in candidates else []
        count = min(event.count, len(candidates) - 1)
        if count < 1:
            return []
        if event.target == "random":
            return sorted(self._target_rng.sample(candidates, count))
        key = self._load_key(engine, event.target)
        ranked = sorted(candidates, key=key)
        return sorted(ranked[:count])

    @staticmethod
    def _load_key(engine: "Engine", predicate: str):
        def masters(node: int) -> int:
            return sum(1 for _ in engine.local_graphs[node].iter_masters())

        def mirrors(node: int) -> int:
            return sum(1 for _ in engine.local_graphs[node].iter_mirrors())

        if predicate == "most-loaded":
            return lambda n: (-masters(n), n)
        if predicate == "least-loaded":
            return lambda n: (masters(n), n)
        if predicate == "mirror-heaviest":
            return lambda n: (-mirrors(n), n)
        raise AssertionError(f"unhandled predicate {predicate!r}")

    # -- network fault injector ------------------------------------------

    def message_verdict(self, msg: Message) -> str:
        """Per-message fault decision (deterministic stream)."""
        sched = self.schedule
        if (sched.duplicate_prob and msg.kind in IDEMPOTENT_KINDS
                and self._msg_rng.random() < sched.duplicate_prob):
            return "duplicate"
        if sched.delay_prob and self._msg_rng.random() < sched.delay_prob:
            return "delay"
        if sched.drop_prob and self._msg_rng.random() < sched.drop_prob:
            return "drop"
        return "deliver"

    def record_verdict(self, msg: Message, index: int) -> str:
        """Per-record fault decision for columnar batches.

        Same stream and draw order as :meth:`message_verdict` — record
        *index* of a batch consumes exactly the draws the equivalent
        scalar message would have, keeping verdicts record-level.
        """
        return self.message_verdict(msg)

    # -- reporting -------------------------------------------------------

    @property
    def fired_events(self) -> list[ChaosEvent]:
        return [self.schedule.events[i] for i in sorted(self._fired)]

    @property
    def expired_events(self) -> list[ChaosEvent]:
        return [self.schedule.events[i] for i in sorted(self._expired)]
