"""Deterministic chaos harness with differential recovery oracles.

Everything here derives from integer seeds (:class:`FailureSchedule`),
fires through the engine's phase hooks (:class:`ChaosController`),
asserts replication invariants at every barrier
(:class:`InvariantChecker`) and compares converged values against a
failure-free baseline (:func:`run_differential`).  See the "Chaos
testing" section of DESIGN.md.
"""

from repro.chaos.controller import (ChaosController, IDEMPOTENT_KINDS,
                                    PHASE_ORDER)
from repro.chaos.invariants import (InvariantChecker,
                                    InvariantViolation,
                                    MembershipInvariant,
                                    ReadConsistencyChecker)
from repro.chaos.oracle import (OracleReport, run_differential,
                                run_with_chaos, values_close)
from repro.chaos.schedule import (ChaosEvent, CRASH_PHASES, EVENT_KINDS,
                                  EVENT_PHASES, FailureSchedule,
                                  TARGET_PREDICATES)

__all__ = [
    "ChaosController",
    "ChaosEvent",
    "CRASH_PHASES",
    "EVENT_KINDS",
    "EVENT_PHASES",
    "FailureSchedule",
    "IDEMPOTENT_KINDS",
    "InvariantChecker",
    "InvariantViolation",
    "MembershipInvariant",
    "OracleReport",
    "PHASE_ORDER",
    "ReadConsistencyChecker",
    "TARGET_PREDICATES",
    "run_differential",
    "run_with_chaos",
    "values_close",
]
