"""Replication-invariant checker (DESIGN.md P2/P3/P6 + engine indexes).

Attached as an engine chaos plugin, the checker re-verifies after every
committed superstep (``post_commit``) and after every completed recovery
(``post_recovery``) that the cluster is in a state from which any
``ft_level``-bounded failure is recoverable:

* **Master placement** — every vertex has exactly one master, hosted on
  an alive node, with self-consistent metadata (P3);
* **K+1 replication** — every vertex has at least ``min(K+1, alive)``
  copies on distinct alive nodes and at least ``min(K, replicas)``
  full-state mirrors (P2/P6);
* **Value agreement** — every replica's committed value equals its
  master's (mirrors *and* plain replicas), except selfish vertices when
  the selfish optimisation legitimately skips their sync (Section 4.4);
* **Active-set consistency** — each node's ``active_masters`` /
  ``active_others`` indexes match the slots' flags, the gid index maps
  to the right slots, and vertex-cut masters whose activity diverged
  from what replicas believe are queued for re-broadcast.

Violations raise :class:`InvariantViolation` carrying an optional
context string (the chaos harness puts the reproduction command there).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import FTMode
from repro.errors import FaultToleranceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine


class InvariantViolation(FaultToleranceError):
    """A replication/consistency invariant failed to hold."""


class InvariantChecker:
    """Engine plugin asserting replication invariants at barriers."""

    def __init__(self, context: str = "",
                 check_values: bool = True):
        #: Extra text appended to violation messages (e.g. the one-line
        #: reproduction command of the failing chaos schedule).
        self.context = context
        self.check_values = check_values
        #: Number of full invariant sweeps performed.
        self.checks = 0

    # -- engine plugin hook -----------------------------------------------

    def on_phase(self, engine: "Engine", phase: str) -> None:
        if phase in ("post_commit", "post_recovery"):
            self.check_all(engine, phase)

    # -- checks ------------------------------------------------------------

    def check_all(self, engine: "Engine", phase: str = "manual") -> None:
        self.checks += 1
        alive = engine._alive()
        self._check_local_indexes(engine, alive, phase)
        self._check_masters(engine, alive, phase)
        if engine.job.ft.mode is FTMode.REPLICATION:
            self._check_replication(engine, alive, phase)
        if self.check_values:
            self._check_value_agreement(engine, alive, phase)
        if not engine.is_edge_cut and phase == "post_commit":
            self._check_broadcast_queue(engine, alive, phase)

    def _fail(self, phase: str, message: str) -> None:
        suffix = f" [{self.context}]" if self.context else ""
        raise InvariantViolation(f"[{phase}] {message}{suffix}")

    def _check_local_indexes(self, engine: "Engine", alive: list[int],
                             phase: str) -> None:
        for node in alive:
            lg = engine.local_graphs[node]
            for gid, pos in lg.index_of.items():
                slot = lg.slots[pos] if pos < len(lg.slots) else None
                if slot is None or slot.gid != gid:
                    self._fail(phase, f"node {node}: index maps vertex "
                                      f"{gid} to position {pos} holding "
                                      f"{getattr(slot, 'gid', None)}")
            want_masters = {s.gid for s in lg.iter_masters() if s.active}
            want_others = {s.gid for s in lg.iter_slots()
                           if not s.is_master and s.active}
            if lg.active_masters != want_masters:
                self._fail(phase, f"node {node}: active_masters index "
                                  f"diverged (index {sorted(lg.active_masters)}"
                                  f" vs flags {sorted(want_masters)})")
            if lg.active_others != want_others:
                self._fail(phase, f"node {node}: active_others index "
                                  f"diverged")

    def _check_masters(self, engine: "Engine", alive: list[int],
                       phase: str) -> None:
        alive_set = set(alive)
        for gid in range(engine.graph.num_vertices):
            node = engine.master_node_of[gid]
            if node not in alive_set:
                self._fail(phase, f"vertex {gid}: master node {node} is "
                                  f"not alive")
            lg = engine.local_graphs[node]
            if gid not in lg.index_of:
                self._fail(phase, f"vertex {gid}: not present on its "
                                  f"master node {node}")
            slot = lg.slot_of(gid)
            if not slot.is_master:
                self._fail(phase, f"vertex {gid}: slot on node {node} has "
                                  f"role {slot.role.value}, not master")
            meta = slot.meta
            if meta is None:
                self._fail(phase, f"vertex {gid}: master has no metadata")
            if meta.master_node != node:
                self._fail(phase, f"vertex {gid}: metadata names master "
                                  f"node {meta.master_node}, hosted on "
                                  f"{node}")
            if meta.master_position != lg.position_of(gid):
                self._fail(phase, f"vertex {gid}: metadata position "
                                  f"{meta.master_position} != actual "
                                  f"{lg.position_of(gid)}")

    def _check_replication(self, engine: "Engine", alive: list[int],
                           phase: str) -> None:
        # Under an adaptive floor policy the yardstick is the floor the
        # control plane currently *enforces* (risen repair has actually
        # completed), not the static configured K (DESIGN.md §14).
        k = engine.enforced_ft_floor
        alive_set = set(alive)
        for gid in range(engine.graph.num_vertices):
            node = engine.master_node_of[gid]
            meta = engine.local_graphs[node].slot_of(gid).meta
            copies = 1 + len(meta.replica_positions)
            if copies < min(k + 1, len(alive_set)):
                self._fail(phase, f"vertex {gid}: only {copies} copies, "
                                  f"K+1 invariant needs "
                                  f"{min(k + 1, len(alive_set))}")
            if node in meta.replica_positions:
                self._fail(phase, f"vertex {gid}: master node listed as "
                                  f"its own replica")
            mirrors = meta.mirror_nodes
            if len(set(mirrors)) != len(mirrors):
                self._fail(phase, f"vertex {gid}: duplicate mirror nodes "
                                  f"{mirrors}")
            if len(mirrors) < min(k, len(meta.replica_positions)):
                self._fail(phase, f"vertex {gid}: {len(mirrors)} mirrors "
                                  f"for ft_level {k}")
            if not set(mirrors) <= set(meta.replica_positions):
                self._fail(phase, f"vertex {gid}: mirror not in replica "
                                  f"set")
            for rnode, pos in meta.replica_positions.items():
                if rnode not in alive_set:
                    self._fail(phase, f"vertex {gid}: replica recorded on "
                                      f"dead node {rnode}")
                rslot = engine.local_graphs[rnode].slot_at(pos)
                if rslot is None or rslot.gid != gid:
                    self._fail(phase, f"vertex {gid}: stale replica "
                                      f"position {pos} on node {rnode}")
                if rslot.master_node != node:
                    self._fail(phase, f"vertex {gid}: replica on node "
                                      f"{rnode} believes master is "
                                      f"{rslot.master_node}, not {node}")
            for mnode in mirrors:
                mslot = engine.local_graphs[mnode].slot_of(gid)
                if not mslot.is_mirror:
                    self._fail(phase, f"vertex {gid}: elected mirror on "
                                      f"node {mnode} has role "
                                      f"{mslot.role.value}")
                if mslot.meta is None:
                    self._fail(phase, f"vertex {gid}: mirror on node "
                                      f"{mnode} lacks the metadata copy")
                if mslot.meta.master_node != node:
                    self._fail(phase, f"vertex {gid}: mirror metadata "
                                      f"names master {mslot.meta.master_node}")

    def _check_value_agreement(self, engine: "Engine", alive: list[int],
                               phase: str) -> None:
        skip_selfish = engine.selfish_opt_active
        for node in alive:
            lg = engine.local_graphs[node]
            for slot in lg.iter_masters():
                if slot.meta is None:
                    continue
                if skip_selfish and slot.selfish:
                    continue  # sync legitimately skipped (Section 4.4)
                for rnode, pos in slot.meta.replica_positions.items():
                    rslot = engine.local_graphs[rnode].slot_at(pos)
                    if rslot is None or rslot.gid != slot.gid:
                        continue  # reported by _check_replication
                    if rslot.value != slot.value:
                        self._fail(
                            phase,
                            f"vertex {slot.gid}: replica on node {rnode} "
                            f"holds {rslot.value!r}, master on {node} "
                            f"holds {slot.value!r}")

    def _check_broadcast_queue(self, engine: "Engine", alive: list[int],
                               phase: str) -> None:
        for node in alive:
            lg = engine.local_graphs[node]
            pending = engine._broadcast_pending.get(node, set())
            for slot in lg.iter_masters():
                if (slot.active != slot.replicas_known_active
                        and slot.gid not in pending):
                    self._fail(phase, f"vertex {slot.gid}: activity "
                                      f"changed but no re-broadcast is "
                                      f"queued on node {node}")


class MembershipInvariant:
    """Elastic-membership invariant checker (DESIGN.md §14).

    Attached as a chaos plugin; at every commit point (``post_commit``
    and ``post_recovery``) it asserts the membership layer left the
    cluster in a self-consistent state:

    * **Retirement is clean** — a retired node hosts no local graph and
      appears in no master's replica metadata;
    * **Exactly one master** — every vertex has exactly one master slot
      across all hosted local graphs, on an alive node, matching the
      engine's ``master_node_of`` index;
    * **Floor coverage** — every vertex has at least
      ``min(enforced_floor + 1, eligible_nodes)`` copies, where the
      enforced floor is what the adaptive policy currently promises;
    * **Routing eligibility** — transitioning (joining or draining) and
      retired nodes are never read-eligible.
    """

    def __init__(self, context: str = ""):
        self.context = context
        #: Number of commit-point sweeps performed.
        self.checks = 0

    def on_phase(self, engine: "Engine", phase: str) -> None:
        if phase in ("post_commit", "post_recovery"):
            self.check_all(engine, phase)

    def _fail(self, phase: str, message: str) -> None:
        suffix = f" [{self.context}]" if self.context else ""
        raise InvariantViolation(f"[{phase}] {message}{suffix}")

    def check_all(self, engine: "Engine", phase: str = "manual") -> None:
        self.checks += 1
        cluster = engine.cluster
        for node in engine.local_graphs:
            if node in cluster._retired:
                self._fail(phase, f"retired node {node} still hosts a "
                                  f"local graph")
        for node in cluster._transitioning | cluster._retired:
            if cluster.read_eligible(node):
                self._fail(phase, f"node {node} is transitioning or "
                                  f"retired but still read-eligible")
        # Exactly one master per vertex, where the engine thinks it is.
        owner: dict[int, int] = {}
        for node, lg in engine.local_graphs.items():
            if not cluster.node(node).is_alive:
                continue
            for slot in lg.iter_masters():
                if slot.gid in owner:
                    self._fail(phase, f"vertex {slot.gid}: masters on "
                                      f"both node {owner[slot.gid]} and "
                                      f"node {node}")
                owner[slot.gid] = node
        for gid in range(engine.graph.num_vertices):
            node = owner.get(gid)
            if node is None:
                self._fail(phase, f"vertex {gid}: no master on any "
                                  f"alive node")
            if engine.master_node_of[gid] != node:
                self._fail(phase, f"vertex {gid}: master hosted on node "
                                  f"{node} but master_node_of says "
                                  f"{engine.master_node_of[gid]}")
        if engine.job.ft.mode is not FTMode.REPLICATION:
            return
        floor = engine.enforced_ft_floor
        eligible = sum(1 for n in engine.local_graphs
                       if cluster.placement_eligible(n))
        need = min(floor + 1, max(1, eligible))
        for node, lg in engine.local_graphs.items():
            if not cluster.node(node).is_alive:
                continue
            for slot in lg.iter_masters():
                copies = 1 + len(slot.meta.replica_positions)
                if copies < need:
                    self._fail(
                        phase,
                        f"vertex {slot.gid}: {copies} copies, the "
                        f"current floor ({floor}) needs {need}")
                for rnode in slot.meta.replica_positions:
                    if rnode in cluster._retired:
                        self._fail(phase,
                                   f"vertex {slot.gid}: replica "
                                   f"recorded on retired node {rnode}")


class ReadConsistencyChecker:
    """Serve-hook twin of the value-agreement invariant (DESIGN.md §13).

    Attached via :meth:`Engine.attach_serve` (NOT as a chaos plugin):
    serve hooks run *before* any chaos-driven column flush, so every
    comparison goes through the flush-free committed read path
    (:meth:`Engine.committed_value_at`) — exactly what the read router
    serves.  At every commit point (``post_commit``/``post_recovery``)
    it asserts that each master's committed read equals the committed
    read of every alive replica copy, i.e. that routing a read to *any*
    replica is value-equivalent to reading the master.

    Skips mirror the router's own fences: selfish vertices under the
    active selfish optimisation (their mirrors legitimately skip syncs
    and the router pins them to the master), and gids inside
    ``engine.selfish_read_fence`` (recovery-recomputed; the router
    serves them as degraded misses until the next commit).
    """

    def __init__(self, context: str = ""):
        self.context = context
        #: Number of commit-point sweeps performed.
        self.checks = 0

    def on_phase(self, engine: "Engine", phase: str) -> None:
        if phase not in ("post_commit", "post_recovery"):
            return
        self.checks += 1
        skip_selfish = engine.selfish_opt_active
        fence = engine.selfish_read_fence
        for node in engine._alive():
            lg = engine.local_graphs[node]
            for slot in lg.iter_masters():
                if slot.meta is None:
                    continue
                if (skip_selfish and slot.selfish) or slot.gid in fence:
                    continue
                master_value = engine.committed_value_at(node, slot.gid)
                for rnode in slot.meta.replica_positions:
                    if not engine.cluster.node(rnode).is_alive:
                        continue
                    replica_value = engine.committed_value_at(rnode,
                                                              slot.gid)
                    if replica_value != master_value:
                        suffix = (f" [{self.context}]"
                                  if self.context else "")
                        raise InvariantViolation(
                            f"[{phase}] vertex {slot.gid}: committed "
                            f"read off replica node {rnode} returns "
                            f"{replica_value!r}, master node {node} "
                            f"returns {master_value!r} — replica-read "
                            f"consistency broken at superstep "
                            f"{engine.committed_iteration}{suffix}")
