"""Observability: span tracing and a unified metrics registry.

The paper's whole evaluation is per-phase measurement — compute vs.
sync vs. barrier vs. recovery time, traffic by message kind (Figs.
7-15, Tables 2-7).  This package is the measurement substrate:

* :class:`Tracer` — spans over *both* wall-clock and simulated time
  for every engine phase, exportable as JSON-lines or Chrome
  ``trace_event`` JSON (see DESIGN.md §8);
* :class:`MetricsRegistry` — counters/gauges with per-superstep
  snapshots, absorbing the ad-hoc counters previously scattered across
  the network, engine, chaos and recovery code;
* :data:`NULL_TRACER` — the shared disabled tracer; instrumentation is
  free when tracing is off.
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "Tracer",
]
