"""One queryable home for the counters scattered across the system.

Before this module existed every subsystem grew its own ad-hoc ints:
``Network.dropped_msgs``, ``Network.chaos_*``, the engine's
``_step_stats`` tuple, per-recovery ``RecoveryStats`` fields.  The
:class:`MetricsRegistry` absorbs them behind one namespace-dotted
counter/gauge interface (``net.sent_bytes``, ``chaos.crashes``,
``engine.supersteps``, ...) and supports **per-superstep snapshots**:
the engine snapshots the registry inside every barrier commit, so the
full counter trajectory of a run can be replayed superstep by
superstep (the paper's per-phase traffic breakdowns, Figs. 8/14).

Counters are monotonic; gauges are last-write-wins.  Both are plain
dict entries — incrementing one is a hash lookup and an add, cheap
enough for per-message call sites.
"""

from __future__ import annotations

from typing import Any


class MetricsRegistry:
    """Flat counter/gauge store with labelled snapshots."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, Any] = {}
        #: Labelled copies of the counter/gauge state, in capture order.
        self.snapshots: list[dict[str, Any]] = []

    # -- counters -------------------------------------------------------

    def inc(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` (>= 0) to a monotonic counter."""
        if delta < 0:
            raise ValueError(f"counter {name!r} cannot decrease "
                             f"(delta={delta})")
        self._counters[name] = self._counters.get(name, 0) + delta

    def value(self, name: str, default: float = 0) -> float:
        """Current value of a counter (``default`` if never touched)."""
        return self._counters.get(name, default)

    def counters(self, prefix: str = "") -> dict[str, float]:
        """Copy of the counter map, optionally filtered by prefix."""
        return {k: v for k, v in sorted(self._counters.items())
                if k.startswith(prefix)}

    # -- gauges ---------------------------------------------------------

    def set_gauge(self, name: str, value: Any) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: Any = None) -> Any:
        return self._gauges.get(name, default)

    def gauges(self, prefix: str = "") -> dict[str, Any]:
        return {k: v for k, v in sorted(self._gauges.items())
                if k.startswith(prefix)}

    # -- snapshots ------------------------------------------------------

    def snapshot(self, **labels: Any) -> dict[str, Any]:
        """Capture the current state under the given labels."""
        snap = {"labels": dict(labels),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges)}
        self.snapshots.append(snap)
        return snap

    @staticmethod
    def delta(earlier: dict[str, Any], later: dict[str, Any],
              name: str) -> float:
        """Counter increase between two snapshots."""
        return (later["counters"].get(name, 0)
                - earlier["counters"].get(name, 0))

    # -- composition ----------------------------------------------------

    def absorb(self, other: "MetricsRegistry") -> None:
        """Fold another registry's state into this one.

        Used when a component that created its own registry (the
        network exists before the engine) is re-bound to the job-wide
        one: counts accumulated so far must carry over.
        """
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            self._gauges.setdefault(name, value)

    def as_dict(self) -> dict[str, Any]:
        """Full queryable view (counters + gauges), for reports."""
        return {"counters": self.counters(), "gauges": self.gauges()}
