"""Low-overhead span tracer on the dual (wall, simulated) timeline.

Every engine phase — loading, gather, sync, barrier commit, checkpoint,
failure detection, recovery rounds — is recorded as a :class:`Span`
carrying *both* clocks: wall-clock seconds (what the host machine
spent) and simulated seconds (what the cost model says the modelled
cluster spent).  Chaos injections and other point events are recorded
as instants on the same timeline, so a ``--chaos-seed`` replay yields a
trace showing exactly where the faults landed.

Two export formats:

* **JSON-lines** (:meth:`Tracer.write_jsonl`): one flat JSON object per
  span/instant, in start order — trivially greppable and diffable;
* **Chrome ``trace_event``** (:meth:`Tracer.write_chrome_trace`): load
  the file in ``chrome://tracing`` / Perfetto to inspect the run
  visually.  The simulated clock is the horizontal axis; wall times
  ride along in ``args``.

Timeline contract (tested): the engine emits its *top-level* spans —
``cat="superstep"`` and ``cat="recovery"`` — so that they tile the
simulated timeline: their ``dur_sim_s`` sum to
``RunResult.total_sim_time_s`` exactly.  Nested phase spans subdivide
their parents and carry no such guarantee.

A disabled tracer (``Tracer(enabled=False)``, or the shared
:data:`NULL_TRACER`) keeps the full API but records nothing; the hot
path is one attribute check, so instrumented code needs no ``if``
guards and the simulated results are bit-identical either way.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


class Span:
    """One open (or finished) traced region."""

    __slots__ = ("name", "cat", "attrs", "t_wall_s", "t_sim_s",
                 "dur_wall_s", "dur_sim_s", "depth", "parent",
                 "_sim_override")

    def __init__(self, name: str, cat: str, depth: int,
                 parent: str | None, t_wall_s: float, t_sim_s: float,
                 attrs: dict[str, Any]):
        self.name = name
        self.cat = cat
        self.depth = depth
        self.parent = parent
        self.t_wall_s = t_wall_s
        self.t_sim_s = t_sim_s
        self.dur_wall_s = 0.0
        self.dur_sim_s = 0.0
        self.attrs = attrs
        self._sim_override: float | None = None

    def annotate(self, **attrs: Any) -> "Span":
        """Attach extra key/value payload to the span."""
        self.attrs.update(attrs)
        return self

    def set_sim(self, seconds: float) -> "Span":
        """Override the measured simulated duration.

        Recovery protocols compute their modelled phase times as
        aggregates (max over nodes) rather than by advancing the global
        clock step by step; they report those durations here.
        """
        self._sim_override = float(seconds)
        return self

    def record(self) -> dict[str, Any]:
        rec = {"type": "span", "name": self.name, "cat": self.cat,
               "depth": self.depth, "parent": self.parent,
               "t_wall_s": self.t_wall_s, "dur_wall_s": self.dur_wall_s,
               "t_sim_s": self.t_sim_s, "dur_sim_s": self.dur_sim_s}
        rec.update(self.attrs)
        return rec


class _NullSpan:
    """Inert span handle yielded by a disabled tracer."""

    __slots__ = ()

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def set_sim(self, seconds: float) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans and instants on the dual wall/simulated timeline.

    One tracer traces one run: handing the same instance to a second
    engine appends that run's events to the same list (and the timeline
    contract then holds per run, not over the concatenation).
    """

    def __init__(self, *, enabled: bool = True,
                 sim_clock: Callable[[], float] | None = None,
                 wall_clock: Callable[[], float] = time.perf_counter):
        self.enabled = enabled
        self.events: list[dict[str, Any]] = []
        self._stack: list[Span] = []
        self._sim_clock: Callable[[], float] = sim_clock or (lambda: 0.0)
        self._wall_clock = wall_clock

    # -- wiring ---------------------------------------------------------

    def bind_sim_clock(self, sim_clock: Callable[[], float]) -> None:
        """Point the simulated axis at a clock (the engine's global max).

        A disabled tracer ignores the binding so the shared
        :data:`NULL_TRACER` stays stateless across engines.
        """
        if self.enabled:
            self._sim_clock = sim_clock

    @property
    def open_depth(self) -> int:
        """Currently open span nesting depth (0 when balanced)."""
        return len(self._stack)

    # -- recording ------------------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str = "phase",
             **attrs: Any) -> Iterator[Span | _NullSpan]:
        """Trace a region; yields the handle for annotations."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        parent = self._stack[-1].name if self._stack else None
        sp = Span(name, cat, len(self._stack), parent,
                  self._wall_clock(), self._sim_clock(), attrs)
        self._stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self._stack.pop()
            sp.dur_wall_s = self._wall_clock() - sp.t_wall_s
            sp.dur_sim_s = (sp._sim_override
                            if sp._sim_override is not None
                            else self._sim_clock() - sp.t_sim_s)
            self.events.append(sp.record())

    def record(self, name: str, sim_s: float, cat: str = "phase",
               **attrs: Any) -> None:
        """Emit a pre-measured span (modelled duration, no wall time).

        Used by recovery protocols whose phase times are computed as
        cost-model aggregates rather than lived through the clock.
        """
        if not self.enabled:
            return
        parent = self._stack[-1].name if self._stack else None
        sp = Span(name, cat, len(self._stack), parent,
                  self._wall_clock(), self._sim_clock(), attrs)
        sp.dur_sim_s = float(sim_s)
        self.events.append(sp.record())

    def instant(self, name: str, cat: str = "event",
                **attrs: Any) -> None:
        """Record a point event (chaos injection, detection, halt)."""
        if not self.enabled:
            return
        rec = {"type": "instant", "name": name, "cat": cat,
               "depth": len(self._stack),
               "parent": self._stack[-1].name if self._stack else None,
               "t_wall_s": self._wall_clock(),
               "t_sim_s": self._sim_clock()}
        rec.update(attrs)
        self.events.append(rec)

    # -- queries --------------------------------------------------------

    def spans(self, name: str | None = None,
              cat: str | None = None) -> list[dict[str, Any]]:
        """Finished spans, optionally filtered by name and/or category."""
        return [e for e in self.events
                if e["type"] == "span"
                and (name is None or e["name"] == name)
                and (cat is None or e["cat"] == cat)]

    def top_level_spans(self) -> list[dict[str, Any]]:
        """Depth-0 spans: the ones that tile the simulated timeline."""
        return [e for e in self.events
                if e["type"] == "span" and e["depth"] == 0]

    def instants(self, cat: str | None = None) -> list[dict[str, Any]]:
        return [e for e in self.events
                if e["type"] == "instant"
                and (cat is None or e["cat"] == cat)]

    # -- export ---------------------------------------------------------

    def _ordered(self) -> list[dict[str, Any]]:
        """Events in (sim start, -depth) order: parents before children."""
        return sorted(self.events,
                      key=lambda e: (e["t_sim_s"], e.get("depth", 0)))

    def dump_jsonl(self) -> str:
        return "\n".join(json.dumps(e, sort_keys=True, default=str)
                         for e in self._ordered())

    def write_jsonl(self, path: str) -> None:
        """Write the trace as one JSON object per line."""
        with open(path, "w") as fh:
            fh.write(self.dump_jsonl())
            if self.events:
                fh.write("\n")

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome ``trace_event`` JSON (open in chrome://tracing).

        The simulated clock maps to the trace timeline (microseconds);
        wall-clock figures travel in each event's ``args``.
        """
        trace_events: list[dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "simulated cluster (engine)"}},
        ]
        for e in self._ordered():
            args = {k: v for k, v in e.items()
                    if k not in ("type", "name", "cat", "t_sim_s",
                                 "dur_sim_s", "depth", "parent")}
            if e["type"] == "span":
                trace_events.append({
                    "name": e["name"], "cat": e["cat"], "ph": "X",
                    "ts": e["t_sim_s"] * 1e6,
                    "dur": e["dur_sim_s"] * 1e6,
                    "pid": 0, "tid": 0, "args": args,
                })
            else:
                trace_events.append({
                    "name": e["name"], "cat": e["cat"], "ph": "i",
                    "ts": e["t_sim_s"] * 1e6, "s": "t",
                    "pid": 0, "tid": 0, "args": args,
                })
        return {"traceEvents": trace_events,
                "displayTimeUnit": "ms",
                "otherData": {"time_axis": "simulated seconds"}}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, default=str)


#: Shared disabled tracer: the default for engines built without
#: explicit tracing.  Never records, never holds state.
NULL_TRACER = Tracer(enabled=False)
