"""The read server and the engine hook that pumps it (DESIGN.md §13).

:class:`ReadServer` answers one query at a time against a
:class:`~repro.serve.view.CommittedView` through a
:class:`~repro.serve.router.ReplicaRouter`, stamping every response
with the superstep it reflects and the degraded flag.  Service-time
latency (wall-clock per query) and per-replica load feed the obs
:class:`~repro.obs.registry.MetricsRegistry`.

:class:`ServePump` drives the server *concurrently with the run*: it
attaches as an engine serve hook (:meth:`Engine.attach_serve`) and at
every phase hook drains the queries whose arrival time has passed.
Arrival seconds map onto run progress (supersteps are the engine's
clock) via :class:`WorkloadCursor`, which both backends share: the
simulator pumps at every engine phase, the multiprocessing coordinator
at its protocol-safe points — same workload, same arrival order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.serve.router import MISS, ReplicaRouter
from repro.serve.view import CommittedView
from repro.serve.workload import (
    NEIGHBORHOOD,
    POINT,
    TOPK,
    OpenLoopWorkload,
    Query,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine


@dataclass(frozen=True)
class ReadResponse:
    """One answered query, tagged with the snapshot it reflects."""

    gid: int
    kind: int
    #: Point: the committed value.  Neighborhood: tuple of
    #: ``(neighbor_gid, value)``.  Top-K: tuple of ``(gid, value)``.
    #: ``None`` on a miss (no alive copy).
    value: Any
    #: The committed superstep this response reflects (-1 = initial).
    superstep: int
    #: True when served during recovery or off a surviving replica
    #: while some copy's node is dead.
    degraded: bool
    #: Node that served the read (-1 for misses; the master's node for
    #: top-K, which aggregates across nodes).
    replica_node: int


class ServeStats:
    """Response accounting shared by both backends' servers."""

    def __init__(self, keep_responses: bool = True):
        self.keep_responses = keep_responses
        self.responses: list[ReadResponse] = []
        self.latencies_s: list[float] = []
        self.served = 0
        self.degraded_served = 0
        self.misses = 0

    def record(self, resp: ReadResponse, latency_s: float) -> None:
        self.served += 1
        self.latencies_s.append(latency_s)
        if resp.degraded:
            self.degraded_served += 1
        if self.keep_responses:
            self.responses.append(resp)

    def report(self, router: ReplicaRouter, metrics=None) -> dict:
        """p50/p99 service latency, per-replica load, degraded counts —
        also published to a metrics registry when one is given."""
        lat = np.asarray(self.latencies_s, dtype=np.float64)
        p50 = float(np.percentile(lat, 50)) if lat.size else 0.0
        p99 = float(np.percentile(lat, 99)) if lat.size else 0.0
        if metrics is not None:
            metrics.set_gauge("serve.queries", self.served)
            metrics.set_gauge("serve.degraded", self.degraded_served)
            metrics.set_gauge("serve.misses", self.misses)
            metrics.set_gauge("serve.p50_us", p50 * 1e6)
            metrics.set_gauge("serve.p99_us", p99 * 1e6)
            router.publish_load(metrics)
        return {
            "queries": self.served,
            "degraded_reads": self.degraded_served,
            "misses": self.misses,
            "p50_us": p50 * 1e6,
            "p99_us": p99 * 1e6,
            "per_replica_load": {int(n): int(c) for n, c
                                 in sorted(router.load.items())},
        }


class ReadServer:
    """Synchronous query execution over committed state."""

    def __init__(self, engine: "Engine", seed: int = 0,
                 policy: str = "round_robin",
                 use_cluster_liveness: bool = True,
                 keep_responses: bool = True,
                 neighborhood_limit: int = 16):
        self.engine = engine
        self.neighborhood_limit = neighborhood_limit
        self.view = CommittedView(engine)
        self.router = ReplicaRouter(
            engine, seed=seed, policy=policy,
            use_cluster_liveness=use_cluster_liveness)
        self.stats = ServeStats(keep_responses)

    @property
    def responses(self) -> list[ReadResponse]:
        return self.stats.responses

    @property
    def served(self) -> int:
        return self.stats.served

    @property
    def degraded_served(self) -> int:
        return self.stats.degraded_served

    @property
    def misses(self) -> int:
        return self.stats.misses

    # -- query execution -------------------------------------------------

    def serve(self, query: Query, dead=frozenset(),
              force_degraded: bool = False) -> ReadResponse:
        start = time.perf_counter()
        if query.kind == POINT:
            resp = self._serve_point(query.gid, dead, force_degraded)
        elif query.kind == NEIGHBORHOOD:
            resp = self._serve_neighborhood(query.gid, dead,
                                            force_degraded)
        elif query.kind == TOPK:
            resp = self._serve_topk(query.k, dead, force_degraded)
        else:
            raise ValueError(f"unknown query kind {query.kind}")
        self.stats.record(resp, time.perf_counter() - start)
        return resp

    def _serve_point(self, gid: int, dead,
                     force_degraded: bool) -> ReadResponse:
        node, degraded = self.router.route(
            gid, dead=dead, force_degraded=force_degraded)
        if node == MISS:
            self.stats.misses += 1
            value = None
        else:
            value = self.view.read(gid, node)
        return ReadResponse(gid=gid, kind=POINT, value=value,
                            superstep=self.view.superstep,
                            degraded=degraded, replica_node=node)

    def _serve_neighborhood(self, gid: int, dead,
                            force_degraded: bool) -> ReadResponse:
        nbrs = self.view.out_neighbors(gid,
                                       limit=self.neighborhood_limit)
        parts: list[tuple[int, Any]] = []
        degraded = force_degraded or self.engine.in_recovery
        node0 = MISS
        for nbr in nbrs:
            node, deg = self.router.route(
                nbr, dead=dead, force_degraded=force_degraded)
            degraded = degraded or deg
            if node == MISS:
                self.stats.misses += 1
                parts.append((nbr, None))
                continue
            if node0 == MISS:
                node0 = node
            parts.append((nbr, self.view.read(nbr, node)))
        return ReadResponse(gid=gid, kind=NEIGHBORHOOD,
                            value=tuple(parts),
                            superstep=self.view.superstep,
                            degraded=degraded, replica_node=node0)

    def _serve_topk(self, k: int, dead,
                    force_degraded: bool) -> ReadResponse:
        top = self.view.top_k(k)
        # Top-K aggregates over alive nodes' masters: with any node
        # dead (even before detection fires) coverage may be partial,
        # which is exactly the explicit-degradation contract.
        engine = self.engine
        # ``selfish_read_fence``: recovery-recomputed masters are still
        # in the ranking but reflect the *next* commit — partial too.
        # ``expected_workers`` tracks elastic membership (joins grow
        # it, retirements shrink it) so a cleanly drained node does not
        # read as a permanently degraded cluster.
        partial = bool(dead) or bool(engine.selfish_read_fence) or (
            len(engine.cluster.alive_workers())
            < engine.cluster.expected_workers())
        return ReadResponse(
            gid=-1, kind=TOPK, value=tuple(top),
            superstep=self.view.superstep,
            degraded=(force_degraded or engine.in_recovery or partial),
            replica_node=MISS)

    # -- reporting -------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Serve-side stats, also published to the engine's metrics."""
        return self.stats.report(self.router, self.engine.metrics)


#: Fraction of a superstep each engine phase hook sits at — maps the
#: workload's arrival timeline onto run progress so queries keep
#: arriving *inside* supersteps and recovery windows, not just at
#: barriers.  Identical on every backend for a given schedule shape.
PHASE_PROGRESS = {
    "superstep_start": 0.0,
    "gather": 0.25,
    "sync": 0.5,
    "barrier": 0.75,
    "recovery": 0.8,
    "recovery_protocol": 0.85,
    "post_recovery": 0.9,
    "post_commit": 1.0,
    # ``after_commit`` fires after ``iteration`` was already advanced,
    # so its fraction is 0 — the same instant as ``post_commit`` of the
    # superstep just committed (iteration N + 1.0 == iteration N+1 + 0).
    "after_commit": 0.0,
}


class WorkloadCursor:
    """Monotonic arrival cursor: which queries are due at a progress.

    Progress is measured in supersteps (fractional inside one); the
    workload's arrival seconds are scaled so its full horizon spans
    ``expected_supersteps``.  Both backends share this mapping, so the
    query-to-drain-point assignment is identical wherever the drain
    points coincide.
    """

    def __init__(self, workload: OpenLoopWorkload,
                 expected_supersteps: int):
        scale = expected_supersteps / workload.horizon_s
        self._arrival_progress = workload.arrival_s * scale
        self._workload = workload
        self._next = 0

    def due(self, progress: float) -> list[Query]:
        """Queries that arrived by ``progress``, in arrival order."""
        arrivals = self._arrival_progress
        i = self._next
        out: list[Query] = []
        while i < arrivals.size and arrivals[i] <= progress:
            out.append(self._workload.query(i))
            i += 1
        self._next = i
        return out

    def drain(self) -> list[Query]:
        """All remaining queries (end of run)."""
        return self.due(float("inf"))

    @property
    def remaining(self) -> int:
        return int(self._arrival_progress.size - self._next)


class ServePump:
    """Engine serve hook: drain due queries at every phase hook.

    Attach via :meth:`Engine.attach_serve`; reads interleave with
    supersteps and recovery at every phase the engine exposes, and
    :meth:`finish` drains the tail after the run completes.
    """

    def __init__(self, server: ReadServer, cursor: WorkloadCursor):
        self.server = server
        self.cursor = cursor

    def on_phase(self, engine: "Engine", phase: str) -> None:
        frac = PHASE_PROGRESS.get(phase)
        if frac is None:
            return
        for query in self.cursor.due(engine.iteration + frac):
            self.server.serve(query)

    def finish(self) -> None:
        for query in self.cursor.drain():
            self.server.serve(query)
