"""Replica-aware read routing: K+1 copies as free read fan-out.

Every vertex has ``ft_level + 1`` committed copies (master + replicas,
DESIGN.md §3) that agree at every barrier — the replica value-agreement
invariant — so a point read can be served by *any* alive copy.  The
:class:`ReplicaRouter` spreads reads across them with a seeded
round-robin or least-loaded policy and owns the degraded-mode policy
(DESIGN.md §13):

* a read is tagged ``degraded=True`` while the engine is inside
  recovery, or when any copy of the vertex sits on a dead node (the
  read falls back to a surviving replica);
* **selfish vertices are fenced to master-only routing** when the
  selfish-vertex optimisation is active (Section 4.4): their mirrors
  legitimately skip value syncs, and post-recovery recomputation
  refreshes only the master, so replica copies may be stale — exactly
  the reads the audit found and this fence closes;
* a vertex with *no* alive copy (mid-recovery, replication exhausted)
  yields a miss: ``node == -1``, always degraded.

Elastic membership (DESIGN.md §14): the router tracks the cluster's
``membership_epoch`` and rebuilds its ineligible-node set whenever the
epoch moves, so reads are never routed to a node that is joining
(state still arriving), draining (about to retire) or retired (local
graph gone).  When every copy of a vertex sits on a transitioning
node — possible for an instant mid-drain — the read falls back to the
master, which always holds the committed value until it moves.

Routing decisions are deterministic for a fixed seed and call sequence;
per-replica load counts feed the obs registry.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine

#: Sentinel node id for "no alive copy" misses.
MISS = -1


class ReplicaRouter:
    """Seeded replica-selection policy over a live engine's placement."""

    def __init__(self, engine: "Engine", seed: int = 0,
                 policy: str = "round_robin",
                 use_cluster_liveness: bool = True):
        if policy not in ("round_robin", "least_loaded"):
            raise ValueError(f"unknown routing policy {policy!r}")
        self.engine = engine
        self.policy = policy
        #: Reads served per node (the per-replica load report).
        self.load: Counter[int] = Counter()
        #: Whether to consult the simulated cluster's liveness flags —
        #: the multiprocessing coordinator routes over the pristine
        #: parent engine (whose nodes are never "crashed") and passes
        #: dead ranks explicitly instead.
        self._use_cluster_liveness = use_cluster_liveness
        self._rr = seed
        #: Membership-epoch cache: the ineligible-node set is rebuilt
        #: only when the cluster's epoch moves (DESIGN.md §14).
        self._epoch = -1
        self._ineligible: frozenset[int] = frozenset()

    # -- placement -------------------------------------------------------

    def candidates(self, gid: int) -> list[int]:
        """Nodes hosting a committed copy of ``gid``, master first.

        Selfish vertices under the active selfish optimisation are
        fenced to their master (see module docstring).
        """
        engine = self.engine
        master = engine.master_node_of[gid]
        slot = engine.local_graphs[master].slot_of(gid)
        if engine.selfish_opt_active and slot.selfish:
            return [master]
        return [master] + sorted(slot.meta.replica_positions)

    def _is_alive(self, node: int, dead) -> bool:
        if node in dead:
            return False
        return (not self._use_cluster_liveness
                or self.engine.cluster.node(node).is_alive)

    def membership_ineligible(self) -> frozenset[int]:
        """Nodes no read may be routed to: joining, draining, retired.

        Epoch-keyed — recomputed only when ``membership_epoch`` moves,
        so static clusters pay one set lookup per read.
        """
        cluster = self.engine.cluster
        epoch = cluster.membership_epoch
        if epoch != self._epoch:
            self._ineligible = frozenset(cluster._transitioning
                                         | cluster._retired)
            self._epoch = epoch
        return self._ineligible

    # -- routing ---------------------------------------------------------

    def route(self, gid: int, dead=frozenset(),
              force_degraded: bool = False) -> tuple[int, bool]:
        """Pick the copy that serves this read.

        Returns ``(node, degraded)``; ``node`` is :data:`MISS` when no
        copy is alive.  ``dead`` lists ranks known dead by the caller
        (multiprocessing coordinator); ``force_degraded`` marks reads
        issued inside an explicitly degraded window.
        """
        # A selfish master recomputed by recovery holds the value the
        # retry will commit, and no surviving copy holds the committed
        # one — a degraded miss until the next barrier closes the
        # window (see ``Engine.selfish_read_fence``).
        if gid in self.engine.selfish_read_fence:
            return MISS, True
        candidates = self.candidates(gid)
        alive = [n for n in candidates if self._is_alive(n, dead)]
        degraded = (force_degraded or self.engine.in_recovery
                    or len(alive) < len(candidates))
        ineligible = self.membership_ineligible()
        eligible = [n for n in alive if n not in ineligible]
        if not eligible:
            # Every copy sits on a transitioning node (possible for an
            # instant mid-drain).  The master still holds the committed
            # value until its move lands — serve it, tagged degraded —
            # but never route to a node whose local graph may be gone.
            master = candidates[0]
            if master in alive and master not in self.engine.cluster._retired:
                self.load[master] += 1
                return master, True
            return MISS, True
        if self.policy == "least_loaded":
            node = min(eligible, key=lambda n: (self.load[n], n))
        else:
            node = eligible[self._rr % len(eligible)]
            self._rr += 1
        self.load[node] += 1
        return node, degraded

    # -- reporting -------------------------------------------------------

    def publish_load(self, metrics) -> None:
        """Export per-replica load as ``serve.load.node.N`` gauges."""
        for node, count in sorted(self.load.items()):
            metrics.set_gauge(f"serve.load.node.{node}", count)
