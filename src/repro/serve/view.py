"""Snapshot-isolated read facade over an engine's committed state.

A :class:`CommittedView` answers point, neighborhood and top-K reads
against the value set committed at the engine's last barrier
(:attr:`~repro.engine.engine.Engine.committed_iteration`) — never
mid-superstep or uncommitted state.  Two properties make this cheap
(DESIGN.md §13):

* **Staging separation** — uncommitted superstep results live only in
  the vectorized executor's ``pend_*`` arrays (or the slots' pending
  fields on the scalar path); the committed columns / slot values are
  untouched until the barrier commit, so any read *between* the
  engine's phase hooks observes exactly the last commit.
* **Flush-free column reads** — the barrier commit dual-writes the
  committed columns and defers the slot writeback, so a point read
  takes the value straight from the array
  (:meth:`~repro.engine.vectorized.VectorizedExecutor.committed_value`)
  without forcing a whole-column
  :meth:`~repro.engine.vectorized.VectorizedExecutor.flush`.

The view reads *state*; replica selection (which copy answers) is the
router's job (:mod:`repro.serve.router`).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine.vectorized import NO_COLUMN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine


class CommittedView:
    """Reads of the last committed superstep's values."""

    def __init__(self, engine: "Engine"):
        self.engine = engine

    @property
    def superstep(self) -> int:
        """The superstep every read through this view reflects
        (``-1`` = initial values, before the first commit)."""
        return self.engine.committed_iteration

    # -- point reads ----------------------------------------------------

    def read(self, gid: int, node: int | None = None) -> Any:
        """Committed value of ``gid`` from the copy on ``node``
        (default: its master)."""
        if node is None:
            node = self.engine.master_node_of[gid]
        return self.engine.committed_value_at(node, gid)

    # -- neighborhood reads ---------------------------------------------

    def out_neighbors(self, gid: int, limit: int = 0) -> list[int]:
        """Out-neighbor gids from the static graph topology
        (``limit`` > 0 caps power-law hubs)."""
        nbrs = self.engine.graph.out_neighbors(gid)
        if limit and nbrs.size > limit:
            nbrs = nbrs[:limit]
        return [int(n) for n in nbrs]

    # -- top-K ----------------------------------------------------------

    def top_k(self, k: int, largest: bool = True) -> list[tuple[int, Any]]:
        """The K masters with the extreme committed values.

        Masters only (each vertex counted once), alive nodes only;
        vectorized column fast path per node, slot fallback otherwise.
        Ties break toward the lower gid, matching the per-node heaps.
        Returns ``[(gid, value), ...]`` best-first.
        """
        engine = self.engine
        vec = engine._vec
        per_node: list[list[tuple[Any, int]]] = []
        for node in engine.cluster.alive_workers():
            lg = engine.local_graphs[node]
            cols = vec.committed_columns(node) if vec is not None \
                else NO_COLUMN
            if cols is not NO_COLUMN:
                topo, values = cols
                pos = np.flatnonzero(topo.is_master)
                if not pos.size:
                    continue
                vals, gids = values[pos], topo.gids[pos]
                # Deterministic (value, gid) selection so the column
                # path and the slot fallback pick identical K sets
                # under value ties.
                order = np.lexsort((gids, -vals if largest else vals))[:k]
                per_node.append(list(zip(vals[order].tolist(),
                                         gids[order].tolist())))
            else:
                items = [(slot.value, slot.gid)
                         for slot in lg.iter_masters()]
                pick = heapq.nlargest if largest else heapq.nsmallest
                per_node.append(pick(k, items, key=lambda t: (t[0], -t[1])))
        merged: list[tuple[Any, int]] = [t for part in per_node
                                         for t in part]
        merged.sort(key=(lambda t: (-t[0], t[1])) if largest
                    else (lambda t: (t[0], t[1])))
        return [(gid, value) for value, gid in merged[:k]]
