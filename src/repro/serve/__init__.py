"""Online read-serving layer: replicas as read capacity (DESIGN.md §13).

The K+1-way replication that makes recovery cheap also makes every
vertex readable from K+1 places — this package turns that into a query
path that runs *concurrently* with supersteps and recovery:

* :mod:`repro.serve.view` — snapshot-isolated reads of the last
  committed superstep, flush-free on the vectorized path;
* :mod:`repro.serve.router` — seeded replica selection with the
  explicit degraded policy (and the selfish-vertex master fence);
* :mod:`repro.serve.workload` — seeded open-loop traffic (Poisson
  arrivals, Zipf keys, configurable QPS);
* :mod:`repro.serve.server` — the query server, latency accounting and
  the engine pump hook;
* :mod:`repro.serve.replay` — the post-hoc bit-equality differential
  check against a serving-free replay.
"""

from repro.serve.replay import (
    HistoryRecorder,
    check_responses,
    replay_committed_history,
)
from repro.serve.router import MISS, ReplicaRouter
from repro.serve.server import (
    PHASE_PROGRESS,
    ReadResponse,
    ReadServer,
    ServePump,
    ServeStats,
    WorkloadCursor,
)
from repro.serve.view import CommittedView
from repro.serve.workload import (
    KIND_NAMES,
    NEIGHBORHOOD,
    POINT,
    TOPK,
    WORKLOAD_KEYS,
    OpenLoopWorkload,
    Query,
    workload_from_config,
)

__all__ = [
    "CommittedView",
    "HistoryRecorder",
    "KIND_NAMES",
    "MISS",
    "NEIGHBORHOOD",
    "OpenLoopWorkload",
    "PHASE_PROGRESS",
    "POINT",
    "Query",
    "ReadResponse",
    "ReadServer",
    "ReplicaRouter",
    "ServePump",
    "ServeStats",
    "TOPK",
    "WORKLOAD_KEYS",
    "WorkloadCursor",
    "check_responses",
    "replay_committed_history",
    "workload_from_config",
]
