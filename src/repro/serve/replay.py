"""Post-hoc differential check for served responses (DESIGN.md §13).

The acceptance bar for the serving layer is *bit-equality*: every
response must equal the value committed at the superstep it was tagged
with.  The check replays the identical job (same spec, same chaos
schedule) on the deterministic simulator *without* serving, records
the full committed value map at every commit point, and verifies each
response against that history.  Because both backends are bit-identical
to the simulator (the cross-backend differential oracle, DESIGN.md
§12), the same replay history checks multiprocessing responses too.

A mismatch means a read observed uncommitted or torn state — the bug
class the snapshot rule exists to prevent — so the checkers return
the offending responses rather than a bare count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.serve.workload import NEIGHBORHOOD, POINT, TOPK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.server import ReadResponse


class HistoryRecorder:
    """Serve hook recording ``{superstep: {gid: value}}`` at commits.

    ``-1`` (initial values) is captured at the first phase hook; each
    later superstep at its commit.  Recording flushes the columns
    (``values()``), which is fine — the recorder runs on the replay
    engine, never on the serving one.
    """

    def __init__(self):
        self.history: dict[int, dict[int, Any]] = {}

    def on_phase(self, engine, phase: str) -> None:
        tag = engine.committed_iteration
        if tag not in self.history:
            self.history[tag] = engine.values()


def replay_committed_history(graph, spec) -> dict[int, dict[int, Any]]:
    """Run ``spec`` on the simulator, recording every commit's values."""
    from repro.api import make_engine

    engine = make_engine(graph, **spec.engine_kwargs())
    for iteration, ranks, phase in spec.failures:
        engine.schedule_failure(iteration, list(ranks), phase)
    recorder = HistoryRecorder()
    engine.attach_serve(recorder)
    engine.run()
    # The final state is also a valid read target for tail-drained
    # queries; it is the last commit, already recorded above.
    return recorder.history


def check_responses(responses: "list[ReadResponse]",
                    history: dict[int, dict[int, Any]],
                    ) -> list[tuple["ReadResponse", Any]]:
    """Every response vs the committed value at its tagged superstep.

    Returns ``(response, expected)`` pairs for mismatches (empty list =
    every read was bit-equal to committed state).  Point and
    neighborhood reads are checked value-for-value; top-K responses
    are checked against the recomputed top-K of the tagged snapshot,
    skipping degraded ones (mid-recovery snapshots are not in the
    commit history by construction).  Misses (``value is None`` with
    ``degraded=True``) are not mismatches — they are the explicit
    degraded contract for vertices with no alive copy.
    """
    mismatches: list[tuple[Any, Any]] = []
    topk_cache: dict[tuple[int, int], list] = {}
    for resp in responses:
        committed = history.get(resp.superstep)
        if committed is None:
            mismatches.append((resp, f"unknown superstep "
                                     f"{resp.superstep}"))
            continue
        if resp.kind == POINT:
            if resp.value is None and resp.degraded:
                continue
            expected = committed[resp.gid]
            if resp.value != expected:
                mismatches.append((resp, expected))
        elif resp.kind == NEIGHBORHOOD:
            for nbr, value in resp.value:
                if value is None and resp.degraded:
                    continue
                expected = committed[nbr]
                if value != expected:
                    mismatches.append((resp, (nbr, expected)))
        elif resp.kind == TOPK:
            if resp.degraded:
                continue
            k = len(resp.value)
            key = (resp.superstep, k)
            expected_top = topk_cache.get(key)
            if expected_top is None:
                ranked = sorted(committed.items(),
                                key=lambda t: (-t[1], t[0]))
                expected_top = topk_cache[key] = ranked[:k]
            if list(resp.value) != expected_top:
                mismatches.append((resp, expected_top))
    return mismatches
