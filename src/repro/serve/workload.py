"""Seeded open-loop read workload: Poisson arrivals, Zipf-skewed keys.

Models millions-of-users query traffic against the computing graph
(DESIGN.md §13): arrivals are an open-loop Poisson process at a
configured QPS (exponential inter-arrival times — arrivals do not wait
for responses), keys follow a bounded Zipf distribution over the
vertex ids (a few hot vertices absorb most reads, the canonical web
workload shape), and a configurable slice of the queries are
neighborhood or top-K reads instead of point reads.

Everything is generated up front from one ``numpy`` PCG64 stream, so a
``(seed, qps, num_queries, ...)`` tuple names the exact same query
sequence on every backend — the determinism the routing tests and the
differential replay check depend on.  Queries are stored columnar
(arrays, not 100k objects); :meth:`OpenLoopWorkload.query` materializes
one on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Query-kind codes in the columnar ``kinds`` array.
POINT, NEIGHBORHOOD, TOPK = 0, 1, 2

KIND_NAMES = {POINT: "point", NEIGHBORHOOD: "neighborhood", TOPK: "topk"}


@dataclass(frozen=True)
class Query:
    """One materialized read request."""

    index: int
    arrival_s: float
    kind: int
    gid: int
    k: int


class OpenLoopWorkload:
    """Deterministic columnar query stream."""

    def __init__(self, num_vertices: int, num_queries: int,
                 qps: float = 10_000.0, zipf_s: float = 1.1,
                 seed: int = 0, neighborhood_frac: float = 0.0,
                 topk_frac: float = 0.0, topk_k: int = 10,
                 neighborhood_limit: int = 16):
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        if qps <= 0:
            raise ValueError("qps must be positive")
        self.num_vertices = num_vertices
        self.qps = qps
        self.topk_k = topk_k
        self.neighborhood_limit = neighborhood_limit
        rng = np.random.Generator(np.random.PCG64(seed))

        #: Open loop: exponential inter-arrivals at rate ``qps``.
        self.arrival_s = np.cumsum(
            rng.exponential(1.0 / qps, size=num_queries))

        # Bounded Zipf over vertex ranks by inverse-CDF sampling, then
        # a seeded permutation of rank -> vertex id so the hot keys
        # land on arbitrary partitions instead of all being low gids.
        ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
        weights = ranks ** -zipf_s
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        rank_of = np.searchsorted(cdf, rng.random(num_queries),
                                  side="right")
        vid_of_rank = rng.permutation(num_vertices)
        self.gids = vid_of_rank[rank_of].astype(np.int64)

        # Query-kind mix.
        u = rng.random(num_queries)
        self.kinds = np.full(num_queries, POINT, dtype=np.int8)
        self.kinds[u < neighborhood_frac] = NEIGHBORHOOD
        self.kinds[(u >= neighborhood_frac)
                   & (u < neighborhood_frac + topk_frac)] = TOPK

    def __len__(self) -> int:
        return int(self.arrival_s.size)

    @property
    def horizon_s(self) -> float:
        """Arrival time of the last query — the workload's duration."""
        return float(self.arrival_s[-1])

    def query(self, i: int) -> Query:
        return Query(index=i, arrival_s=float(self.arrival_s[i]),
                     kind=int(self.kinds[i]), gid=int(self.gids[i]),
                     k=self.topk_k)


#: :class:`OpenLoopWorkload` keyword arguments recognised inside a
#: :attr:`repro.exec.base.BackendSpec.serve` configuration (the other
#: keys there configure routing and the arrival cursor).
WORKLOAD_KEYS = frozenset({
    "num_queries", "qps", "zipf_s", "seed", "neighborhood_frac",
    "topk_frac", "topk_k", "neighborhood_limit",
})


def workload_from_config(num_vertices: int, cfg: dict) -> OpenLoopWorkload:
    """Build the workload a ``BackendSpec.serve`` config names.

    Both backends call this, so one spec names the same query stream
    everywhere.
    """
    kwargs = {k: v for k, v in cfg.items() if k in WORKLOAD_KEYS}
    return OpenLoopWorkload(num_vertices, **kwargs)
