"""PageRank [1] — the paper's primary benchmark algorithm.

The classic damped formulation: each vertex gathers the rank mass of
its in-neighbors (rank / out-degree) and applies
``rank = (1 - d) + d * sum``.  Always active for a fixed number of
iterations, history-free (the new rank depends only on neighbors), so
the selfish-vertex optimisation applies (Section 4.4).
"""

from __future__ import annotations

from repro.engine.vertex_program import (
    ApplyContext,
    VertexProgram,
    VertexView,
)


class PageRank(VertexProgram):
    """Damped PageRank over in-edges."""

    name = "pagerank"
    history_free = True
    combiner = "sum"

    def __init__(self, damping: float = 0.85):
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        self.damping = damping

    def initial_value(self, vid: int, ctx: ApplyContext) -> float:
        return 1.0

    def gather_init(self) -> float:
        return 0.0

    def gather(self, acc: float, src: VertexView, weight: float,
               dst_vid: int) -> float:
        if src.out_degree == 0:
            return acc
        return acc + src.value / src.out_degree

    def contribution(self, src: VertexView, weight: float,
                     dst_vid: int) -> float | None:
        if src.out_degree == 0:
            return None
        return src.value / src.out_degree

    def gather_sum(self, a: float, b: float) -> float:
        return a + b

    def kernel(self):
        from repro.algorithms.kernels import PageRankKernel
        return PageRankKernel(self.damping)

    def apply(self, vid: int, old_value: float, acc: float,
              ctx: ApplyContext) -> float:
        if acc is None:
            acc = 0.0
        return (1.0 - self.damping) + self.damping * acc

    def activates_neighbors(self, vid: int, old_value: float,
                            new_value: float, ctx: ApplyContext) -> bool:
        return True

    def stays_active(self, vid: int, old_value: float, new_value: float,
                     ctx: ApplyContext) -> bool:
        return True
