"""Single-source shortest path over weighted edges (Table 1, RoadCA).

Event-driven: only the source is initially active; a vertex whose
tentative distance improves activates its out-neighbors.  The update
``min(old, min(src + w))`` depends on the vertex's own previous value,
so the program is *not* history-free and Imitator keeps syncing selfish
vertices for it (Section 4.4's precondition).
"""

from __future__ import annotations

import math

from repro.engine.vertex_program import (
    ApplyContext,
    VertexProgram,
    VertexView,
)


class SingleSourceShortestPath(VertexProgram):
    """Bellman-Ford-style SSSP with activation-based scheduling."""

    name = "sssp"
    history_free = False
    combiner = "min"

    def __init__(self, source: int = 0):
        if source < 0:
            raise ValueError("source vertex must be non-negative")
        self.source = source

    def initial_value(self, vid: int, ctx: ApplyContext) -> float:
        return 0.0 if vid == self.source else math.inf

    def is_initially_active(self, vid: int) -> bool:
        return vid == self.source

    def gather_init(self) -> float:
        return math.inf

    def gather(self, acc: float, src: VertexView, weight: float,
               dst_vid: int) -> float:
        candidate = src.value + weight
        return candidate if candidate < acc else acc

    def contribution(self, src: VertexView, weight: float,
                     dst_vid: int) -> float:
        return src.value + weight

    def gather_sum(self, a: float, b: float) -> float:
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    def kernel(self):
        from repro.algorithms.kernels import SSSPKernel
        return SSSPKernel(self.source)

    def apply(self, vid: int, old_value: float, acc: float,
              ctx: ApplyContext) -> float:
        if acc is None:
            acc = math.inf
        return min(old_value, acc)

    def activates_neighbors(self, vid: int, old_value: float,
                            new_value: float, ctx: ApplyContext) -> bool:
        return new_value < old_value or (vid == self.source
                                         and ctx.iteration == 0)

    def stays_active(self, vid: int, old_value: float, new_value: float,
                     ctx: ApplyContext) -> bool:
        # A vertex goes quiet until a neighbor improves its distance.
        return False
