"""Vectorized structure-of-arrays kernels for the built-in algorithms.

Each kernel is the array form of one :class:`~repro.engine.
vertex_program.VertexProgram`, dispatched by the engine when
``EngineConfig.vectorized`` is on and the program declares one via
:meth:`VertexProgram.kernel`.  The contract is *bit-for-bit* equality
with the scalar per-vertex loop, which pins down the numerics:

* Sum folds use ``np.add.at`` — unbuffered scatter-add that accumulates
  in index order, reproducing the scalar left-to-right fold exactly.
  ``np.add.reduceat``/``np.sum`` use pairwise summation and are NOT
  bit-identical; they must never be used here.
* Min folds use ``np.minimum.at``; min is exactly associative over the
  values these programs produce (no NaNs), so ordering is free.
* PageRank filters zero-out-degree sources out of the edge selection
  (instead of adding ``0.0``) to match the scalar ``if out_degree == 0:
  skip`` branch literally.

A kernel also declares its value dtype and the constant wire sizes of
one value / one partial accumulator, matching what
``VertexProgram.value_nbytes``/``acc_nbytes`` return for every value
the program can produce — the byte accounting of a vectorized run must
be indistinguishable from a scalar one.
"""

from __future__ import annotations

import numpy as np

from repro.utils.sizing import BYTES_PER_VALUE


class ArrayKernel:
    """Base class: array-at-a-time gather/apply/activation hooks.

    ``edge_fold`` folds a selection of local in-edges into a
    per-position accumulator array; ``combine`` names the fold used to
    merge vertex-cut partial accumulators ("sum" or "min").  ``apply``,
    ``activates`` and ``stays_active`` operate on whole columns; the
    executor masks the results down to the computed positions.
    """

    #: numpy dtype of the vertex value column.
    dtype = np.float64
    #: Partial-accumulator merge for vertex-cut ("sum" | "min" | "max").
    #: Doubles as the kernel's combiner declaration for the combining
    #: layer (DESIGN.md §15) — it names the commutative-associative op
    #: the edge fold decomposes into.
    combine = "sum"
    #: Constant wire sizes (match the program's value_nbytes/acc_nbytes).
    value_nbytes = BYTES_PER_VALUE
    acc_nbytes = BYTES_PER_VALUE
    #: True when ``apply`` must distinguish "no contribution" from the
    #: fold identity (programs with ``gather_init() is None``).
    needs_acc_presence = False

    def init_acc(self, n: int) -> np.ndarray:
        raise NotImplementedError

    def fold_into(self, acc: np.ndarray, seg: np.ndarray,
                  contrib: np.ndarray) -> None:
        """Scatter-fold per-edge/per-partial contributions into acc."""
        from repro.engine.combine import ufunc_of
        ufunc_of(self.combine).at(acc, seg, contrib)

    def edge_fold(self, topo, values: np.ndarray, esel: np.ndarray,
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Fold the selected in-edges; return (acc, has_contribution)."""
        acc, has, _ = self.edge_fold_counted(topo, values, esel)
        return acc, has

    def edge_fold_counted(self, topo, values: np.ndarray, esel: np.ndarray,
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``edge_fold`` plus the per-position contribution count.

        The count column feeds the combining layer's pre-combine
        accounting (DESIGN.md §15): position *p*'s combined partial
        absorbed ``counts[p]`` raw per-edge contributions.
        """
        seg, contrib = self.edge_contrib(topo, values, esel)
        acc = self.init_acc(topo.n)
        self.fold_into(acc, seg, contrib)
        has = np.zeros(topo.n, dtype=bool)
        has[seg] = True
        counts = np.bincount(seg, minlength=topo.n).astype(np.int64) \
            if seg.size else np.zeros(topo.n, dtype=np.int64)
        return acc, has, counts

    def fold_groups(self, counts: np.ndarray,
                    contribs: np.ndarray) -> np.ndarray:
        """Fold flattened contribution groups, one accumulator each.

        Receiver side of the uncombined wire format: ``counts[i]``
        contributions belong to record *i*, in shipped order.  Groups
        with no contribution keep the fold identity — the same value
        the sender's combined partial would have carried.
        """
        acc = self.init_acc(len(counts))
        if len(contribs):
            ridx = np.repeat(np.arange(len(counts)), counts)
            self.fold_into(acc, ridx, np.asarray(contribs, dtype=self.dtype))
        return acc

    def edge_contrib(self, topo, values: np.ndarray, esel: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Per-edge (destination position, contribution) columns."""
        raise NotImplementedError

    def apply(self, gids: np.ndarray, old: np.ndarray, acc: np.ndarray,
              has: np.ndarray, ctx) -> np.ndarray:
        raise NotImplementedError

    def activates(self, gids: np.ndarray, old: np.ndarray,
                  new: np.ndarray, ctx) -> np.ndarray:
        raise NotImplementedError

    def stays_active(self, gids: np.ndarray, old: np.ndarray,
                     new: np.ndarray, ctx) -> np.ndarray:
        raise NotImplementedError


class PageRankKernel(ArrayKernel):
    """rank = (1-d) + d * sum(src.rank / src.out_degree)."""

    def __init__(self, damping: float):
        self.damping = damping

    def init_acc(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def edge_contrib(self, topo, values, esel):
        src = topo.in_src[esel]
        deg = topo.out_deg_f[src]
        nz = deg > 0.0
        return (topo.in_dst[esel][nz], values[src[nz]] / deg[nz])

    def apply(self, gids, old, acc, has, ctx):
        return (1.0 - self.damping) + self.damping * acc

    def activates(self, gids, old, new, ctx):
        return np.ones(len(new), dtype=bool)

    def stays_active(self, gids, old, new, ctx):
        return np.ones(len(new), dtype=bool)


class DegreeKernel(ArrayKernel):
    """Sum of in-edge weights; quiesces after one superstep."""

    def init_acc(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def edge_contrib(self, topo, values, esel):
        return topo.in_dst[esel], topo.in_w[esel]

    def apply(self, gids, old, acc, has, ctx):
        return acc

    def activates(self, gids, old, new, ctx):
        return np.zeros(len(new), dtype=bool)

    def stays_active(self, gids, old, new, ctx):
        return np.zeros(len(new), dtype=bool)


class SSSPKernel(ArrayKernel):
    """dist = min(old, min(src.dist + w)); event-driven activation."""

    combine = "min"

    def __init__(self, source: int):
        self.source = source

    def init_acc(self, n: int) -> np.ndarray:
        return np.full(n, np.inf, dtype=np.float64)

    def edge_contrib(self, topo, values, esel):
        return (topo.in_dst[esel],
                values[topo.in_src[esel]] + topo.in_w[esel])

    def apply(self, gids, old, acc, has, ctx):
        return np.minimum(old, acc)

    def activates(self, gids, old, new, ctx):
        act = new < old
        if ctx.iteration == 0:
            act = act | (gids == self.source)
        return act

    def stays_active(self, gids, old, new, ctx):
        return np.zeros(len(new), dtype=bool)


class CCKernel(ArrayKernel):
    """Label min-propagation over int64 labels.

    ``gather_init`` is None in the scalar program, so ``apply`` keeps
    the old label when no edge contributed (``needs_acc_presence``);
    the int64.max fold sentinel never escapes through the ``has`` mask.
    """

    dtype = np.int64
    combine = "min"
    needs_acc_presence = True

    def init_acc(self, n: int) -> np.ndarray:
        return np.full(n, np.iinfo(np.int64).max, dtype=np.int64)

    def edge_contrib(self, topo, values, esel):
        return topo.in_dst[esel], values[topo.in_src[esel]]

    def apply(self, gids, old, acc, has, ctx):
        return np.where(has, np.minimum(old, acc), old)

    def activates(self, gids, old, new, ctx):
        if ctx.iteration == 0:
            return np.ones(len(new), dtype=bool)
        return new != old

    def stays_active(self, gids, old, new, ctx):
        return np.zeros(len(new), dtype=bool)
