"""Vertex programs: the paper's four algorithms (PageRank, ALS,
Community Detection, SSSP) plus extras used by tests and examples."""

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SingleSourceShortestPath
from repro.algorithms.als import AlternatingLeastSquares
from repro.algorithms.community import CommunityDetection
from repro.algorithms.connected_components import ConnectedComponents
from repro.algorithms.degree import DegreeCount

#: Short names used by the benchmark drivers (Table 1).
ALGORITHMS = {
    "pagerank": PageRank,
    "sssp": SingleSourceShortestPath,
    "als": AlternatingLeastSquares,
    "cd": CommunityDetection,
    "cc": ConnectedComponents,
    "degree": DegreeCount,
}

__all__ = [
    "PageRank",
    "SingleSourceShortestPath",
    "AlternatingLeastSquares",
    "CommunityDetection",
    "ConnectedComponents",
    "DegreeCount",
    "ALGORITHMS",
]
