"""Alternating Least Squares matrix factorisation (Table 1, SYN-GL).

The bipartite rating graph has users first (``[0, num_users)``) and
items after.  Each iteration updates one side: the active side gathers
its neighbors' latent vectors into the normal equations
``(sum x x^T + lambda I) w = sum r x`` and solves for its new latent
vector.  Both sides stay scheduled; ``participates`` alternates them.

History-free (the new latent factor depends only on the fixed other
side), hence compatible with the selfish-vertex optimisation.
"""

from __future__ import annotations

import numpy as np

from repro.engine.vertex_program import (
    ApplyContext,
    VertexProgram,
    VertexView,
)
from repro.utils.hashing import stable_hash
from repro.utils.sizing import BYTES_PER_VALUE


class AlternatingLeastSquares(VertexProgram):
    """ALS with tuple-valued latent vectors of dimension ``rank``."""

    name = "als"
    history_free = True

    def __init__(self, num_users: int, rank: int = 3,
                 regularization: float = 0.065):
        if num_users < 1:
            raise ValueError("num_users must be >= 1")
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.num_users = num_users
        self.rank = rank
        self.regularization = regularization

    # -- sides --------------------------------------------------------

    def is_user(self, vid: int) -> bool:
        return vid < self.num_users

    def participates(self, vid: int, ctx: ApplyContext) -> bool:
        # Even iterations refit users against fixed items, odd refit
        # items.
        return self.is_user(vid) == (ctx.iteration % 2 == 0)

    # -- program hooks ---------------------------------------------------

    def initial_value(self, vid: int, ctx: ApplyContext) -> tuple:
        # Deterministic pseudo-random init in [0.1, 1.1).
        return tuple(
            0.1 + (stable_hash(vid * self.rank + i) % 1_000_003) / 1_000_003
            for i in range(self.rank))

    def gather_init(self):
        return None

    def gather(self, acc, src: VertexView, weight: float,
               dst_vid: int):
        d = self.rank
        if acc is None:
            acc = ([0.0] * (d * d), [0.0] * d)
        ata, atb = acc
        x = src.value
        for i in range(d):
            xi = x[i]
            row = i * d
            for j in range(d):
                ata[row + j] += xi * x[j]
            atb[i] += weight * xi
        return acc

    def gather_sum(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        ata = [x + y for x, y in zip(a[0], b[0])]
        atb = [x + y for x, y in zip(a[1], b[1])]
        return (ata, atb)

    def acc_nbytes(self, acc) -> int:
        d = self.rank
        return (d * d + d) * BYTES_PER_VALUE

    def value_nbytes(self, value) -> int:
        return self.rank * BYTES_PER_VALUE

    def apply(self, vid: int, old_value: tuple, acc,
              ctx: ApplyContext) -> tuple:
        d = self.rank
        if acc is None:
            return old_value
        ata = np.asarray(acc[0], dtype=np.float64).reshape(d, d)
        atb = np.asarray(acc[1], dtype=np.float64)
        ata += self.regularization * np.eye(d)
        try:
            solved = np.linalg.solve(ata, atb)
        except np.linalg.LinAlgError:
            solved = np.linalg.lstsq(ata, atb, rcond=None)[0]
        return tuple(float(x) for x in solved)

    def activates_neighbors(self, vid: int, old_value, new_value,
                            ctx: ApplyContext) -> bool:
        return True

    def stays_active(self, vid: int, old_value, new_value,
                     ctx: ApplyContext) -> bool:
        return True

    # -- evaluation helper ------------------------------------------------

    def rmse(self, graph, values: dict[int, tuple]) -> float:
        """Root-mean-square rating reconstruction error."""
        total = 0.0
        count = 0
        for src, dst, rating in graph.edges():
            if not self.is_user(src):
                continue  # score each undirected rating once
            pred = sum(a * b for a, b in zip(values[src], values[dst]))
            total += (pred - rating) ** 2
            count += 1
        return (total / count) ** 0.5 if count else 0.0
