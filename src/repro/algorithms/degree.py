"""Weighted in-degree counting — a one-iteration smoke-test program.

Used by unit tests to check plumbing: after a single superstep each
vertex's value equals the sum of its in-edge weights.
"""

from __future__ import annotations

from repro.engine.vertex_program import (
    ApplyContext,
    VertexProgram,
    VertexView,
)


class DegreeCount(VertexProgram):
    """Sum of in-edge weights, converging after one superstep."""

    name = "degree"
    history_free = True
    combiner = "sum"

    def initial_value(self, vid: int, ctx: ApplyContext) -> float:
        return 0.0

    def gather_init(self) -> float:
        return 0.0

    def gather(self, acc: float, src: VertexView, weight: float,
               dst_vid: int) -> float:
        return acc + weight

    def contribution(self, src: VertexView, weight: float,
                     dst_vid: int) -> float:
        return weight

    def gather_sum(self, a: float, b: float) -> float:
        return (a or 0.0) + (b or 0.0)

    def kernel(self):
        from repro.algorithms.kernels import DegreeKernel
        return DegreeKernel()

    def apply(self, vid: int, old_value: float, acc: float,
              ctx: ApplyContext) -> float:
        return acc or 0.0

    def activates_neighbors(self, vid, old, new, ctx) -> bool:
        return False

    def stays_active(self, vid, old, new, ctx) -> bool:
        return False
