"""Connected components by label min-propagation (test/example extra).

Treats edges as undirected only if the graph is symmetrised; on a
directed graph it computes forward-reachability components, which is
what the tests assert on symmetric inputs.
"""

from __future__ import annotations

from repro.engine.vertex_program import (
    ApplyContext,
    VertexProgram,
    VertexView,
)


class ConnectedComponents(VertexProgram):
    """Propagate the minimum vertex id along in-edges."""

    name = "cc"
    history_free = False  # keeps its own minimum
    combiner = "min"

    def initial_value(self, vid: int, ctx: ApplyContext) -> int:
        return vid

    def gather_init(self) -> int | None:
        return None

    def gather(self, acc, src: VertexView, weight: float,
               dst_vid: int):
        if acc is None:
            return src.value
        return src.value if src.value < acc else acc

    def contribution(self, src: VertexView, weight: float, dst_vid: int):
        return src.value

    def gather_sum(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    def kernel(self):
        from repro.algorithms.kernels import CCKernel
        return CCKernel()

    def apply(self, vid: int, old_value: int, acc,
              ctx: ApplyContext) -> int:
        if acc is None:
            return old_value
        return min(old_value, acc)

    def activates_neighbors(self, vid: int, old_value: int, new_value: int,
                            ctx: ApplyContext) -> bool:
        return new_value != old_value or ctx.iteration == 0

    def stays_active(self, vid: int, old_value: int, new_value: int,
                     ctx: ApplyContext) -> bool:
        return False
