"""Community detection by label propagation (Table 1, DBLP).

Each vertex adopts the most frequent label among its in-neighbors
(ties broken toward the smallest label; a vertex keeps its own label
when no neighbor label strictly wins).  Label changes activate the
neighbors; the algorithm quiesces when no label moves.

The tie-break against the vertex's own label makes the program
history-dependent, so selfish vertices are synced normally.
"""

from __future__ import annotations

from repro.engine.vertex_program import (
    ApplyContext,
    VertexProgram,
    VertexView,
)
from repro.utils.sizing import BYTES_PER_VALUE


class CommunityDetection(VertexProgram):
    """Synchronous label propagation."""

    name = "cd"
    history_free = False

    def initial_value(self, vid: int, ctx: ApplyContext) -> int:
        return vid

    def gather_init(self) -> dict[int, int] | None:
        return None

    def gather(self, acc: dict[int, int] | None, src: VertexView,
               weight: float, dst_vid: int) -> dict[int, int]:
        if acc is None:
            acc = {}
        acc[src.value] = acc.get(src.value, 0) + 1
        return acc

    def gather_sum(self, a: dict[int, int] | None,
                   b: dict[int, int] | None) -> dict[int, int] | None:
        if a is None:
            return b
        if b is None:
            return a
        merged = dict(a)
        for label, count in b.items():
            merged[label] = merged.get(label, 0) + count
        return merged

    def acc_nbytes(self, acc) -> int:
        if not acc:
            return 1
        return len(acc) * 2 * BYTES_PER_VALUE

    def apply(self, vid: int, old_value: int, acc,
              ctx: ApplyContext) -> int:
        if not acc:
            return old_value
        # Most frequent label, smallest label id on ties; the current
        # label must be strictly beaten to change.
        best_label, best_count = min(
            acc.items(), key=lambda item: (-item[1], item[0]))
        current = acc.get(old_value, 0)
        if best_count > current or (best_count == current
                                    and best_label < old_value):
            return best_label
        return old_value

    def activates_neighbors(self, vid: int, old_value: int, new_value: int,
                            ctx: ApplyContext) -> bool:
        return new_value != old_value or ctx.iteration == 0

    def stays_active(self, vid: int, old_value: int, new_value: int,
                     ctx: ApplyContext) -> bool:
        return new_value != old_value or ctx.iteration == 0
