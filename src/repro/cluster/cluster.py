"""The assembled cluster: nodes + network + coordination + storage.

A :class:`Cluster` owns everything a job needs from the substrate and
provides the failure-injection surface used by the fault-tolerance tests
and benchmarks (``crash``, ``claim_standby``).
"""

from __future__ import annotations

from repro.cluster.coordination import CoordinationService
from repro.cluster.heartbeat import FailureDetector
from repro.cluster.network import Network
from repro.cluster.node import Node, NodeState
from repro.cluster.storage import PersistentStore
from repro.config import ClusterConfig
from repro.costmodel import CostModel, DEFAULT_COST_MODEL, NodeClocks
from repro.errors import ClusterError, NoStandbyNodeError, UnknownNodeError


class Cluster:
    """A simulated cluster matching the paper's testbed layout."""

    def __init__(self, config: ClusterConfig | None = None,
                 cost_model: CostModel | None = None,
                 store_in_memory: bool = False):
        self.config = config or ClusterConfig()
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        n = self.config.num_nodes
        self.nodes: dict[int, Node] = {}
        for nid in range(n):
            self.nodes[nid] = Node(nid, cores=self.config.cores_per_node)
        for k in range(self.config.num_standby):
            nid = n + k
            self.nodes[nid] = Node(nid, cores=self.config.cores_per_node,
                                   state=NodeState.STANDBY)
        self.network = Network(is_alive=self._node_is_alive)
        self.coordination = CoordinationService()
        self.detector = FailureDetector(
            self.nodes,
            interval_s=self.config.heartbeat_interval_s,
            misses=self.config.heartbeat_misses,
            members=lambda: self.coordination.members)
        self.store = PersistentStore(in_memory=store_in_memory)
        self.clocks = NodeClocks(len(self.nodes))
        for nid in range(n):
            self.coordination.register(nid)
        #: Monotonic membership epoch, bumped whenever the set of
        #: read-eligible workers changes (join/drain start, retirement,
        #: join completion).  Serve-layer routing caches key off it so
        #: reads never land on a draining or half-joined node
        #: (DESIGN.md §14).
        self.membership_epoch = 0
        #: Workers admitted mid-run (elastic scale-out).
        self._joined: set[int] = set()
        #: Workers currently being drained (masters moving off) or
        #: still receiving state (joining); not read-eligible.
        self._transitioning: set[int] = set()
        #: The draining subset of ``_transitioning`` (may not receive
        #: new replica placements).
        self._draining: set[int] = set()
        #: Workers retired after a completed drain.
        self._retired: set[int] = set()

    # -- views -------------------------------------------------------------

    def _node_is_alive(self, node_id: int) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.is_alive

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def alive_workers(self) -> list[int]:
        """Ids of alive nodes registered in the barrier group, sorted."""
        return sorted(nid for nid in self.coordination.members
                      if self._node_is_alive(nid))

    def standby_nodes(self) -> list[int]:
        return sorted(nid for nid, node in self.nodes.items()
                      if node.is_standby)

    def live_standby_nodes(self) -> list[int]:
        """Standby ids that are actually claimable as Rebirth targets.

        A spare can go bad while idle (heartbeat.py's "spare going
        bad"); a dead spare must never be handed out, whatever state
        bookkeeping says, so this filters out crashed nodes explicitly
        rather than trusting the STANDBY flag alone.
        """
        return sorted(nid for nid, node in self.nodes.items()
                      if node.is_standby and not node.is_crashed)

    @property
    def num_workers(self) -> int:
        """Initially provisioned worker-id space (load-time constant).

        Elastic membership admits workers *above* this id range (and
        above the standby pool); use :meth:`expected_workers` for the
        current population and :meth:`alive_workers` for liveness.
        """
        return self.config.num_nodes

    def expected_workers(self) -> int:
        """Workers currently expected to participate in computation."""
        return (self.config.num_nodes + len(self._joined)
                - len(self._retired))

    def read_eligible(self, node_id: int) -> bool:
        """Whether the serve layer may route a read to this node.

        Draining nodes are mid-scale-in (their masters are moving off),
        joining nodes are mid-scale-out (state still arriving) and
        retired nodes are gone — none may serve reads (DESIGN.md §14).
        """
        return (node_id not in self._transitioning
                and node_id not in self._retired
                and self._node_is_alive(node_id))

    def placement_eligible(self, node_id: int) -> bool:
        """Whether new replica copies may be placed on this node.

        Draining and retired nodes must not receive state (it would be
        moved right back off); joining nodes are fine — they are
        receiving state anyway.
        """
        return (self._node_is_alive(node_id)
                and node_id not in self._draining
                and node_id not in self._retired)

    # -- elastic membership (DESIGN.md §14) ------------------------------

    def join_node(self) -> int:
        """Admit a fresh worker node mid-run (elastic scale-out).

        The node id is allocated above every existing node (workers,
        spares, earlier joiners), registered in the barrier group and
        marked *transitioning* until the membership layer finishes
        moving state onto it.  Returns the new node id.
        """
        nid = max(self.nodes) + 1
        self.nodes[nid] = Node(nid, cores=self.config.cores_per_node)
        while len(self.clocks) <= nid:
            self.clocks.add_node(self.clocks.global_max())
        self.coordination.register(nid)
        self._joined.add(nid)
        self._transitioning.add(nid)
        self.membership_epoch += 1
        return nid

    def begin_drain(self, node_id: int) -> None:
        """Mark a worker as draining (masters will move off it)."""
        node = self.node(node_id)
        node.check_alive("drain")
        if node_id in self._retired:
            raise ClusterError(f"node {node_id} is already retired")
        self._transitioning.add(node_id)
        self._draining.add(node_id)
        self.membership_epoch += 1

    def finish_join(self, node_id: int) -> None:
        """A joining node finished receiving state; it is now a full,
        read-eligible worker."""
        self._transitioning.discard(node_id)
        self.membership_epoch += 1

    def abort_transition(self, node_id: int) -> None:
        """Abandon an in-flight join or drain whose target crashed.

        The crash makes the transition moot — the failure detector and
        recovery own the node now.  Bookkeeping is cleared so routing
        eligibility reflects liveness alone.
        """
        self._transitioning.discard(node_id)
        self._draining.discard(node_id)
        self.membership_epoch += 1

    def retire_node(self, node_id: int) -> None:
        """Complete a drain: deregister and retire the node.

        Must only be called once every master and replica copy has been
        moved off — retirement is planned removal, never a failure, so
        the detector forgets the id and no recovery runs.
        """
        node = self.node(node_id)
        self.coordination.deregister(node_id)
        node.retire()
        self.detector.forget(node_id)
        self.network.purge_from(node_id)
        self.network.purge_inbox(node_id)
        self._transitioning.discard(node_id)
        self._draining.discard(node_id)
        self._retired.add(node_id)
        self.membership_epoch += 1

    # -- failure injection ----------------------------------------------

    def crash(self, node_id: int) -> None:
        """Fail-stop a node: drop memory, purge its in-flight messages."""
        node = self.node(node_id)
        node.crash()
        self.network.purge_from(node_id)
        self.network.purge_inbox(node_id)

    def claim_standby(self) -> int:
        """Activate one *live* standby node for Rebirth recovery."""
        standbys = self.live_standby_nodes()
        if not standbys:
            raise NoStandbyNodeError("no live standby available for Rebirth")
        nid = standbys[0]
        self.nodes[nid].activate()
        self.coordination.register(nid)
        return nid

    def replace_node(self, crashed_id: int) -> Node:
        """Let a standby take over a crashed node's *logical* identity.

        The paper's recovery protocols address the replacement by the
        crashed node's logical id (surviving mirrors "know the new
        coming node's logic ID", Section 5.3.1), so the simulated
        standby is consumed and a fresh node re-registers under the old
        id with a bumped incarnation.
        """
        crashed = self.node(crashed_id)
        if not crashed.is_crashed:
            raise NoStandbyNodeError(
                f"node {crashed_id} has not crashed; nothing to replace")
        standbys = self.live_standby_nodes()
        if not standbys:
            raise NoStandbyNodeError("no live standby available for Rebirth")
        physical = standbys[0]
        del self.nodes[physical]
        incarnation = crashed.incarnation + 1
        fresh = Node(crashed_id, cores=self.config.cores_per_node)
        fresh.incarnation = incarnation
        self.nodes[crashed_id] = fresh
        self.detector.forget(crashed_id)
        self.coordination.register(crashed_id)
        return fresh

    def restart_node(self, crashed_id: int) -> Node:
        """Reboot a crashed node's logical id without consuming a spare.

        Used by the checkpoint rung of the fallback ladder: snapshot
        recovery reloads *everything* from the persistent store, so a
        re-provisioned machine with empty memory can take the slot even
        when the standby pool is dry (DESIGN.md §9).
        """
        crashed = self.node(crashed_id)
        if not crashed.is_crashed:
            raise ClusterError(
                f"node {crashed_id} has not crashed; nothing to restart")
        fresh = Node(crashed_id, cores=self.config.cores_per_node)
        fresh.incarnation = crashed.incarnation + 1
        self.nodes[crashed_id] = fresh
        self.detector.forget(crashed_id)
        self.coordination.register(crashed_id)
        return fresh

    def add_standby(self) -> int:
        """Provision an extra hot spare (grows the cluster)."""
        nid = max(self.nodes) + 1
        self.nodes[nid] = Node(nid, cores=self.config.cores_per_node,
                               state=NodeState.STANDBY)
        self.clocks.add_node(self.clocks.global_max())
        return nid
