"""The assembled cluster: nodes + network + coordination + storage.

A :class:`Cluster` owns everything a job needs from the substrate and
provides the failure-injection surface used by the fault-tolerance tests
and benchmarks (``crash``, ``claim_standby``).
"""

from __future__ import annotations

from repro.cluster.coordination import CoordinationService
from repro.cluster.heartbeat import FailureDetector
from repro.cluster.network import Network
from repro.cluster.node import Node, NodeState
from repro.cluster.storage import PersistentStore
from repro.config import ClusterConfig
from repro.costmodel import CostModel, DEFAULT_COST_MODEL, NodeClocks
from repro.errors import ClusterError, NoStandbyNodeError, UnknownNodeError


class Cluster:
    """A simulated cluster matching the paper's testbed layout."""

    def __init__(self, config: ClusterConfig | None = None,
                 cost_model: CostModel | None = None,
                 store_in_memory: bool = False):
        self.config = config or ClusterConfig()
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        n = self.config.num_nodes
        self.nodes: dict[int, Node] = {}
        for nid in range(n):
            self.nodes[nid] = Node(nid, cores=self.config.cores_per_node)
        for k in range(self.config.num_standby):
            nid = n + k
            self.nodes[nid] = Node(nid, cores=self.config.cores_per_node,
                                   state=NodeState.STANDBY)
        self.network = Network(is_alive=self._node_is_alive)
        self.coordination = CoordinationService()
        self.detector = FailureDetector(
            self.nodes,
            interval_s=self.config.heartbeat_interval_s,
            misses=self.config.heartbeat_misses,
            members=lambda: self.coordination.members)
        self.store = PersistentStore(in_memory=store_in_memory)
        self.clocks = NodeClocks(len(self.nodes))
        for nid in range(n):
            self.coordination.register(nid)

    # -- views -------------------------------------------------------------

    def _node_is_alive(self, node_id: int) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.is_alive

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def alive_workers(self) -> list[int]:
        """Ids of alive nodes registered in the barrier group, sorted."""
        return sorted(nid for nid in self.coordination.members
                      if self._node_is_alive(nid))

    def standby_nodes(self) -> list[int]:
        return sorted(nid for nid, node in self.nodes.items()
                      if node.is_standby)

    def live_standby_nodes(self) -> list[int]:
        """Standby ids that are actually claimable as Rebirth targets.

        A spare can go bad while idle (heartbeat.py's "spare going
        bad"); a dead spare must never be handed out, whatever state
        bookkeeping says, so this filters out crashed nodes explicitly
        rather than trusting the STANDBY flag alone.
        """
        return sorted(nid for nid, node in self.nodes.items()
                      if node.is_standby and not node.is_crashed)

    @property
    def num_workers(self) -> int:
        return self.config.num_nodes

    # -- failure injection ----------------------------------------------

    def crash(self, node_id: int) -> None:
        """Fail-stop a node: drop memory, purge its in-flight messages."""
        node = self.node(node_id)
        node.crash()
        self.network.purge_from(node_id)
        self.network.purge_inbox(node_id)

    def claim_standby(self) -> int:
        """Activate one *live* standby node for Rebirth recovery."""
        standbys = self.live_standby_nodes()
        if not standbys:
            raise NoStandbyNodeError("no live standby available for Rebirth")
        nid = standbys[0]
        self.nodes[nid].activate()
        self.coordination.register(nid)
        return nid

    def replace_node(self, crashed_id: int) -> Node:
        """Let a standby take over a crashed node's *logical* identity.

        The paper's recovery protocols address the replacement by the
        crashed node's logical id (surviving mirrors "know the new
        coming node's logic ID", Section 5.3.1), so the simulated
        standby is consumed and a fresh node re-registers under the old
        id with a bumped incarnation.
        """
        crashed = self.node(crashed_id)
        if not crashed.is_crashed:
            raise NoStandbyNodeError(
                f"node {crashed_id} has not crashed; nothing to replace")
        standbys = self.live_standby_nodes()
        if not standbys:
            raise NoStandbyNodeError("no live standby available for Rebirth")
        physical = standbys[0]
        del self.nodes[physical]
        incarnation = crashed.incarnation + 1
        fresh = Node(crashed_id, cores=self.config.cores_per_node)
        fresh.incarnation = incarnation
        self.nodes[crashed_id] = fresh
        self.detector.forget(crashed_id)
        self.coordination.register(crashed_id)
        return fresh

    def restart_node(self, crashed_id: int) -> Node:
        """Reboot a crashed node's logical id without consuming a spare.

        Used by the checkpoint rung of the fallback ladder: snapshot
        recovery reloads *everything* from the persistent store, so a
        re-provisioned machine with empty memory can take the slot even
        when the standby pool is dry (DESIGN.md §9).
        """
        crashed = self.node(crashed_id)
        if not crashed.is_crashed:
            raise ClusterError(
                f"node {crashed_id} has not crashed; nothing to restart")
        fresh = Node(crashed_id, cores=self.config.cores_per_node)
        fresh.incarnation = crashed.incarnation + 1
        self.nodes[crashed_id] = fresh
        self.detector.forget(crashed_id)
        self.coordination.register(crashed_id)
        return fresh

    def add_standby(self) -> int:
        """Provision an extra hot spare (grows the cluster)."""
        nid = max(self.nodes) + 1
        self.nodes[nid] = Node(nid, cores=self.config.cores_per_node,
                               state=NodeState.STANDBY)
        self.clocks.add_node(self.clocks.global_max())
        return nid
