"""Worker-node abstraction with fail-stop semantics.

A :class:`Node` is a container for per-machine state (the local graph
lives in :mod:`repro.engine.local_graph`) plus a crash flag.  The paper
assumes a fail-stop model (Section 3.2): a crashed machine stops
responding and never emits wild writes, so crashing a node here simply
drops its in-memory state and rejects further operations.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import NodeCrashedError


class NodeState(enum.Enum):
    """Lifecycle of a simulated machine."""

    #: Participating in computation.
    ALIVE = "alive"
    #: Crashed (fail-stop); memory contents lost.
    CRASHED = "crashed"
    #: Hot spare, not yet participating (Rebirth target).
    STANDBY = "standby"
    #: Drained and deliberately removed from the cluster (elastic
    #: scale-in, DESIGN.md §14).  Unlike CRASHED, retirement is planned:
    #: all state was moved off first, so no recovery ever runs for it.
    RETIRED = "retired"


class Node:
    """One simulated machine.

    Attributes
    ----------
    node_id:
        Stable identifier; standby nodes get ids above the workers'.
    cores:
        CPU cores, used by the cost model for compute time.
    local:
        Arbitrary per-node payload (the engine stores its
        ``LocalGraph`` here).  Dropped on crash, as DRAM would be.
    """

    def __init__(self, node_id: int, cores: int = 4,
                 state: NodeState = NodeState.ALIVE):
        self.node_id = node_id
        self.cores = cores
        self.state = state
        self.local: Any = None
        #: Number of times this node has been (re)started; lets tests
        #: tell a reborn node apart from the original.
        self.incarnation = 0

    # -- state transitions ---------------------------------------------

    @property
    def is_alive(self) -> bool:
        return self.state is NodeState.ALIVE

    @property
    def is_crashed(self) -> bool:
        return self.state is NodeState.CRASHED

    @property
    def is_standby(self) -> bool:
        return self.state is NodeState.STANDBY

    @property
    def is_retired(self) -> bool:
        return self.state is NodeState.RETIRED

    def retire(self) -> None:
        """Planned removal after a drain (no state left to lose)."""
        if self.state is not NodeState.ALIVE:
            raise NodeCrashedError(self.node_id, "retire")
        self.state = NodeState.RETIRED
        self.local = None

    def crash(self) -> None:
        """Fail-stop: lose all volatile state and stop responding."""
        if self.state is NodeState.CRASHED:
            return
        self.state = NodeState.CRASHED
        self.local = None

    def activate(self) -> None:
        """Bring a standby node into the computation (Rebirth)."""
        if self.state is not NodeState.STANDBY:
            raise NodeCrashedError(self.node_id, "activate")
        self.state = NodeState.ALIVE
        self.incarnation += 1

    def check_alive(self, operation: str = "operation") -> None:
        """Raise :class:`NodeCrashedError` unless the node is alive."""
        if self.state is not NodeState.ALIVE:
            raise NodeCrashedError(self.node_id, operation)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Node(id={self.node_id}, state={self.state.value}, "
                f"cores={self.cores})")
