"""Heartbeat-based failure detection.

The paper's detector (Section 3.2) is deliberately simple: every node
heartbeats a central master at a conservative interval (500 ms) and the
master declares a node dead after several missed beats.  Because
recovery is always deferred to the next global barrier, the detector
does not need to be fast, only safe.

In the simulation the detector both *injects* crashes (from a
:class:`FailureSchedule`-like caller crashing nodes directly) and
*observes* them; its contribution to simulated time is the detection
delay ``interval * misses`` added once per failure event, matching the
~7 s detection span visible in the paper's case study (Fig. 12).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cluster.node import Node


class FailureDetector:
    """Central-master heartbeat detector over simulated nodes.

    ``members`` (optional) restricts detection to nodes registered in
    the barrier group: an unclaimed standby that dies is a spare going
    bad, not a computation failure, and must not trigger recovery.
    """

    def __init__(self, nodes: dict[int, Node], interval_s: float = 0.5,
                 misses: int = 14,
                 members: Callable[[], Iterable[int]] | None = None):
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if misses < 1:
            raise ValueError("misses must be >= 1")
        self._nodes = nodes
        self.interval_s = interval_s
        self.misses = misses
        self._members = members
        self._known_failed: set[int] = set()

    @property
    def detection_delay_s(self) -> float:
        """Simulated time between a crash and its safe declaration."""
        return self.interval_s * self.misses

    def poll(self) -> set[int]:
        """Return the set of members currently observed as crashed.

        Idempotent across recovery: a logical id that heartbeats again
        (its slot was re-used by a standby during Rebirth) is cleared
        from the known-failed record, so a *later* crash of the same id
        is reported as a fresh failure even if :meth:`forget` was never
        called.
        """
        failed: set[int] = set()
        for nid, node in self._nodes.items():
            if node.is_crashed:
                failed.add(nid)
            elif node.is_alive:
                self._known_failed.discard(nid)
        if self._members is not None:
            failed &= set(self._members())
        return failed

    def newly_failed(self) -> set[int]:
        """Crashes observed since the previous call (edge-triggered)."""
        failed = self.poll()
        fresh = failed - self._known_failed
        self._known_failed |= fresh
        return fresh

    def forget(self, node_id: int) -> None:
        """Clear a node's failed record (after a slot is re-used)."""
        self._known_failed.discard(node_id)
