"""Heartbeat-based failure detection.

The paper's detector (Section 3.2) is deliberately simple: every node
heartbeats a central master at a conservative interval (500 ms) and the
master declares a node dead after several missed beats.  Because
recovery is always deferred to the next global barrier, the detector
does not need to be fast, only safe.

In the simulation the detector both *injects* crashes (from a
:class:`FailureSchedule`-like caller crashing nodes directly) and
*observes* them; its contribution to simulated time is the detection
delay ``interval * misses`` added once per failure event, matching the
~7 s detection span visible in the paper's case study (Fig. 12).

Flap tolerance (DESIGN.md §14): on top of the binary dead/alive
verdict the detector keeps a per-node *suspicion level* — consecutive
missed heartbeats over the miss budget.  A node that misses beats but
returns below the budget was *flapping*, not dead: its suspicion is
cleared, its flap counter advances, and the membership layer
re-integrates it with a delta sync instead of a full rebirth.  The
statistics (miss rates, flap counts, inter-failure gaps) feed the
adaptive replication-floor policy and are surfaced by the engine as
``ft.suspicion.node.N`` gauges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable

from repro.cluster.node import Node


class FailureDetector:
    """Central-master heartbeat detector over simulated nodes.

    ``members`` (optional) restricts detection to nodes registered in
    the barrier group: an unclaimed standby that dies is a spare going
    bad, not a computation failure, and must not trigger recovery.
    """

    def __init__(self, nodes: dict[int, Node], interval_s: float = 0.5,
                 misses: int = 14,
                 members: Callable[[], Iterable[int]] | None = None):
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if misses < 1:
            raise ValueError("misses must be >= 1")
        self._nodes = nodes
        self.interval_s = interval_s
        self.misses = misses
        self._members = members
        self._known_failed: set[int] = set()
        #: node -> consecutive missed heartbeats (0 = healthy).
        self._missed: dict[int, int] = defaultdict(int)
        #: node -> completed flap episodes (missed beats, then returned).
        self._flaps: dict[int, int] = defaultdict(int)
        #: node -> total heartbeats missed over the job (miss rate input).
        self._missed_total: dict[int, int] = defaultdict(int)
        #: Failure-event timeline (engine iterations) for inter-failure
        #: statistics; appended by :meth:`record_failure_event`.
        self.failure_iterations: list[int] = []

    @property
    def detection_delay_s(self) -> float:
        """Simulated time between a crash and its safe declaration."""
        return self.interval_s * self.misses

    # -- suspicion / flap statistics ------------------------------------

    def record_flap(self, node_id: int, beats: int | None = None) -> int:
        """Record one flap episode: ``beats`` missed heartbeats followed
        by a return *below* the death budget.

        Suspicion rises to the missed-beat count and immediately clears
        (the node answered again); the flap counter and cumulative miss
        totals advance.  Returns the number of beats charged, clamped so
        a flap can never cross the declared-dead threshold.
        """
        if beats is None:
            beats = max(1, self.misses // 2)
        beats = max(1, min(beats, self.misses - 1))
        self._missed[node_id] = 0  # returned: consecutive run broken
        self._missed_total[node_id] += beats
        self._flaps[node_id] += 1
        return beats

    def suspicion_level(self, node_id: int) -> float:
        """Current suspicion in ``[0, 1]``: consecutive missed beats
        over the miss budget (1.0 = declared dead)."""
        node = self._nodes.get(node_id)
        if node is not None and node.is_crashed:
            return 1.0
        return min(1.0, self._missed[node_id] / self.misses)

    def flap_count(self, node_id: int) -> int:
        return self._flaps[node_id]

    def record_failure_event(self, iteration: int, count: int = 1) -> None:
        """Log a confirmed failure event (inter-failure-time input)."""
        self.failure_iterations.extend([iteration] * count)

    def stats(self) -> dict[str, dict[int, float] | list[int]]:
        """Detector statistics consumed by the adaptive-floor policy."""
        return {
            "suspicion": {nid: self.suspicion_level(nid)
                          for nid in self._nodes},
            "flaps": dict(self._flaps),
            "missed_total": dict(self._missed_total),
            "failure_iterations": list(self.failure_iterations),
        }

    def poll(self) -> set[int]:
        """Return the set of members currently observed as crashed.

        Idempotent across recovery: a logical id that heartbeats again
        (its slot was re-used by a standby during Rebirth) is cleared
        from the known-failed record, so a *later* crash of the same id
        is reported as a fresh failure even if :meth:`forget` was never
        called.
        """
        failed: set[int] = set()
        for nid, node in self._nodes.items():
            if node.is_crashed:
                failed.add(nid)
                self._missed[nid] = self.misses
            elif node.is_alive:
                self._known_failed.discard(nid)
                self._missed[nid] = 0
        if self._members is not None:
            failed &= set(self._members())
        return failed

    def newly_failed(self) -> set[int]:
        """Crashes observed since the previous call (edge-triggered)."""
        failed = self.poll()
        fresh = failed - self._known_failed
        self._known_failed |= fresh
        return fresh

    def forget(self, node_id: int) -> None:
        """Clear a node's failed record (after a slot is re-used)."""
        self._known_failed.discard(node_id)
        self._missed[node_id] = 0
