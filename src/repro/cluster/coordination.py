"""ZooKeeper-like coordination: barriers, membership, shared state.

Imitator inherits barrier-based synchronisation and distributed shared
state from Apache Hama, implemented over ZooKeeper (Section 3.2,
footnote 5: each node creates a file in a shared directory and the last
arriver wakes everyone).  This module provides the same contract to the
engine — ``enter_barrier``/``leave_barrier`` returning a result that
reports node failures — in a deterministic single-process form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import UnknownNodeError


@dataclass(frozen=True)
class BarrierResult:
    """What a node learns when it passes a global barrier."""

    #: Barrier sequence number (monotonic per job).
    epoch: int
    #: Nodes newly detected as failed at this barrier, ordered.
    failed: tuple[int, ...]

    def is_fail(self) -> bool:
        """Mirror of the paper's ``state.is_fail()`` (Algorithm 1)."""
        return bool(self.failed)


class CoordinationService:
    """Membership registry, shared KV store and failure-aware barriers."""

    def __init__(self) -> None:
        self._members: set[int] = set()
        self._kv: dict[str, Any] = {}
        self._epoch = 0
        self._reported_failed: set[int] = set()

    # -- membership -----------------------------------------------------

    def register(self, node_id: int) -> None:
        """Add a node to the barrier group (workers and reborn standbys)."""
        self._members.add(node_id)
        self._reported_failed.discard(node_id)

    def deregister(self, node_id: int) -> None:
        if node_id not in self._members:
            raise UnknownNodeError(node_id)
        self._members.discard(node_id)

    @property
    def members(self) -> frozenset[int]:
        return frozenset(self._members)

    # -- shared state -----------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Publish a small shared value (iteration counter, halt votes)."""
        self._kv[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._kv.get(key, default)

    def delete(self, key: str) -> None:
        self._kv.pop(key, None)

    # -- barrier -----------------------------------------------------------

    def barrier(self, detected_failures: set[int]) -> BarrierResult:
        """Run one global barrier round.

        ``detected_failures`` is the failure detector's current view of
        crashed members.  A crashed node is removed from the membership
        and reported exactly once; the next barriers proceed with the
        survivors (recovery re-registers replacements).
        """
        self._epoch += 1
        newly_failed = sorted(
            n for n in detected_failures
            if n in self._members and n not in self._reported_failed)
        for n in newly_failed:
            self._reported_failed.add(n)
            self._members.discard(n)
        return BarrierResult(epoch=self._epoch, failed=tuple(newly_failed))

    @property
    def epoch(self) -> int:
        return self._epoch
