"""Simulated cluster substrate.

This package stands in for the paper's 50-node EC2-like testbed: worker
:class:`Node` objects with fail-stop semantics, a byte-accounting
:class:`Network`, a ZooKeeper-like :class:`CoordinationService`
(barriers, membership, shared state), a heartbeat
:class:`FailureDetector`, and a :class:`PersistentStore` standing in for
HDFS.  All components are deterministic and single-process; simulated
time comes from :mod:`repro.costmodel`.
"""

from repro.cluster.node import Node, NodeState
from repro.cluster.network import Network, Message, MessageKind
from repro.cluster.coordination import CoordinationService, BarrierResult
from repro.cluster.storage import PersistentStore, StoredObject
from repro.cluster.heartbeat import FailureDetector
from repro.cluster.cluster import Cluster

__all__ = [
    "Node",
    "NodeState",
    "Network",
    "Message",
    "MessageKind",
    "CoordinationService",
    "BarrierResult",
    "PersistentStore",
    "StoredObject",
    "FailureDetector",
    "Cluster",
]
