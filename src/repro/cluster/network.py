"""Message transport with batching semantics and byte accounting.

The real systems (Cyclops, PowerLyra) batch all messages between a node
pair within one superstep into a single transfer.  The simulated network
therefore exposes per-step ``(src, dst) -> bytes/messages`` counters,
which the cost model turns into communication time, plus job-lifetime
totals that back the paper's communication-cost tables (Table 6).

Fail-stop interaction: a message addressed to a crashed node is dropped
(counted in ``dropped_msgs``); when a node crashes, its not-yet-delivered
outgoing messages are purged — exactly the "messages from crashed nodes
may be lost" situation that forces the rollback in Algorithm 1.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import UnknownNodeError
from repro.utils.sizing import BYTES_PER_MSG_HEADER


class MessageKind(enum.Enum):
    """Logical message classes; recovery messages are tracked separately."""

    #: Master -> replica value synchronisation (edge-cut sync phase,
    #: vertex-cut scatter phase).
    SYNC = "sync"
    #: Master -> mirror full-state synchronisation (value + dynamic
    #: full-state extras, Section 4.2).
    MIRROR_SYNC = "mirror_sync"
    #: Replica -> master partial gather accumulator (vertex-cut).
    GATHER = "gather"
    #: Remote activation request (scatter-phase signalling).
    ACTIVATE = "activate"
    #: Recovery traffic (Rebirth reload, Migration reshuffle).
    RECOVERY = "recovery"
    #: Small control-plane traffic (location updates, promotion notices).
    CONTROL = "control"


@dataclass
class Message:
    """One logical message; ``nbytes`` is its modelled wire size."""

    kind: MessageKind
    src: int
    dst: int
    payload: Any
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("message size cannot be negative")


@dataclass
class TrafficStats:
    """Aggregated counters, by message kind and node pair."""

    msgs_by_kind: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int))
    bytes_by_kind: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int))
    total_msgs: int = 0
    total_bytes: int = 0

    def record(self, msg: Message) -> None:
        self.msgs_by_kind[msg.kind] += 1
        self.bytes_by_kind[msg.kind] += msg.nbytes + BYTES_PER_MSG_HEADER
        self.total_msgs += 1
        self.total_bytes += msg.nbytes + BYTES_PER_MSG_HEADER


class Network:
    """In-memory batched transport between simulated nodes."""

    def __init__(self, is_alive: Callable[[int], bool]):
        self._is_alive = is_alive
        self._queues: dict[int, list[Message]] = defaultdict(list)
        #: Messages held back by a ``delay`` fault verdict; merged at the
        #: back of the destination's inbox on the next ``deliver`` (late
        #: arrival within the same barrier window).
        self._delayed: dict[int, list[Message]] = defaultdict(list)
        # step-scoped counters (reset by begin_step)
        self.step_bytes: dict[int, dict[int, int]] = \
            defaultdict(lambda: defaultdict(int))
        self.step_msgs: dict[int, dict[int, int]] = \
            defaultdict(lambda: defaultdict(int))
        # lifetime counters
        self.totals = TrafficStats()
        self.dropped_msgs = 0
        #: Wire bytes (incl. header) of messages dropped at a dead
        #: destination; keeps the cost model's traffic accounting honest
        #: during failure windows.
        self.dropped_bytes = 0
        #: Optional fault injector (chaos testing): callable returning a
        #: verdict for each remote message — ``"deliver"`` (default),
        #: ``"drop"``, ``"duplicate"`` or ``"delay"``.
        self.fault_injector: Callable[[Message], str] | None = None
        # chaos-injected fault counters
        self.chaos_dropped_msgs = 0
        self.chaos_dropped_bytes = 0
        self.chaos_duplicated_msgs = 0
        self.chaos_delayed_msgs = 0

    # -- step lifecycle -------------------------------------------------

    def begin_step(self) -> None:
        """Reset the per-superstep batching counters."""
        self.step_bytes = defaultdict(lambda: defaultdict(int))
        self.step_msgs = defaultdict(lambda: defaultdict(int))

    # -- send / receive ---------------------------------------------------

    def send(self, msg: Message) -> None:
        """Enqueue a message; drops it if the destination has crashed."""
        if msg.src == msg.dst:
            # Local delivery is free in the real systems too: co-located
            # master/replica pairs share memory.  Still delivered so the
            # engine code stays uniform, but not counted as traffic.
            self._queues[msg.dst].append(msg)
            return
        if not self._is_alive(msg.dst):
            self.dropped_msgs += 1
            self.dropped_bytes += msg.nbytes + BYTES_PER_MSG_HEADER
            return
        copies = 1
        delayed = False
        if self.fault_injector is not None:
            verdict = self.fault_injector(msg)
            if verdict == "drop":
                self.chaos_dropped_msgs += 1
                self.chaos_dropped_bytes += (msg.nbytes
                                             + BYTES_PER_MSG_HEADER)
                return
            if verdict == "duplicate":
                # A retransmission: both copies cross the wire.
                copies = 2
                self.chaos_duplicated_msgs += 1
            elif verdict == "delay":
                delayed = True
                self.chaos_delayed_msgs += 1
        for _ in range(copies):
            if delayed:
                self._delayed[msg.dst].append(msg)
            else:
                self._queues[msg.dst].append(msg)
            self.step_bytes[msg.src][msg.dst] += (msg.nbytes
                                                  + BYTES_PER_MSG_HEADER)
            self.step_msgs[msg.src][msg.dst] += 1
            self.totals.record(msg)

    def deliver(self, node_id: int) -> list[Message]:
        """Drain and return the destination's inbox.

        Delayed (chaos-reordered) messages arrive after the regular
        batch — late, but still within the same barrier window.
        """
        if not self._is_alive(node_id):
            raise UnknownNodeError(node_id)
        inbox = self._queues.get(node_id, [])
        self._queues[node_id] = []
        late = self._delayed.pop(node_id, None)
        if late:
            inbox.extend(late)
        return inbox

    def peek_inbox_size(self, node_id: int) -> int:
        return (len(self._queues.get(node_id, ()))
                + len(self._delayed.get(node_id, ())))

    # -- failure interaction ---------------------------------------------

    def purge_from(self, node_id: int) -> int:
        """Drop undelivered messages originating at a crashed node.

        Returns the number of purged messages.  Models in-flight loss:
        a node that dies mid-superstep may have sent only a prefix of
        its batch, so the engine must roll the iteration back anyway
        (Algorithm 1, line 9) and we discard the whole batch.
        """
        purged = 0
        for queues in (self._queues, self._delayed):
            for dst, queue in queues.items():
                kept = [m for m in queue if m.src != node_id]
                purged += len(queue) - len(kept)
                queues[dst] = kept
        return purged

    def purge_inbox(self, node_id: int) -> int:
        """Drop messages queued *for* a node (its memory is gone)."""
        n = (len(self._queues.get(node_id, ()))
             + len(self._delayed.get(node_id, ())))
        self._queues[node_id] = []
        self._delayed.pop(node_id, None)
        return n

    # -- accounting views --------------------------------------------------

    def step_bytes_sent_by(self, node_id: int) -> int:
        return sum(self.step_bytes.get(node_id, {}).values())

    def step_msgs_sent_by(self, node_id: int) -> int:
        return sum(self.step_msgs.get(node_id, {}).values())
