"""Message transport with batching semantics and byte accounting.

The real systems (Cyclops, PowerLyra) batch all messages between a node
pair within one superstep into a single transfer.  The simulated network
therefore exposes per-step ``(src, dst) -> bytes/messages`` counters,
which the cost model turns into communication time, plus job-lifetime
totals that back the paper's communication-cost tables (Table 6).

Fail-stop interaction: a message addressed to a crashed node is dropped
(counted in ``dropped_msgs``); when a node crashes, its not-yet-delivered
outgoing messages are purged — exactly the "messages from crashed nodes
may be lost" situation that forces the rollback in Algorithm 1.  Purged
traffic is deducted from the *step* counters (the barrier must not
charge comm time for bytes that never completed the exchange) but stays
in the lifetime totals (those bytes did cross the wire).

Columnar batches (DESIGN.md §10): a payload flagged ``is_columnar``
carries N logical records in one physical message.  Record-level
counters (``msgs_by_kind``, ``total_msgs``, the ``step_msgs`` CPU-cost
input) count the N records, preserving their historical meaning;
``batches_by_kind`` / ``total_batches`` count physical transfers.  Wire
bytes charge the sum of the per-record payload sizes plus **one**
``BYTES_PER_MSG_HEADER`` per physical message — the paper's batched
transfer model (Section 5.1.1).  With a ``record_fault_injector``
installed, chaos verdicts are drawn per record and a batch splits into
per-verdict sub-batches (each with its own header), so the chaos matrix
and differential oracles keep record-level semantics.

Counters live in a :class:`repro.obs.MetricsRegistry` under the
``net.*`` namespace; the legacy attribute names (``dropped_msgs``,
``chaos_duplicated_msgs``, ...) are registry-backed views.
"""

from __future__ import annotations

import copy
import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import UnknownNodeError
from repro.exec.transport import LocalHub
from repro.obs.registry import MetricsRegistry
from repro.utils.sizing import BYTES_PER_MSG_HEADER


class MessageKind(enum.Enum):
    """Logical message classes; recovery messages are tracked separately."""

    #: Master -> replica value synchronisation (edge-cut sync phase,
    #: vertex-cut scatter phase).
    SYNC = "sync"
    #: Master -> mirror full-state synchronisation (value + dynamic
    #: full-state extras, Section 4.2).
    MIRROR_SYNC = "mirror_sync"
    #: Replica -> master partial gather accumulator (vertex-cut).
    GATHER = "gather"
    #: Remote activation request (scatter-phase signalling).
    ACTIVATE = "activate"
    #: Recovery traffic (Rebirth reload, Migration reshuffle).
    RECOVERY = "recovery"
    #: Small control-plane traffic (location updates, promotion notices).
    CONTROL = "control"


@dataclass
class Message:
    """One physical message; ``nbytes`` is its modelled payload size.

    A columnar-batch payload makes this one *transfer* carrying
    :func:`record_count` logical records; scalar payloads carry one.
    """

    kind: MessageKind
    src: int
    dst: int
    payload: Any
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("message size cannot be negative")


def record_count(payload: Any) -> int:
    """Logical records carried by a payload (1 for scalar payloads)."""
    if getattr(payload, "is_columnar", False):
        return payload.record_count
    return 1


@dataclass
class TrafficStats:
    """Aggregated counters, by message kind.

    ``msgs_by_kind`` / ``total_msgs`` count *logical records* (one per
    vertex-level payload, the paper's message unit); ``batches_by_kind``
    / ``total_batches`` count *physical transfers* (one per batch, the
    Python-object / header unit).  For scalar messages the two match.
    """

    msgs_by_kind: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int))
    bytes_by_kind: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int))
    batches_by_kind: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int))
    total_msgs: int = 0
    total_bytes: int = 0
    total_batches: int = 0

    def record(self, msg: Message) -> None:
        records = record_count(msg.payload)
        wire = msg.nbytes + BYTES_PER_MSG_HEADER
        self.msgs_by_kind[msg.kind] += records
        self.bytes_by_kind[msg.kind] += wire
        self.batches_by_kind[msg.kind] += 1
        self.total_msgs += records
        self.total_bytes += wire
        self.total_batches += 1


class Network:
    """In-memory batched transport between simulated nodes."""

    def __init__(self, is_alive: Callable[[int], bool],
                 metrics: MetricsRegistry | None = None):
        self._is_alive = is_alive
        #: Per-destination FIFO inbox queues — the extracted
        #: :class:`~repro.exec.transport.LocalHub` structure shared with
        #: the in-process transport endpoints (DESIGN.md §12).
        self._queues = LocalHub()
        #: Messages held back by a ``delay`` fault verdict; merged at the
        #: back of the destination's inbox on the next ``deliver`` (late
        #: arrival within the same barrier window).
        self._delayed = LocalHub()
        # step-scoped counters (reset by begin_step)
        self.step_bytes: dict[int, dict[int, int]] = \
            defaultdict(lambda: defaultdict(int))
        self.step_msgs: dict[int, dict[int, int]] = \
            defaultdict(lambda: defaultdict(int))
        # lifetime counters
        self.totals = TrafficStats()
        self.metrics = metrics or MetricsRegistry()
        #: Optional fault injector (chaos testing): callable returning a
        #: verdict for each remote message — ``"deliver"`` (default),
        #: ``"drop"``, ``"duplicate"`` or ``"delay"``.
        self.fault_injector: Callable[[Message], str] | None = None
        #: Optional record-level injector for columnar batches: called
        #: as ``(msg, record_index) -> verdict`` once per record, so
        #: chaos keeps per-record semantics across batched transport.
        #: Without it, ``fault_injector``'s single verdict applies to
        #: the whole batch.
        self.record_fault_injector: Callable[[Message, int], str] | None = \
            None
        #: Combining-layer accounting (DESIGN.md §15), over payloads
        #: that declare the pre/physical record split (gather batches):
        #: ``combine_pre`` counts the records that would have crossed
        #: the wire uncombined, ``combine_phys`` the records that did.
        self.combine_pre = 0
        self.combine_phys = 0

    # -- metrics --------------------------------------------------------

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Re-home the ``net.*`` counters into a job-wide registry.

        The network is built with the cluster, before the engine (and
        its registry) exist; counts accumulated so far carry over.
        """
        if metrics is self.metrics:
            return
        metrics.absorb(self.metrics)
        self.metrics = metrics

    @property
    def dropped_msgs(self) -> int:
        """Messages dropped at a dead destination."""
        return int(self.metrics.value("net.dropped_msgs"))

    @property
    def dropped_bytes(self) -> int:
        """Wire bytes (incl. header) of messages dropped at a dead
        destination; keeps the cost model's traffic accounting honest
        during failure windows."""
        return int(self.metrics.value("net.dropped_bytes"))

    @property
    def chaos_dropped_msgs(self) -> int:
        return int(self.metrics.value("net.chaos_dropped_msgs"))

    @property
    def chaos_dropped_bytes(self) -> int:
        return int(self.metrics.value("net.chaos_dropped_bytes"))

    @property
    def chaos_duplicated_msgs(self) -> int:
        return int(self.metrics.value("net.chaos_duplicated_msgs"))

    @property
    def chaos_delayed_msgs(self) -> int:
        return int(self.metrics.value("net.chaos_delayed_msgs"))

    @property
    def purged_msgs(self) -> int:
        """In-flight messages discarded by crash purges (both kinds)."""
        return int(self.metrics.value("net.purged_msgs"))

    # -- step lifecycle -------------------------------------------------

    def begin_step(self) -> None:
        """Reset the per-superstep batching counters."""
        self.step_bytes = defaultdict(lambda: defaultdict(int))
        self.step_msgs = defaultdict(lambda: defaultdict(int))

    # -- send / receive ---------------------------------------------------

    def send(self, msg: Message) -> None:
        """Enqueue a message; drops it if the destination has crashed."""
        if msg.src == msg.dst:
            # Local delivery is free in the real systems too: co-located
            # master/replica pairs share memory.  Still delivered so the
            # engine code stays uniform, but not counted as traffic.
            self._queues.append(msg.dst, msg)
            return
        if not self._is_alive(msg.dst):
            self.metrics.inc("net.dropped_msgs", record_count(msg.payload))
            self.metrics.inc("net.dropped_bytes",
                             msg.nbytes + BYTES_PER_MSG_HEADER)
            return
        if self.fault_injector is not None:
            if (self.record_fault_injector is not None
                    and getattr(msg.payload, "is_columnar", False)):
                self._send_with_record_faults(msg)
                return
            records = record_count(msg.payload)
            verdict = self.fault_injector(msg)
            if verdict == "drop":
                self.metrics.inc("net.chaos_dropped_msgs", records)
                self.metrics.inc("net.chaos_dropped_bytes",
                                 msg.nbytes + BYTES_PER_MSG_HEADER)
                return
            delayed = verdict == "delay"
            if delayed:
                self.metrics.inc("net.chaos_delayed_msgs", records)
            self._enqueue(msg, delayed=delayed)
            if verdict == "duplicate":
                # A retransmission: both copies cross the wire, and each
                # delivery must own an independent payload — a consumer
                # mutating one copy of a duplicated message must not
                # corrupt the other in-flight delivery.
                self.metrics.inc("net.chaos_duplicated_msgs", records)
                self._enqueue(self._clone_message(msg), delayed=delayed)
            return
        self._enqueue(msg)

    def _enqueue(self, msg: Message, delayed: bool = False) -> None:
        """Queue one physical message and charge all counters."""
        (self._delayed if delayed else self._queues).append(msg.dst, msg)
        wire_bytes = msg.nbytes + BYTES_PER_MSG_HEADER
        records = record_count(msg.payload)
        self.step_bytes[msg.src][msg.dst] += wire_bytes
        self.step_msgs[msg.src][msg.dst] += records
        self.totals.record(msg)
        self.metrics.inc("net.sent_msgs", records)
        self.metrics.inc("net.sent_batches")
        self.metrics.inc("net.sent_bytes", wire_bytes)
        self.metrics.inc(f"net.msgs.{msg.kind.value}", records)
        self.metrics.inc(f"net.bytes.{msg.kind.value}", wire_bytes)
        pre = getattr(msg.payload, "precombine_record_count", None)
        if pre is not None:
            phys = msg.payload.physical_record_count
            self.combine_pre += pre
            self.combine_phys += phys
            self.metrics.inc(f"net.combine.records_pre.{msg.kind.value}",
                             pre)
            self.metrics.inc(f"net.combine.records_phys.{msg.kind.value}",
                             phys)

    @staticmethod
    def _clone_message(msg: Message) -> Message:
        """Independent copy of a message for chaos duplication.

        Payloads exposing ``clone()`` (the columnar batches) get a
        cheap payload-aware copy; anything else falls back to
        ``copy.deepcopy`` to keep the independence guarantee.
        """
        payload = msg.payload
        clone = (payload.clone() if hasattr(payload, "clone")
                 else copy.deepcopy(payload))
        return Message(msg.kind, msg.src, msg.dst, clone, msg.nbytes)

    def _send_with_record_faults(self, msg: Message) -> None:
        """Split a columnar batch into per-verdict sub-batches.

        One verdict is drawn per record.  Records verdicted ``deliver``
        ship together; ``duplicate`` records ship in the main sub-batch
        *and* again in an independent duplicate sub-batch; ``delay``
        records ship as a held-back sub-batch; ``drop`` records never
        ship (payload bytes counted, but no header — they would have
        shared the batch's).  Each shipped sub-batch is a physical
        message with its own header, so byte accounting stays exact.
        """
        payload = msg.payload
        injector = self.record_fault_injector
        keep: list[int] = []
        dup: list[int] = []
        delay: list[int] = []
        dropped = 0
        dropped_bytes = 0
        for i in range(payload.record_count):
            verdict = injector(msg, i)
            if verdict == "drop":
                dropped += 1
                dropped_bytes += payload.record_nbytes(i)
            elif verdict == "duplicate":
                keep.append(i)
                dup.append(i)
            elif verdict == "delay":
                delay.append(i)
            else:
                keep.append(i)
        if dropped:
            self.metrics.inc("net.chaos_dropped_msgs", dropped)
            self.metrics.inc("net.chaos_dropped_bytes", dropped_bytes)
        if dup:
            self.metrics.inc("net.chaos_duplicated_msgs", len(dup))
        if delay:
            self.metrics.inc("net.chaos_delayed_msgs", len(delay))
        if not dropped and not dup and not delay:
            self._enqueue(msg)  # fast path: whole batch verdicted deliver
            return
        if keep:
            self._enqueue(self._sub_batch(msg, keep))
        if dup:
            self._enqueue(self._sub_batch(msg, dup))
        if delay:
            self._enqueue(self._sub_batch(msg, delay), delayed=True)

    @staticmethod
    def _sub_batch(msg: Message, indices: list[int]) -> Message:
        sub = msg.payload.select(indices)
        return Message(msg.kind, msg.src, msg.dst, sub, sub.nbytes())

    def deliver(self, node_id: int) -> list[Message]:
        """Drain and return the destination's inbox.

        Delayed (chaos-reordered) messages arrive after the regular
        batch — late, but still within the same barrier window.  The
        queue entries themselves are removed: ids must not accumulate
        as permanent empty keys across rebirth cycles.
        """
        if not self._is_alive(node_id):
            raise UnknownNodeError(node_id)
        inbox = self._queues.drain(node_id)
        late = self._delayed.drain(node_id)
        if late:
            inbox.extend(late)
        return inbox

    def peek_inbox_size(self, node_id: int) -> int:
        return self._queues.size(node_id) + self._delayed.size(node_id)

    def queued_node_ids(self) -> set[int]:
        """Node ids currently holding a (possibly delayed) queue entry."""
        return self._queues.dsts() | self._delayed.dsts()

    # -- failure interaction ---------------------------------------------

    def purge_from(self, node_id: int) -> int:
        """Drop undelivered messages originating at a crashed node.

        Returns the number of purged messages.  Models in-flight loss:
        a node that dies mid-superstep may have sent only a prefix of
        its batch, so the engine must roll the iteration back anyway
        (Algorithm 1, line 9) and we discard the whole batch.

        The purged traffic is deducted from the step counters — the
        rolled-back superstep's barrier must not charge communication
        time for exchanges that never completed.  Lifetime ``totals``
        keep the bytes: they did cross the wire before the crash.
        """
        purged = 0
        purged_records = 0
        for hub in (self._queues, self._delayed):
            for m in hub.remove(lambda m: m.src == node_id):
                purged += 1
                purged_records += record_count(m.payload)
                if m.src != m.dst:  # self-sends never step-counted
                    self._deduct_step(m)
        if purged:
            # The metric counts logical records (the paper's message
            # unit); the return value counts physical queue entries.
            self.metrics.inc("net.purged_msgs", purged_records)
        return purged

    def purge_inbox(self, node_id: int) -> int:
        """Drop messages queued *for* a node (its memory is gone).

        The dead id's queue entries are removed outright — a defaultdict
        key left behind for every crashed incarnation would leak across
        repeated rebirth cycles.
        """
        queued = self._queues.drain(node_id)
        delayed = self._delayed.drain(node_id)
        n = len(queued) + len(delayed)
        if n:
            self.metrics.inc(
                "net.purged_msgs",
                sum(record_count(m.payload) for m in queued)
                + sum(record_count(m.payload) for m in delayed))
        return n

    def _deduct_step(self, msg: Message) -> None:
        """Remove one purged message from the step batching counters."""
        wire_bytes = msg.nbytes + BYTES_PER_MSG_HEADER
        row = self.step_bytes.get(msg.src)
        if row is not None and msg.dst in row:
            row[msg.dst] = max(0, row[msg.dst] - wire_bytes)
        row = self.step_msgs.get(msg.src)
        if row is not None and msg.dst in row:
            row[msg.dst] = max(0, row[msg.dst]
                               - record_count(msg.payload))

    # -- accounting views --------------------------------------------------

    def step_bytes_sent_by(self, node_id: int) -> int:
        return sum(self.step_bytes.get(node_id, {}).values())

    def step_msgs_sent_by(self, node_id: int) -> int:
        return sum(self.step_msgs.get(node_id, {}).values())
