"""Simulated distributed persistent store (HDFS stand-in).

Checkpoints, metadata snapshots and the vertex-cut edge-ckpt files live
here.  Contents are *real* Python payloads held in memory — recovery
genuinely reads back what was written — while the I/O cost (3x pipeline
replication, NameNode latency, disk throughput) comes from the cost
model.  The store survives any worker crash, like HDFS with replication
factor three survives single-node loss (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import StorageError


@dataclass
class StoredObject:
    """One file in the store."""

    path: str
    payload: Any
    nbytes: int
    version: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise StorageError(f"negative size for {self.path}")


class PersistentStore:
    """Flat-namespace, versioned object store with I/O accounting."""

    def __init__(self, replication_factor: int = 3, in_memory: bool = False):
        if replication_factor < 1:
            raise StorageError("replication_factor must be >= 1")
        self.replication_factor = replication_factor
        self.in_memory = in_memory
        self._objects: dict[str, StoredObject] = {}
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_ops = 0
        self.read_ops = 0

    # -- write path -----------------------------------------------------

    def write(self, path: str, payload: Any, nbytes: int) -> StoredObject:
        """Create or overwrite a file; returns the stored object."""
        prev = self._objects.get(path)
        version = prev.version + 1 if prev is not None else 1
        obj = StoredObject(path=path, payload=payload, nbytes=nbytes,
                           version=version)
        self._objects[path] = obj
        self.bytes_written += nbytes
        self.write_ops += 1
        return obj

    def append(self, path: str, payload_item: Any, nbytes: int) -> None:
        """Append a record to a log-structured file (edge-ckpt logging)."""
        obj = self._objects.get(path)
        if obj is None:
            self.write(path, [payload_item], nbytes)
            return
        if not isinstance(obj.payload, list):
            raise StorageError(f"{path} is not appendable")
        obj.payload.append(payload_item)
        obj.nbytes += nbytes
        obj.version += 1
        self.bytes_written += nbytes
        self.write_ops += 1

    # -- read path -----------------------------------------------------------

    def read(self, path: str) -> Any:
        obj = self._objects.get(path)
        if obj is None:
            raise StorageError(f"no such object: {path}")
        self.bytes_read += obj.nbytes
        self.read_ops += 1
        return obj.payload

    def stat(self, path: str) -> StoredObject:
        obj = self._objects.get(path)
        if obj is None:
            raise StorageError(f"no such object: {path}")
        return obj

    def exists(self, path: str) -> bool:
        return path in self._objects

    def delete(self, path: str) -> None:
        if path not in self._objects:
            raise StorageError(f"no such object: {path}")
        del self._objects[path]

    def listdir(self, prefix: str) -> Iterator[str]:
        """Yield paths under a directory prefix, in sorted order."""
        if not prefix.endswith("/"):
            prefix += "/"
        for path in sorted(self._objects):
            if path.startswith(prefix):
                yield path

    # -- accounting --------------------------------------------------------

    @property
    def total_bytes_stored(self) -> int:
        return sum(o.nbytes for o in self._objects.values())

    @property
    def replicated_bytes_stored(self) -> int:
        """Physical footprint including DFS replication."""
        return self.total_bytes_stored * self.replication_factor

    def reset_counters(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_ops = 0
        self.read_ops = 0
