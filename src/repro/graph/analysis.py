"""Graph census helpers backing Fig. 3's replica analysis.

The paper distinguishes two reasons a vertex has no computation replica
under edge-cut (Section 3.1):

* **selfish** vertices have no out-edges at all, so no other node ever
  consumes their value (vertex 7 in the paper's Fig. 1);
* **internal** (normal) vertices have out-edges, but every out-neighbor
  is co-located, so no replica was needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class GraphStats:
    """Degree summary for one graph."""

    num_vertices: int
    num_edges: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int
    num_selfish: int

    @property
    def selfish_fraction(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_selfish / self.num_vertices


def degree_stats(graph: Graph) -> GraphStats:
    """Compute the summary used by dataset catalog listings."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    n = graph.num_vertices
    return GraphStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        avg_out_degree=float(out_deg.mean()) if n else 0.0,
        max_out_degree=int(out_deg.max()) if n else 0,
        max_in_degree=int(in_deg.max()) if n else 0,
        num_selfish=int((out_deg == 0).sum()),
    )


def selfish_vertices(graph: Graph) -> np.ndarray:
    """Vertex ids with zero out-degree (value has no consumer)."""
    return np.flatnonzero(graph.out_degrees() == 0)


def vertices_without_replicas(graph: Graph,
                              master_of: np.ndarray) -> tuple[np.ndarray,
                                                              np.ndarray]:
    """Split replica-less vertices into (selfish, normal) id arrays.

    ``master_of[v]`` is the node that owns vertex ``v`` under an
    edge-cut.  A vertex has a replica iff at least one out-neighbor
    lives on a different node (that node materialises a local copy to
    read from).
    """
    master_of = np.asarray(master_of)
    out_deg = graph.out_degrees()
    selfish_mask = out_deg == 0
    has_replica = np.zeros(graph.num_vertices, dtype=bool)
    src, dst = graph.sources, graph.targets
    remote = master_of[src] != master_of[dst]
    has_replica[src[remote]] = True
    normal_mask = (~selfish_mask) & (~has_replica)
    return np.flatnonzero(selfish_mask), np.flatnonzero(normal_mask)
