"""Graph substrate: immutable CSR graphs, builders, generators, I/O."""

from repro.graph.graph import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.analysis import (
    GraphStats,
    degree_stats,
    selfish_vertices,
    vertices_without_replicas,
)
from repro.graph import generators, io

__all__ = [
    "Graph",
    "GraphBuilder",
    "GraphStats",
    "degree_stats",
    "selfish_vertices",
    "vertices_without_replicas",
    "generators",
    "io",
]
